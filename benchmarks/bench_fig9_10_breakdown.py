"""Figures 9-10: top-down micro-architecture breakdowns.

Paper claims reproduced in shape (Sec. 8.3.3-8.3.4):
* RO (Fig. 9): the UpPar *receiver* is core-bound (pause-spinning on a
  sender that cannot keep up); the Slash *sender* is core-bound
  (waiting on a saturated network); the Slash receiver's stalls are
  memory-flavoured rather than front-end;
* YSB (Fig. 10): Slash is primarily memory-bound (RMWs against state)
  with a healthy retiring share; the UpPar sender shows the largest
  front-end-stall share of any role (its branchy partitioning logic).
"""

import pytest

from conftest import register_report
from repro.harness import fig9_breakdown_ro, fig10_breakdown_ysb
from repro.simnet.counters import CycleCategory


@pytest.mark.benchmark(group="fig9-10")
def test_fig9_breakdown_ro(benchmark):
    report = benchmark.pedantic(
        lambda: fig9_breakdown_ro(thread_counts=(2, 10), records_per_thread=120_000),
        rounds=1,
        iterations=1,
    )
    register_report("fig9_breakdown_ro", report.render())

    for row in report.rows:
        if row["system"] == "uppar":
            # The receiver pause-spins waiting on the slow sender.
            receiver = row["receiver"]
            stalls = {k: v for k, v in receiver.items() if k != CycleCategory.RETIRING}
            assert max(stalls, key=stalls.get) == CycleCategory.CORE
            # The sender's busy work is front-end-heavy partitioning.
            sender = row["sender"]
            assert sender[CycleCategory.FRONTEND] > receiver[CycleCategory.FRONTEND]
        if row["system"] == "slash" and row["threads"] == 10:
            # With the link saturated, the Slash sender waits (pause).
            sender = row["sender"]
            stalls = {k: v for k, v in sender.items() if k != CycleCategory.RETIRING}
            assert max(stalls, key=stalls.get) == CycleCategory.CORE


@pytest.mark.benchmark(group="fig9-10")
def test_fig10_breakdown_ysb(benchmark):
    report = benchmark.pedantic(
        lambda: fig10_breakdown_ysb(threads=10, records_per_thread=6_000),
        rounds=1,
        iterations=1,
    )
    register_report("fig10_breakdown_ysb", report.render())

    shares = {row["system"]: row for row in report.rows}
    slash_busy = shares["slash"]["busy"]["slash (whole)"]
    # Slash: memory-bound with a healthy retiring share (paper: ~20 %).
    stalls = {k: v for k, v in slash_busy.items() if k != CycleCategory.RETIRING}
    assert max(stalls, key=stalls.get) == CycleCategory.MEMORY
    assert slash_busy[CycleCategory.RETIRING] > 0.10
    # UpPar sender: largest front-end share of any role (partitioning).
    uppar_sender_busy = shares["uppar"]["busy"]["uppar sender"]
    assert uppar_sender_busy[CycleCategory.FRONTEND] > slash_busy[CycleCategory.FRONTEND]
    # UpPar receiver: core-bound once waits count (pause-spinning).
    uppar_receiver_full = shares["uppar"]["full"]["uppar receiver"]
    full_stalls = {
        k: v for k, v in uppar_receiver_full.items() if k != CycleCategory.RETIRING
    }
    assert max(full_stalls, key=full_stalls.get) == CycleCategory.CORE
