"""Figures 6a-6c: end-to-end windowed aggregations, weak scaling.

Paper claims reproduced in shape:
* Slash > RDMA UpPar > Flink at every node count;
* Slash scales almost linearly to 16 nodes (multi-billion records/s);
* the Slash/UpPar and Slash/Flink gaps widen with the node count
  ('up to 12x / 25x' on YSB, 22x / 104x on NB7, ~100x on CM).
"""

import pytest

from conftest import register_report
from repro.harness import fig6_aggregations

NODE_COUNTS = (2, 4, 8, 16)
THREADS = 10
SIZE = {"records_per_thread": 2500, "batch_records": 500}


@pytest.mark.benchmark(group="fig6")
def test_fig6_aggregations(benchmark):
    report = benchmark.pedantic(
        lambda: fig6_aggregations(
            node_counts=NODE_COUNTS, threads=THREADS, workload_overrides=SIZE
        ),
        rounds=1,
        iterations=1,
    )
    register_report("fig6a-c_aggregations", report.render())

    # Shape assertions (the paper's qualitative claims).
    for workload in ("ysb", "cm", "nb7"):
        series = {
            (row["system"], row["nodes"]): row["throughput"]
            for row in report.rows
            if row["workload"] == workload
        }
        for nodes in NODE_COUNTS:
            assert series[("slash", nodes)] > series[("uppar", nodes)]
            assert series[("uppar", nodes)] > series[("flink", nodes)]
        # The Slash advantage grows with scale.
        gap_small = series[("slash", 2)] / series[("uppar", 2)]
        gap_large = series[("slash", 16)] / series[("uppar", 16)]
        assert gap_large > gap_small
