"""Figure 7: COST analysis — Slash vs the scale-up LightSaber.

Paper claims reproduced in shape: Slash overtakes LightSaber already at
2 nodes and keeps improving when doubling nodes, reaching ~11.6x on
YSB/CM and a smaller factor (~4.4x) on NB7 at 16 nodes.
"""

import pytest

from conftest import register_report
from repro.harness import fig7_cost

NODE_COUNTS = (2, 4, 8, 16)
THREADS = 10
SIZE = {"records_per_thread": 2500, "batch_records": 500}


@pytest.mark.benchmark(group="fig7")
def test_fig7_cost(benchmark):
    report = benchmark.pedantic(
        lambda: fig7_cost(
            node_counts=NODE_COUNTS, threads=THREADS,
            workloads=("ysb", "cm", "nb7"), workload_overrides=SIZE,
        ),
        rounds=1,
        iterations=1,
    )
    register_report("fig7_cost", report.render())

    for workload in ("ysb", "cm", "nb7"):
        speedups = {
            row["nodes"]: row["speedup_vs_lightsaber"]
            for row in report.rows
            if row["workload"] == workload and row["system"] == "slash"
        }
        assert speedups[2] > 1.0, f"{workload}: 2 Slash nodes must beat L"
        assert speedups[16] > speedups[2], f"{workload}: speedup must grow"
