"""Ablation studies for the design choices the paper calls out in text.

* **Channel credits** (Sec. 8.3.2): c=8 is the sweet spot; a single
  credit kills pipelining, and very deep rings (c=64) regress by a few
  percent through NIC WQE-cache pressure.
* **SSB epoch length** (Sec. 8.1.1): too-short epochs tax processing
  with synchronisation; beyond the default, returns flatten.
* **Selective signaling** (Sec. 3.2 / C2): requesting a completion per
  WRITE costs sender CPU without buying anything on this protocol.
"""

import pytest

from conftest import register_report
from repro.harness import (
    ablation_credits,
    ablation_epoch_bytes,
    ablation_execution_strategy,
    ablation_selective_signaling,
)


@pytest.mark.benchmark(group="ablations")
def test_ablation_credits(benchmark):
    report = benchmark.pedantic(
        lambda: ablation_credits(
            credit_counts=(1, 4, 8, 16, 64), threads=2, records_per_thread=120_000
        ),
        rounds=1,
        iterations=1,
    )
    register_report("ablation_credits", report.render())

    rows = {r["credits"]: r["throughput_bytes_per_s"] for r in report.rows}
    assert rows[8] > rows[1]          # pipelining matters
    assert rows[8] >= rows[64] * 0.99  # deep rings buy nothing (or regress)


@pytest.mark.benchmark(group="ablations")
def test_ablation_epoch_bytes(benchmark):
    report = benchmark.pedantic(
        lambda: ablation_epoch_bytes(
            epoch_sizes=(16 * 1024, 64 * 1024, 128 * 1024, 1024 * 1024),
            nodes=4,
            threads=4,
        ),
        rounds=1,
        iterations=1,
    )
    register_report("ablation_epoch_bytes", report.render())

    rows = {r["epoch_bytes"]: r["throughput"] for r in report.rows}
    # Very short epochs pay more synchronisation than the default.
    assert rows[128 * 1024] >= rows[16 * 1024] * 0.95


@pytest.mark.benchmark(group="ablations")
def test_ablation_execution_strategy(benchmark):
    report = benchmark.pedantic(
        lambda: ablation_execution_strategy(nodes=4, threads=4),
        rounds=1,
        iterations=1,
    )
    register_report("ablation_execution_strategy", report.render())

    rows = {r["strategy"]: r["throughput"] for r in report.rows}
    # Interpretation slows the hot path, but by less than its raw 3x
    # factor: network and epoch synchronisation are strategy-agnostic.
    assert rows["compiled"] > rows["interpreted"]
    assert rows["interpreted"] > rows["compiled"] / 3.0


@pytest.mark.benchmark(group="ablations")
def test_ablation_selective_signaling(benchmark):
    report = benchmark.pedantic(
        lambda: ablation_selective_signaling(threads=2, records_per_thread=120_000),
        rounds=1,
        iterations=1,
    )
    register_report("ablation_selective_signaling", report.render())

    rows = {r["signaled"]: r["throughput_bytes_per_s"] for r in report.rows}
    assert rows[False] >= rows[True] * 0.98


@pytest.mark.benchmark(group="extra")
def test_extra_trigger_latency(benchmark):
    """Beyond the paper's figures: the latency cost of lazy merging.

    The paper's text (Sec. 8.3.2) reports microsecond-scale buffer
    latencies for both RDMA SUTs, an order of magnitude below Flink.
    This experiment measures *window trigger lag* end-to-end: Slash pays
    for its throughput with epoch-bounded emission lag, while the
    eager re-partitioning engines trigger almost immediately once their
    watermarks pass.
    """
    from repro.harness import extra_trigger_latency

    report = benchmark.pedantic(
        lambda: extra_trigger_latency(nodes=2, threads=10, records_per_thread=6_000),
        rounds=1,
        iterations=1,
    )
    register_report("extra_trigger_latency", report.render())

    rows = {r["system"]: r for r in report.rows}
    # The RDMA exchange triggers with lower lag than the IPoIB one.
    assert rows["uppar"]["trigger_lag_mean_s"] < rows["flink"]["trigger_lag_mean_s"]
    # Lazy merging costs Slash trigger latency — a real, bounded trade-off.
    assert 0 < rows["slash"]["trigger_lag_mean_s"] < 1e-3
