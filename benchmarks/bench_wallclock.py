#!/usr/bin/env python
"""Wall-clock benchmark harness: the repo's tracked perf trajectory.

Times every experiment of the CLI registry (plus a kernel event-loop
microbench) and writes ``BENCH_wallclock.json``::

    python benchmarks/bench_wallclock.py --quick --out BENCH_wallclock.json
    python benchmarks/bench_wallclock.py --experiments fig8ab table1
    python benchmarks/bench_wallclock.py --quick \
        --check-against BENCH_wallclock.json   # CI regression gate

Per experiment it records the wall seconds and a sha256 digest of the
rendered report.  The digest is the determinism check: two same-seed
runs must produce identical simulated-time results, so their digests
must match (wall seconds, of course, vary).  ``--check-against`` fails
(exit 1) if any tracked experiment is more than ``--threshold`` times
slower than the committed baseline.

Simulated results are wall-clock independent, so quick-mode timings are
a faithful *relative* trajectory even though absolute numbers are small.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import pathlib
import sys
import time

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

SCHEMA = 1
#: Events for the kernel event-loop microbench (half timed, half ready).
KERNEL_EVENTS = 200_000


def bench_kernel(events: int = KERNEL_EVENTS) -> dict:
    """Events/sec through the simulation kernel's scheduling hot path.

    Alternates timed and zero-delay waits so both the heap and the
    ready-deque fast path are exercised.
    """
    from repro.simnet.kernel import Simulator, Timeout

    sim = Simulator()

    def body():
        for _ in range(events // 2):
            yield Timeout(1e-6)
            yield Timeout(0.0)

    sim.process(body(), name="kernel-bench")
    started = time.perf_counter()
    sim.run()
    wall = time.perf_counter() - started
    return {
        "events": sim.scheduled_events,
        "wall_s": round(wall, 4),
        "events_per_s": round(sim.scheduled_events / wall),
        "sim_seconds": sim.now,
    }


def bench_experiment(name: str, quick: bool, jobs: int) -> dict:
    """One experiment: wall seconds plus a digest of the rendered report."""
    from repro.harness.cli import EXPERIMENTS, QUICK, build_parser

    argv = ["run", name]
    if quick:
        argv.append("--quick")
    args = build_parser().parse_args(argv)
    if quick:
        args.nodes = list(QUICK["nodes"])
        args.threads = QUICK["threads"]
        args.records = args.records or QUICK["records"]
    args.nodes = tuple(args.nodes)
    args.runner = None
    pool = None
    if jobs > 1:
        from repro.harness.parallel import PoolRunner, make_pool

        pool = make_pool(jobs)
        args.runner = PoolRunner(pool, jobs)
    try:
        _description, factory = EXPERIMENTS[name]
        started = time.perf_counter()
        report = factory(args)
        wall = time.perf_counter() - started
    finally:
        if pool is not None:
            pool.shutdown()
    rendered = report.render()
    return {
        "wall_s": round(wall, 3),
        "digest": hashlib.sha256(rendered.encode()).hexdigest(),
        "quick": quick,
        "jobs": jobs,
    }


def check_against(current: dict, baseline_path: pathlib.Path, threshold: float) -> int:
    """Exit status for the CI gate: 1 if any experiment regressed."""
    baseline = json.loads(baseline_path.read_text())
    failures = []
    for name, entry in current["experiments"].items():
        base = baseline.get("experiments", {}).get(name)
        if base is None:
            print(f"[bench] {name}: no baseline entry, skipping gate")
            continue
        ratio = entry["wall_s"] / base["wall_s"] if base["wall_s"] else 1.0
        status = "OK" if ratio <= threshold else "REGRESSED"
        print(
            f"[bench] {name}: {entry['wall_s']:.2f}s vs baseline "
            f"{base['wall_s']:.2f}s ({ratio:.2f}x) {status}"
        )
        if ratio > threshold:
            failures.append(name)
    if failures:
        print(f"[bench] FAIL: >{threshold}x regression in: {', '.join(failures)}")
        return 1
    return 0


def main(argv=None) -> int:
    from repro.harness.cli import EXPERIMENTS

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--experiments", nargs="+", default=None,
                        help="experiment ids to bench (default: all)")
    parser.add_argument("--quick", action="store_true",
                        help="bench at --quick sizes")
    parser.add_argument("--jobs", "-j", type=int, default=1,
                        help="worker processes per experiment run")
    parser.add_argument("--skip-kernel", action="store_true",
                        help="skip the kernel events/sec microbench")
    parser.add_argument("--out", type=pathlib.Path, default=None,
                        help="write the JSON here (default: stdout only)")
    parser.add_argument("--check-against", type=pathlib.Path, default=None,
                        help="baseline BENCH_wallclock.json to gate against")
    parser.add_argument("--threshold", type=float, default=2.0,
                        help="max allowed wall_s ratio vs baseline")
    args = parser.parse_args(argv)

    names = args.experiments or list(EXPERIMENTS)
    unknown = [n for n in names if n not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiment(s): {unknown}", file=sys.stderr)
        return 2

    result: dict = {"schema": SCHEMA, "experiments": {}}
    if not args.skip_kernel:
        result["kernel"] = bench_kernel()
        print(f"[bench] kernel: {result['kernel']['events_per_s']:,} events/s")
    for name in names:
        entry = bench_experiment(name, quick=args.quick, jobs=args.jobs)
        result["experiments"][name] = entry
        print(f"[bench] {name}: {entry['wall_s']:.2f}s  digest {entry['digest'][:12]}")

    payload = json.dumps(result, indent=2, sort_keys=True) + "\n"
    if args.out is not None:
        args.out.write_text(payload)
        print(f"[bench] wrote {args.out}")
    else:
        print(payload)

    if args.check_against is not None:
        return check_against(result, args.check_against, args.threshold)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
