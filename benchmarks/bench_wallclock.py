#!/usr/bin/env python
"""Wall-clock benchmark harness: the repo's tracked perf trajectory.

Times every experiment of the CLI registry (plus a kernel event-loop
microbench) and writes ``BENCH_wallclock.json``::

    python benchmarks/bench_wallclock.py --quick --out BENCH_wallclock.json
    python benchmarks/bench_wallclock.py --experiments fig8ab table1
    python benchmarks/bench_wallclock.py --quick \
        --check-against BENCH_wallclock.json   # CI regression gate

Per experiment it records the wall seconds and a sha256 digest of the
rendered report.  The digest is the determinism check: two same-seed
runs must produce identical simulated-time results, so their digests
must match (wall seconds, of course, vary).  ``--check-against`` fails
(exit 1) if any tracked experiment is more than ``--threshold`` times
slower than the committed baseline, or if the kernel microbench drops
below ``--kernel-floor`` (default 35%) of the baseline's events/sec —
a ratchet against the scheduling core quietly losing its calendar-queue
and chain optimisations.  ``--profile [N]`` additionally re-runs each
experiment under cProfile and records its top-N cumulative frames under
the entry's ``hotspots`` key.

Simulated results are wall-clock independent, so quick-mode timings are
a faithful *relative* trajectory even though absolute numbers are small.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import pathlib
import sys
import time

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

SCHEMA = 1
#: Events for the kernel event-loop microbench (half timed, half ready).
KERNEL_EVENTS = 200_000


def bench_kernel(events: int = KERNEL_EVENTS, repeats: int = 3) -> dict:
    """Events/sec through the simulation kernel's scheduling hot path.

    Alternates timed and zero-delay waits so both the calendar queue and
    the ready-deque fast path are exercised.  Best-of-``repeats`` so the
    committed number reflects the kernel, not a scheduler hiccup.
    """
    from repro.simnet.kernel import Simulator, Timeout

    best = None
    for _ in range(repeats):
        sim = Simulator()

        def body():
            for _ in range(events // 2):
                yield Timeout(1e-6)
                yield Timeout(0.0)

        sim.process(body(), name="kernel-bench")
        started = time.perf_counter()
        sim.run()
        wall = time.perf_counter() - started
        run = {
            "events": sim.scheduled_events,
            "wall_s": round(wall, 4),
            "events_per_s": round(sim.scheduled_events / wall),
            "sim_seconds": sim.now,
        }
        if best is None or run["events_per_s"] > best["events_per_s"]:
            best = run
    return best


def profile_experiment(report_factory, args, top: int = 15) -> list[str]:
    """Run one experiment under cProfile; return the top-``top`` frames
    by cumulative time as pre-formatted report lines."""
    import cProfile
    import io
    import pstats

    profiler = cProfile.Profile()
    profiler.enable()
    try:
        report_factory(args)
    finally:
        profiler.disable()
    buffer = io.StringIO()
    stats = pstats.Stats(profiler, stream=buffer)
    stats.sort_stats("cumulative").print_stats(top)
    # Keep only the table body (skip the pstats banner noise).
    lines = buffer.getvalue().splitlines()
    start = next(
        (i for i, line in enumerate(lines) if "ncalls" in line), 0
    )
    return [line.rstrip() for line in lines[start:] if line.strip()]


def bench_experiment(
    name: str, quick: bool, jobs: int, profile: int = 0
) -> dict:
    """One experiment: wall seconds plus a digest of the rendered report."""
    from repro.harness.cli import EXPERIMENTS, QUICK, build_parser

    argv = ["run", name]
    if quick:
        argv.append("--quick")
    args = build_parser().parse_args(argv)
    if quick:
        args.nodes = list(QUICK["nodes"])
        args.threads = QUICK["threads"]
        args.records = args.records or QUICK["records"]
    args.nodes = tuple(args.nodes)
    args.runner = None
    pool = None
    if jobs > 1:
        from repro.harness.parallel import PoolRunner, make_pool

        pool = make_pool(jobs)
        args.runner = PoolRunner(pool, jobs)
    try:
        _description, factory = EXPERIMENTS[name]
        started = time.perf_counter()
        report = factory(args)
        wall = time.perf_counter() - started
        hotspots = profile_experiment(factory, args, profile) if profile else None
    finally:
        if pool is not None:
            pool.shutdown()
    rendered = report.render()
    entry = {
        "wall_s": round(wall, 3),
        "digest": hashlib.sha256(rendered.encode()).hexdigest(),
        "quick": quick,
        "jobs": jobs,
    }
    if hotspots is not None:
        entry["hotspots"] = hotspots
    return entry


#: Scale for the migration spike bench: large enough that the fluid
#: strategy's per-range sub-moves genuinely beat the all-at-once bulk
#: stall (tiny states hit the per-round scheduling floor instead).
MIGRATION_RECORDS = 20_000


def bench_migration() -> dict:
    """Migration-window p99 spike, fluid vs all-at-once, plus the gate.

    Runs the elastic differential experiment (static baseline + one
    migrated run per strategy, oracle-checked) at a state size where
    the Megaphone-style fluid strategy must win: committing this entry
    ratchets the *simulated* spike ratio, which is wall-clock
    independent and therefore exact across machines.  ``fluid_wins``
    doubles as a correctness gate — fluid p99 regressing above the
    all-at-once p99 means the sub-move interleaving stopped amortising
    the stall.
    """
    from repro.harness.experiments import run_elastic

    started = time.perf_counter()
    report = run_elastic(
        strategy="both", records_per_thread=MIGRATION_RECORDS
    )
    wall = time.perf_counter() - started
    by_strategy = {row["strategy"]: row for row in report.rows}
    fluid = by_strategy["fluid"]
    bulk = by_strategy["all-at-once"]
    return {
        "wall_s": round(wall, 3),
        "digest": hashlib.sha256(report.render().encode()).hexdigest(),
        "records_per_thread": MIGRATION_RECORDS,
        "all_at_once_p99_s": bulk["window_p99_s"],
        "fluid_p99_s": fluid["window_p99_s"],
        "all_at_once_spike": round(bulk["p99_spike"], 3),
        "fluid_spike": round(fluid["p99_spike"], 3),
        "fluid_wins": fluid["window_p99_s"] < bulk["window_p99_s"],
        "oracle_ok": bool(fluid["oracle_ok"] and bulk["oracle_ok"]),
    }


#: CI floor for kernel.events_per_s as a fraction of the committed
#: baseline.  Deliberately loose: shared CI runners are routinely 2-3x
#: slower than the machine that produced the baseline, so the ratchet
#: only catches order-of-magnitude regressions (e.g. the calendar queue
#: silently degenerating to per-event heap churn), not runner jitter.
KERNEL_FLOOR_FRACTION = 0.35


def check_against(
    current: dict,
    baseline_path: pathlib.Path,
    threshold: float,
    kernel_floor: float = KERNEL_FLOOR_FRACTION,
) -> int:
    """Exit status for the CI gate: 1 if any experiment regressed or the
    kernel microbench fell below its ratcheted events/sec floor."""
    baseline = json.loads(baseline_path.read_text())
    failures = []
    base_kernel = baseline.get("kernel")
    cur_kernel = current.get("kernel")
    if base_kernel and cur_kernel:
        floor = base_kernel["events_per_s"] * kernel_floor
        rate = cur_kernel["events_per_s"]
        status = "OK" if rate >= floor else "REGRESSED"
        print(
            f"[bench] kernel: {rate:,} events/s vs baseline "
            f"{base_kernel['events_per_s']:,} (floor {floor:,.0f}, "
            f"{kernel_floor:.0%} of baseline) {status}"
        )
        if rate < floor:
            failures.append("kernel.events_per_s")
    migration = current.get("migration")
    if migration is not None:
        # The spike ordering is simulated time — machine-independent, so
        # it gates absolutely rather than against the baseline entry.
        fl, bulk = migration["fluid_p99_s"], migration["all_at_once_p99_s"]
        status = "OK" if migration["fluid_wins"] else "REGRESSED"
        print(
            f"[bench] migration: fluid p99 {fl * 1e6:.1f}us vs all-at-once "
            f"{bulk * 1e6:.1f}us (spikes {migration['fluid_spike']}x / "
            f"{migration['all_at_once_spike']}x) {status}"
        )
        if not migration["fluid_wins"]:
            failures.append("migration.fluid_wins")
        if not migration["oracle_ok"]:
            print("[bench] migration: oracle FAILED")
            failures.append("migration.oracle_ok")
    for name, entry in current["experiments"].items():
        base = baseline.get("experiments", {}).get(name)
        if base is None:
            print(f"[bench] {name}: no baseline entry, skipping gate")
            continue
        ratio = entry["wall_s"] / base["wall_s"] if base["wall_s"] else 1.0
        status = "OK" if ratio <= threshold else "REGRESSED"
        print(
            f"[bench] {name}: {entry['wall_s']:.2f}s vs baseline "
            f"{base['wall_s']:.2f}s ({ratio:.2f}x) {status}"
        )
        if ratio > threshold:
            failures.append(name)
    if failures:
        print(f"[bench] FAIL: >{threshold}x regression in: {', '.join(failures)}")
        return 1
    return 0


def main(argv=None) -> int:
    from repro.harness.cli import EXPERIMENTS

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--experiments", nargs="+", default=None,
                        help="experiment ids to bench (default: all)")
    parser.add_argument("--quick", action="store_true",
                        help="bench at --quick sizes")
    parser.add_argument("--jobs", "-j", type=int, default=1,
                        help="worker processes per experiment run")
    parser.add_argument("--skip-kernel", action="store_true",
                        help="skip the kernel events/sec and queue microbenches")
    parser.add_argument("--skip-migration", action="store_true",
                        help="skip the live-migration spike bench")
    parser.add_argument("--profile", type=int, nargs="?", const=15, default=0,
                        metavar="N",
                        help="after timing, re-run each experiment under "
                             "cProfile and record its top-N cumulative "
                             "frames (default N=15)")
    parser.add_argument("--out", type=pathlib.Path, default=None,
                        help="write the JSON here (default: stdout only)")
    parser.add_argument("--check-against", type=pathlib.Path, default=None,
                        help="baseline BENCH_wallclock.json to gate against")
    parser.add_argument("--threshold", type=float, default=2.0,
                        help="max allowed wall_s ratio vs baseline")
    parser.add_argument("--kernel-floor", type=float,
                        default=KERNEL_FLOOR_FRACTION,
                        help="min kernel events/s as a fraction of baseline")
    args = parser.parse_args(argv)

    names = args.experiments or list(EXPERIMENTS)
    unknown = [n for n in names if n not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiment(s): {unknown}", file=sys.stderr)
        return 2

    result: dict = {"schema": SCHEMA, "experiments": {}}
    if not args.skip_kernel:
        result["kernel"] = bench_kernel()
        print(f"[bench] kernel: {result['kernel']['events_per_s']:,} events/s")
        from bench_kernel_queue import run_benchmarks as run_queue_benchmarks

        result["kernel_queue"] = run_queue_benchmarks()
        for mix, entry in sorted(result["kernel_queue"].items()):
            print(
                f"[bench] kernel_queue/{mix}: heap "
                f"{entry['heap']['events_per_s']:,} ev/s, calendar "
                f"{entry['calendar']['events_per_s']:,} ev/s "
                f"({entry['calendar_vs_heap']}x)"
            )
    if not args.skip_migration:
        result["migration"] = bench_migration()
        print(
            f"[bench] migration: fluid spike "
            f"{result['migration']['fluid_spike']}x vs all-at-once "
            f"{result['migration']['all_at_once_spike']}x "
            f"({result['migration']['wall_s']:.2f}s)"
        )
    for name in names:
        entry = bench_experiment(
            name, quick=args.quick, jobs=args.jobs, profile=args.profile
        )
        result["experiments"][name] = entry
        print(f"[bench] {name}: {entry['wall_s']:.2f}s  digest {entry['digest'][:12]}")
        if args.profile:
            for line in entry["hotspots"][: 3 + args.profile]:
                print(f"    {line}")

    payload = json.dumps(result, indent=2, sort_keys=True) + "\n"
    if args.out is not None:
        args.out.write_text(payload)
        print(f"[bench] wrote {args.out}")
    else:
        print(payload)

    if args.check_against is not None:
        return check_against(
            result, args.check_against, args.threshold,
            kernel_floor=args.kernel_floor,
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
