"""Shared benchmark plumbing.

Every bench runs its experiment once (``benchmark.pedantic`` with a
single round — the timing of interest is *simulated* time; wall time is
reported by pytest-benchmark as a by-product), registers the rendered
report, and the session prints all reports in the terminal summary and
writes them to ``benchmarks/results/``.
"""

from __future__ import annotations

import pathlib

_REPORTS: list[tuple[str, str]] = []

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def register_report(name: str, rendered: str) -> None:
    """Record a rendered experiment report for the session summary."""
    _REPORTS.append((name, rendered))
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(rendered + "\n")


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not _REPORTS:
        return
    terminalreporter.write_sep("=", "paper reproduction reports")
    for name, rendered in _REPORTS:
        terminalreporter.write_line("")
        terminalreporter.write_line(rendered)
    terminalreporter.write_line("")
    terminalreporter.write_line(
        f"(reports also written to {RESULTS_DIR}/<experiment>.txt)"
    )
