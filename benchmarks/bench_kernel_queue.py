#!/usr/bin/env python
"""Kernel queue microbench: plain binary heap vs. the calendar queue.

Drives the same timer workload through two schedulers:

* **heap** — a minimal ``heapq`` reference: one ``(when, seq, callback)``
  tuple per timer, ``O(log n)`` push/pop, no same-timestamp awareness.
  This is the data structure the kernel shipped with before the calendar
  rewrite, reduced to its essentials.
* **calendar** — the production :class:`repro.simnet.kernel.Simulator`
  with its front-cached bucket queue and same-timestamp batch dispatch.

Two timestamp mixes bracket the design space:

* **tie-heavy** — a wide cohort of timers marching in lockstep, so every
  instant is one bucket of hundreds of entries (the shape produced by
  per-batch cost models: many workers charged identical delays).
* **sparse** — every timer on its own timestamp, pure heap churn with no
  ties to batch (the calendar queue's worst case; it should stay
  roughly at parity with the heap here, not win).

Standalone::

    python benchmarks/bench_kernel_queue.py

or imported by ``bench_wallclock.py``, which records the result under
the ``kernel_queue`` key of ``BENCH_wallclock.json``.
"""

from __future__ import annotations

import heapq
import json
import pathlib
import sys
import time

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

#: Concurrent timer chains; each chain re-arms itself ROUNDS times.
WIDTH = 512
ROUNDS = 200

#: Tie-heavy mix: every chain draws the same per-round delay, so each
#: instant is a single bucket of WIDTH entries.
TIE_DELAYS = (2e-6, 5e-6, 2e-6, 1e-5)


def _tie_delay(chain: int, round_index: int) -> float:
    return TIE_DELAYS[round_index % len(TIE_DELAYS)]


def _sparse_delay(chain: int, round_index: int) -> float:
    # A distinct, co-prime-ish stride per chain: timestamps almost never
    # collide, so every entry lands in its own bucket.
    return 1e-9 * ((chain * 7919 + round_index * 104729) % 999983 + 1)


class _HeapScheduler:
    """The pre-calendar reference: one heap entry per timer.

    The dispatch loop carries the same per-event obligations as the real
    kernel (clock update, tracer/sanitizer hook tests, failure check) so
    the comparison isolates the queue data structure, not the kernel's
    bookkeeping.
    """

    __slots__ = ("_heap", "_seq", "_now", "tracer", "sanitize", "_failures")

    def __init__(self):
        self._heap: list = []
        self._seq = 0
        self._now = 0.0
        self.tracer = None
        self.sanitize = None
        self._failures: list = []

    def schedule(self, delay, callback):
        seq = self._seq = self._seq + 1
        heapq.heappush(
            self._heap, (self._now + delay, seq, callback, (None, None))
        )

    def run(self):
        heap = self._heap
        pop = heapq.heappop
        failures = self._failures
        while heap:
            when, _seq, callback, args = pop(heap)
            self._now = when
            if self.sanitize is not None:
                self.sanitize.note_event(when, when)
            callback(*args)
            if failures:
                raise failures[0]
        return self._seq


def _drive(schedule, delay_of, width=WIDTH, rounds=ROUNDS):
    """Arm ``width`` self-re-arming timer chains of ``rounds`` fires."""
    def make_callback(chain, round_index):
        def callback(value, exc):
            nxt = round_index + 1
            if nxt < rounds:
                schedule(delay_of(chain, nxt), make_callback(chain, nxt))
        return callback

    for chain in range(width):
        schedule(delay_of(chain, 0), make_callback(chain, 0))


def _bench_heap(delay_of) -> dict:
    sched = _HeapScheduler()
    _drive(sched.schedule, delay_of)
    started = time.perf_counter()
    events = sched.run()
    wall = time.perf_counter() - started
    return {"events": events, "wall_s": round(wall, 4),
            "events_per_s": round(events / wall)}


def _bench_calendar(delay_of) -> dict:
    from repro.simnet.kernel import Simulator

    sim = Simulator()

    def schedule(delay, callback):
        # call_in is the kernel's raw scheduling primitive — the direct
        # analogue of _HeapScheduler.schedule (no Waitable allocation).
        sim.call_in(delay, callback, None, None)

    _drive(schedule, delay_of)
    started = time.perf_counter()
    sim.run()
    wall = time.perf_counter() - started
    events = sim.scheduled_events
    return {"events": events, "wall_s": round(wall, 4),
            "events_per_s": round(events / wall)}


def run_benchmarks(repeats: int = 3) -> dict:
    """Best-of-``repeats`` for both schedulers on both mixes."""
    out = {}
    for mix, delay_of in (("tie_heavy", _tie_delay), ("sparse", _sparse_delay)):
        best = {}
        for kind, bench in (("heap", _bench_heap), ("calendar", _bench_calendar)):
            runs = [bench(delay_of) for _ in range(repeats)]
            best[kind] = max(runs, key=lambda r: r["events_per_s"])
        best["calendar_vs_heap"] = round(
            best["calendar"]["events_per_s"] / best["heap"]["events_per_s"], 3
        )
        out[mix] = best
    return out


def main() -> int:
    result = run_benchmarks()
    for mix, entry in result.items():
        print(
            f"[bench] {mix}: heap {entry['heap']['events_per_s']:,} ev/s, "
            f"calendar {entry['calendar']['events_per_s']:,} ev/s "
            f"({entry['calendar_vs_heap']}x)"
        )
    print(json.dumps(result, indent=2, sort_keys=True))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
