"""Figures 6d-6e: end-to-end windowed joins (NB8, NB11), weak scaling.

Paper claims reproduced in shape: Slash wins on both join queries, but
by smaller factors than on aggregations (joins are append-heavy and
memory-intensive; 'up to 8x over UpPar on NB8, 1.7x on NB11').
"""

import pytest

from conftest import register_report
from repro.harness import fig6_joins

NODE_COUNTS = (2, 4, 8, 16)
THREADS = 10
SIZE = {"records_per_thread": 1000, "batch_records": 250}


@pytest.mark.benchmark(group="fig6")
def test_fig6_joins(benchmark):
    report = benchmark.pedantic(
        lambda: fig6_joins(
            node_counts=NODE_COUNTS, threads=THREADS, workload_overrides=SIZE
        ),
        rounds=1,
        iterations=1,
    )
    register_report("fig6d-e_joins", report.render())

    for workload in ("nb8", "nb11"):
        series = {
            (row["system"], row["nodes"]): row["throughput"]
            for row in report.rows
            if row["workload"] == workload
        }
        for nodes in NODE_COUNTS:
            assert series[("slash", nodes)] > series[("flink", nodes)]
            assert series[("slash", nodes)] > series[("uppar", nodes)]
