"""Table 1: resource utilisation of UpPar (sender/receiver) and Slash
on YSB using two nodes.

Paper magnitudes being approximated: Slash ~42 instr / ~53 busy cycles
per record vs UpPar's ~166/274 (sender) and ~78/276 (receiver); Slash's
aggregate memory bandwidth is an order of magnitude above UpPar's (it is
memory-bound, UpPar is partition-bound).  Note the paper's cycle counts
include wait time; ours do too (spin waits are charged as core-bound).
"""

import pytest

from conftest import register_report
from repro.harness import table1_counters


@pytest.mark.benchmark(group="table1")
def test_table1_counters(benchmark):
    report = benchmark.pedantic(
        lambda: table1_counters(threads=10, records_per_thread=40_000),
        rounds=1,
        iterations=1,
    )
    register_report("table1_counters", report.render())

    rows = {r["who"]: r for r in report.rows}
    slash = rows["slash"]
    sender = rows["uppar sender"]
    receiver = rows["uppar receiver"]
    # Slash needs fewer instructions per record than the UpPar sender.
    assert slash["instr_per_rec"] < sender["instr_per_rec"] * 1.5
    # Slash moves far more DRAM bytes per second (memory-bound execution).
    assert slash["mem_bw_bytes_per_s"] > receiver["mem_bw_bytes_per_s"]
    # Everything retires at sub-optimal IPC (well below the 4-wide peak).
    for row in (slash, sender, receiver):
        assert 0 < row["ipc"] < 4.0
