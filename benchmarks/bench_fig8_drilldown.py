"""Figures 8a-8d: drill-down on the RDMA data plane.

Paper claims reproduced in shape:
* 8a — throughput grows with buffer size and saturates near the
  measured 11.8 GB/s link ceiling; Slash saturates with few threads,
  UpPar stays well below at the same parallelism;
* 8b — per-buffer latency grows with buffer size (sub-100 us for small
  buffers, ~ms at 1 MiB); UpPar sits above Slash;
* 8c — Slash is network-bound at ~2 threads; UpPar needs many threads
  and still trails;
* 8d — Zipf skew collapses UpPar (hash partitioning concentrates load)
  while Slash stays flat on RO and *gains* on YSB.
"""

import pytest

from conftest import register_report
from repro.harness import fig8_buffer_sweep, fig8_parallelism, fig8_skew
from repro.harness.experiments import LINK_BANDWIDTH


@pytest.mark.benchmark(group="fig8")
def test_fig8a_b_buffer_sweep(benchmark):
    report = benchmark.pedantic(
        lambda: fig8_buffer_sweep(threads=2, records_per_thread=150_000),
        rounds=1,
        iterations=1,
    )
    register_report("fig8a-b_buffer_sweep", report.render())

    slash = {
        row["buffer_bytes"]: row
        for row in report.rows
        if row["system"] == "slash"
    }
    # Throughput rises from small to sweet-spot buffers and saturates.
    assert slash[32768]["throughput_bytes_per_s"] > slash[4096]["throughput_bytes_per_s"]
    assert slash[65536]["throughput_bytes_per_s"] > 0.85 * LINK_BANDWIDTH
    # Latency rises monotonically-ish with buffer size; ~sub-100us small.
    assert slash[4096]["mean_latency_s"] < 100e-6
    assert slash[1048576]["mean_latency_s"] > slash[32768]["mean_latency_s"]
    # UpPar below Slash at the same configuration.
    uppar = {
        row["buffer_bytes"]: row for row in report.rows if row["system"] == "uppar"
    }
    assert uppar[65536]["throughput_bytes_per_s"] < slash[65536]["throughput_bytes_per_s"]


@pytest.mark.benchmark(group="fig8")
def test_fig8c_parallelism(benchmark):
    report = benchmark.pedantic(
        lambda: fig8_parallelism(
            thread_counts=(1, 2, 4, 6, 8, 10), records_per_thread=120_000
        ),
        rounds=1,
        iterations=1,
    )
    register_report("fig8c_parallelism", report.render())

    rows = {(r["system"], r["threads"]): r["throughput_bytes_per_s"] for r in report.rows}
    # Slash saturates early: 2 threads already close to the link.
    assert rows[("slash", 2)] > 0.85 * LINK_BANDWIDTH
    # UpPar needs many threads and improves with parallelism.
    assert rows[("uppar", 10)] > rows[("uppar", 2)]
    assert rows[("uppar", 2)] < 0.5 * LINK_BANDWIDTH


@pytest.mark.benchmark(group="fig8")
def test_fig8d_skew(benchmark):
    report = benchmark.pedantic(
        lambda: fig8_skew(
            zipf_zs=(0.2, 0.6, 1.0, 1.4, 1.8, 2.0),
            threads=10,
            records_per_thread=60_000,
        ),
        rounds=1,
        iterations=1,
    )
    register_report("fig8d_skew", report.render())

    rows = {(r["workload"], r["system"], r["z"]): r for r in report.rows}
    # RO: UpPar collapses with skew; Slash flat (transfer is data-agnostic).
    assert (
        rows[("ro", "uppar", 2.0)]["throughput_bytes_per_s"]
        < 0.7 * rows[("ro", "uppar", 0.2)]["throughput_bytes_per_s"]
    )
    slash_ratio = (
        rows[("ro", "slash", 2.0)]["throughput_bytes_per_s"]
        / rows[("ro", "slash", 0.2)]["throughput_bytes_per_s"]
    )
    assert 0.9 < slash_ratio < 1.1
    # YSB: skew *helps* Slash (smaller hot state, fewer pairs to merge)
    # and hurts UpPar.
    assert (
        rows[("ysb", "slash", 2.0)]["throughput_records_per_s"]
        > rows[("ysb", "slash", 0.2)]["throughput_records_per_s"]
    )
    assert (
        rows[("ysb", "uppar", 2.0)]["throughput_records_per_s"]
        < rows[("ysb", "uppar", 0.2)]["throughput_records_per_s"]
    )
