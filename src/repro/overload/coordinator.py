"""The overload coordinator: admission control at every worker's source.

Attached at ``sim.overload`` (mirroring ``sim.faults`` / ``sim.elastic``),
the coordinator sits between each worker thread and its input flow:

* **pacing** — with an ingest rate configured, each batch carries a
  scheduled arrival instant (rate x burst envelope); a worker that gets
  ahead of the schedule parks until the source has produced the batch;
* **queueing-delay estimation** — a worker running *behind* schedule
  reads the gap as the batch's queueing delay, and folds in the recent
  credit-stall pressure of its outbound channels (the end-to-end
  backpressure path: a starved downstream consumer stalls the producer's
  credits, the producer's admission sees it and sheds at the source);
* **SLO-aware shedding** — a pluggable policy drops records when the
  delay estimate breaches the declared SLO thresholds, every drop
  counted per source and per tenant (``admitted = offered - shed``
  exactly, never silently);
* **straggler mitigation** — per-executor service-time EWMAs feed a
  :class:`StragglerDetector`; flagged executors shed at tightened
  thresholds, which redirects work away from the slow node (its queue,
  and the cluster watermark it gates, stay short) while the exported
  overload signal lets the autoscale controller scale out instead.
"""

from __future__ import annotations

from typing import Any, Generator, Optional

import numpy as np

from repro.common.errors import StateError
from repro.common.rng import RngTree
from repro.core.scheduler import Park
from repro.metrics.slo import weighted_percentile
from repro.overload.config import OverloadConfig
from repro.overload.shedding import Shedder, make_shedder
from repro.overload.straggler import StragglerDetector
from repro.simnet.kernel import Simulator, Timeout


class OverloadCoordinator:
    """Cluster-global admission control, shedding, and gray-fault watch."""

    def __init__(self, sim: Simulator, config: OverloadConfig):
        config.validate()
        self.sim = sim
        self.config = config
        self.detector = StragglerDetector(
            alpha=config.ewma_alpha,
            ratio=config.straggler_ratio,
            min_samples=config.straggler_min_samples,
        )
        self._rng_tree = RngTree(config.seed)
        self._shedders: dict[int, Shedder] = {}
        self._paced = config.ingest_rate_records_per_s is not None
        # Per-source ((executor, thread)) schedule and accounting.
        self._batch_arrivals: dict[tuple[int, int], np.ndarray] = {}
        self._cum_records: dict[tuple[int, int], np.ndarray] = {}
        self._pos: dict[tuple[int, int], int] = {}
        self._offered: dict[tuple[int, int], int] = {}
        self._admitted: dict[tuple[int, int], int] = {}
        self._shed: dict[tuple[int, int], int] = {}
        self._last_exit: dict[tuple[int, int], float] = {}
        self._last_admitted_count: dict[tuple[int, int], int] = {}
        # Backpressure fold-in: cumulative credit-stall seconds seen per
        # executor at the last admission, and its decayed pressure.
        self._last_stall_s: dict[int, float] = {}
        self._stall_pressure_s: dict[int, float] = {}
        self._last_effective_delay: dict[int, float] = {}
        # Cluster-wide tenant accounting.
        self._tenant_offered = np.zeros(config.tenants, dtype=np.int64)
        self._tenant_shed = np.zeros(config.tenants, dtype=np.int64)
        # Admitted-record delay samples: (delay_s, record_count).
        self._delay_samples: list[tuple[float, int]] = []
        self.max_backlog_records = 0
        self.overflow_sheds = 0
        #: (executor, thread, batch_index) -> boolean keep mask, recorded
        #: only for batches that shed (config.record_masks).
        self.keep_masks: dict[tuple[int, int, int], np.ndarray] = {}
        self._executors: list[Any] = []

    # -- wiring ----------------------------------------------------------
    def register(self, executors: list[Any]) -> None:
        """Bind to the deployment and precompute arrival schedules."""
        from repro.workloads.distributions import arrival_times, burst_envelope

        self._executors = list(executors)
        config = self.config
        for executor in executors:
            if config.shed_policy is not None:
                self._shedders[executor.executor_id] = make_shedder(
                    config.shed_policy,
                    self._rng_tree.generator(
                        "overload", "shed", executor.executor_id
                    ),
                    config.tenants,
                )
            if not self._paced:
                continue
            for thread, flow in enumerate(executor.flows):
                counts = np.array(
                    [len(batch) for _stream, batch in flow], dtype=np.int64
                )
                cum = np.cumsum(counts)
                total = int(cum[-1]) if len(cum) else 0
                if total == 0:
                    continue
                envelope = burst_envelope(
                    total,
                    diurnal_amplitude=config.diurnal_amplitude,
                    flash_at_frac=config.flash_at_frac,
                    flash_duration_frac=config.flash_duration_frac,
                    flash_magnitude=config.flash_magnitude,
                )
                arrivals = arrival_times(
                    total, config.ingest_rate_records_per_s, envelope
                )
                key = (executor.executor_id, thread)
                # A batch arrives when its *last* record has (offered
                # load is per record; admission is per batch).
                self._batch_arrivals[key] = arrivals[
                    np.maximum(cum - 1, 0)
                ]
                self._cum_records[key] = cum

    def arm(self) -> None:
        """Nothing to launch: admission is driven by the worker loops."""

    # -- the admission hook ----------------------------------------------
    def admit(
        self, executor: Any, thread: int, stream_name: str, batch: Any
    ) -> Generator[Any, Any, tuple[Any, float]]:
        """Admit (possibly shedding from) one ingress batch.

        Called from the worker hot loop before any cost is charged for
        the batch.  Returns ``(admitted_batch, event_time_cover)`` where
        the cover is the original batch's max timestamp: shed records
        still advance the flow watermark (they are *gone*, not *late*),
        which is also what keeps a shedding straggler from stalling the
        cluster's trigger frontier.
        """
        exec_id = executor.executor_id
        key = (exec_id, thread)
        index = self._pos.get(key, 0)
        self._pos[key] = index + 1
        offered = len(batch)
        now = self.sim.now
        # Service-time feedback: the gap since this thread's previous
        # admission is the wall time its previous batch took end-to-end.
        prev_exit = self._last_exit.get(key)
        prev_records = self._last_admitted_count.get(key, 0)
        if prev_exit is not None and prev_records > 0:
            self.detector.note(exec_id, now - prev_exit, prev_records)

        delay = 0.0
        backlog = 0
        arrivals = self._batch_arrivals.get(key)
        if self._paced and arrivals is not None and offered:
            scheduled = float(arrivals[index])
            if now < scheduled:
                # Ahead of the offered load: park until the source has
                # produced the batch (merges and shippers keep running).
                yield Park(Timeout(scheduled - now))
                now = self.sim.now
            delay = max(0.0, now - scheduled)
            cum = self._cum_records[key]
            due_batches = int(np.searchsorted(arrivals, now, side="right"))
            due_records = int(cum[due_batches - 1]) if due_batches else 0
            done_records = int(cum[index - 1]) if index else 0
            backlog = max(0, due_records - done_records)
            if backlog > self.max_backlog_records:
                self.max_backlog_records = backlog

        # End-to-end backpressure: fold the executor's recent outbound
        # credit stalls into the delay estimate, decayed per admission.
        stall_total = sum(
            producer.stats.credit_stall_s
            for producer in getattr(executor, "_out_channels", {}).values()
        )
        stall_delta = stall_total - self._last_stall_s.get(exec_id, 0.0)
        self._last_stall_s[exec_id] = stall_total
        alpha = self.config.ewma_alpha
        pressure_s = (
            alpha * stall_delta
            + (1.0 - alpha) * self._stall_pressure_s.get(exec_id, 0.0)
        )
        self._stall_pressure_s[exec_id] = pressure_s
        effective = delay + pressure_s
        self._last_effective_delay[exec_id] = effective

        self._offered[key] = self._offered.get(key, 0) + offered
        admitted_batch = batch
        shed = 0
        shedder = self._shedders.get(exec_id)
        tenant_counts = None
        if offered:
            tenant_counts = np.bincount(
                np.asarray(batch.keys, dtype=np.int64) % self.config.tenants,
                minlength=self.config.tenants,
            )
            self._tenant_offered += tenant_counts
        if shedder is not None and offered:
            slo = self.config.slo_s
            scale = 1.0
            if self.config.mitigation and self.detector.is_straggler(exec_id):
                scale = self.config.straggler_shed_factor
            engage = self.config.engage_frac * slo * scale
            saturate = self.config.shed_frac * slo * scale
            if backlog > self.config.ingress_queue_records:
                # Bounded ingress queue: overflow drops the whole batch
                # no matter how the delay estimate looks.
                pressure = 1.0
                self.overflow_sheds += 1
            elif effective <= engage:
                pressure = 0.0
            elif effective >= saturate:
                pressure = 1.0
            else:
                pressure = (effective - engage) / (saturate - engage)
            if pressure > 0.0:
                mask = shedder.keep_mask(batch.keys, pressure)
                if mask is not None:
                    admitted_batch = batch.select(mask)
                    shed = offered - len(admitted_batch)
                    if shed and self.config.record_masks:
                        self.keep_masks[(exec_id, thread, index)] = mask
                    if shed:
                        self._tenant_shed += tenant_counts - np.bincount(
                            np.asarray(admitted_batch.keys, dtype=np.int64)
                            % self.config.tenants,
                            minlength=self.config.tenants,
                        )

        admitted = offered - shed
        self._admitted[key] = self._admitted.get(key, 0) + admitted
        self._shed[key] = self._shed.get(key, 0) + shed
        if admitted:
            self._delay_samples.append((delay, admitted))
        self._last_exit[key] = self.sim.now
        self._last_admitted_count[key] = admitted

        san = self.sim.sanitize
        if san is not None:
            san.note_overload_admission(
                f"exec{exec_id}.t{thread}",
                offered=self._offered[key],
                admitted=self._admitted[key],
                shed=self._shed[key],
                batch_offered=offered,
                batch_admitted=admitted,
                batch_shed=shed,
                policy_active=shedder is not None,
                queue_depth=backlog,
            )
        return admitted_batch, batch.max_timestamp

    # -- signals ----------------------------------------------------------
    def overload_delay_s(self) -> float:
        """Worst current effective queueing delay across executors.

        Exported to the elastic layer's :class:`AutoscaleController` so
        shedding (ride out a short spike) and scale-out (a sustained
        one) compose into one closed loop.
        """
        if not self._last_effective_delay:
            return 0.0
        return max(self._last_effective_delay.values())

    # -- accounting --------------------------------------------------------
    def totals(self) -> dict:
        """Cluster-wide offered/admitted/shed record counts."""
        return {
            "offered": sum(self._offered.values()),
            "admitted": sum(self._admitted.values()),
            "shed": sum(self._shed.values()),
        }

    def finalize(
        self, executors: list[Any], crashed: frozenset = frozenset()
    ) -> None:
        """End-of-run accounting: every offered record is accounted for.

        ``offered = admitted + shed`` per source, and every admitted
        record was actually processed by its worker (no silent drop
        between admission and the pipeline).  Raises
        :class:`StateError` on any mismatch; with the sanitizer attached
        the check is also recorded as the ``no-silent-drop`` invariant.
        Crashed executors keep the conservation check but skip the
        processed comparison — recovery replay re-processes their input.
        """
        san = self.sim.sanitize
        for executor in executors:
            exec_id = executor.executor_id
            offered = sum(
                count for (eid, _t), count in self._offered.items()
                if eid == exec_id
            )
            admitted = sum(
                count for (eid, _t), count in self._admitted.items()
                if eid == exec_id
            )
            shed = sum(
                count for (eid, _t), count in self._shed.items()
                if eid == exec_id
            )
            processed = executor.records_processed
            if san is not None and exec_id not in crashed:
                san.check_no_silent_drop(
                    f"exec{exec_id}", offered, admitted, shed, processed
                )
            if offered != admitted + shed:
                raise StateError(
                    f"overload accounting broken on executor {exec_id}: "
                    f"offered {offered} != admitted {admitted} + shed {shed}"
                )
            if exec_id not in crashed and processed != admitted:
                raise StateError(
                    f"silent drop on executor {exec_id}: admitted "
                    f"{admitted} records but the pipeline processed "
                    f"{processed}"
                )

    def report(self) -> dict:
        """Snapshot for ``RunResult.extra['overload']``."""
        totals = self.totals()
        p50 = weighted_percentile(self._delay_samples, 50.0)
        p99 = weighted_percentile(self._delay_samples, 99.0)
        p999 = weighted_percentile(self._delay_samples, 99.9)
        return {
            "policy": self.config.shed_policy or "none",
            "paced": self._paced,
            "slo_p99_ms": self.config.slo_p99_ms,
            "offered": totals["offered"],
            "admitted": totals["admitted"],
            "shed": totals["shed"],
            "delay_p50_ms": p50 * 1e3,
            "delay_p99_ms": p99 * 1e3,
            "delay_p999_ms": p999 * 1e3,
            "slo_met": p99 * 1e3 <= self.config.slo_p99_ms,
            "max_backlog_records": self.max_backlog_records,
            "overflow_sheds": self.overflow_sheds,
            "tenant_offered": self._tenant_offered.tolist(),
            "tenant_shed": self._tenant_shed.tolist(),
            "straggler": self.detector.report(),
            "mitigation": self.config.mitigation,
        }
