"""Gray-failure detection: per-executor service-time EWMAs.

A slow node (thermal throttling, a noisy neighbour, a jittered link)
keeps heartbeating, so the phi-accrual failure detector never fires —
the only observable is that the node's *service time per record* drifts
away from its peers'.  :class:`StragglerDetector` keeps one
exponentially-weighted moving average per executor and flags an executor
as a straggler once its EWMA exceeds ``ratio`` x the cluster median.

Pure bookkeeping, no simulation dependencies — unit-testable exactly
like the elastic layer's :class:`AutoscaleController`.
"""

from __future__ import annotations

import statistics
from typing import Optional


class StragglerDetector:
    """Flags executors whose per-record service time drifts off-median."""

    def __init__(
        self,
        alpha: float = 0.2,
        ratio: float = 2.0,
        min_samples: int = 5,
    ):
        self.alpha = alpha
        self.ratio = ratio
        self.min_samples = min_samples
        self._ewma: dict[int, float] = {}
        self._samples: dict[int, int] = {}
        #: Executors flagged at least once, with the sample index of the
        #: first flag (diagnostics for the harness report).
        self.flagged_at: dict[int, int] = {}
        self._observations = 0

    def note(self, executor_id: int, service_s: float, records: int) -> None:
        """Fold one batch's service time into the executor's EWMA."""
        if records <= 0 or service_s < 0:
            return
        per_record = service_s / records
        self._observations += 1
        prev = self._ewma.get(executor_id)
        if prev is None:
            self._ewma[executor_id] = per_record
        else:
            self._ewma[executor_id] = (
                self.alpha * per_record + (1.0 - self.alpha) * prev
            )
        self._samples[executor_id] = self._samples.get(executor_id, 0) + 1
        if self.is_straggler(executor_id):
            self.flagged_at.setdefault(executor_id, self._observations)

    def ewma(self, executor_id: int) -> Optional[float]:
        """The executor's current per-record service-time EWMA."""
        return self._ewma.get(executor_id)

    def cluster_median(self) -> Optional[float]:
        """Median EWMA over executors with enough samples."""
        mature = [
            value for executor_id, value in self._ewma.items()
            if self._samples.get(executor_id, 0) >= self.min_samples
        ]
        if len(mature) < 2:
            return None  # a 1-node "cluster" has no peers to drift from
        return statistics.median(mature)

    def is_straggler(self, executor_id: int) -> bool:
        """Whether the executor is currently flagged as a straggler."""
        if self._samples.get(executor_id, 0) < self.min_samples:
            return False
        median = self.cluster_median()
        if median is None or median <= 0:
            return False
        value = self._ewma.get(executor_id)
        return value is not None and value > self.ratio * median

    def stragglers(self) -> list[int]:
        """Currently-flagged executor ids, ascending."""
        return sorted(
            executor_id for executor_id in self._ewma
            if self.is_straggler(executor_id)
        )

    def report(self) -> dict:
        """Snapshot for the harness report."""
        return {
            "ewma_per_record_s": dict(sorted(self._ewma.items())),
            "stragglers": self.stragglers(),
            "ever_flagged": sorted(self.flagged_at),
        }
