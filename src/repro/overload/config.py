"""Declarative configuration for the overload plane.

An :class:`OverloadConfig` is plain, picklable data describing how a run
admits, paces, and sheds its input: the declared latency SLO, the
offered ingest rate and burst envelope, the shed policy, and the
straggler-mitigation knobs.  ``None`` for ``ingest_rate_records_per_s``
selects *unpaced* mode — no arrival schedule, zero queueing delay, no
shedding — which is how the sanitizer scenarios exercise the accounting
invariants without changing results.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.common.errors import ConfigError


@dataclass(frozen=True)
class OverloadConfig:
    """Everything the overload coordinator needs, as plain data."""

    #: Declared p99 latency SLO over *admitted* records, milliseconds.
    slo_p99_ms: float = 50.0
    #: Shed policy (a SHED_POLICIES value) or ``None`` for admission
    #: accounting only — the no-shed baseline.
    shed_policy: Optional[str] = None
    #: Offered load per worker thread, records/second.  ``None`` =
    #: unpaced (sanitize mode): no schedule, no delay, no shedding.
    ingest_rate_records_per_s: Optional[float] = None
    #: Tenant count; a record's tenant is ``key % tenants``.
    tenants: int = 4
    #: Burst envelope (see workloads.distributions.burst_envelope).
    diurnal_amplitude: float = 0.0
    flash_at_frac: Optional[float] = None
    flash_duration_frac: float = 0.1
    flash_magnitude: float = 2.0
    #: Bounded ingress queue: once more than this many *due* records are
    #: waiting, an active shed policy drops whole batches on overflow.
    ingress_queue_records: int = 50_000
    #: Queueing-delay thresholds as fractions of the SLO: shedding
    #: engages at ``engage_frac`` and saturates (sheds everything) at
    #: ``shed_frac``, so every admitted record sits below the SLO with
    #: margin.
    engage_frac: float = 0.4
    shed_frac: float = 0.7
    #: Straggler mitigation: when on, executors flagged by the detector
    #: shed at ``straggler_shed_factor`` x the normal thresholds, keeping
    #: the slow node's queue (and the cluster watermark it gates) short.
    mitigation: bool = True
    ewma_alpha: float = 0.2
    straggler_ratio: float = 2.0
    straggler_min_samples: int = 5
    straggler_shed_factor: float = 0.5
    #: Seed for the shedders' record-sampling streams.
    seed: int = 0
    #: Record per-batch keep masks so the harness can rebuild the
    #: shed-filtered input and run the differential oracle on it.
    record_masks: bool = False

    def validate(self) -> None:
        """Reject configurations that cannot mean anything sensible."""
        if self.slo_p99_ms <= 0:
            raise ConfigError(
                f"slo_p99_ms must be positive, got {self.slo_p99_ms}"
            )
        if (
            self.ingest_rate_records_per_s is not None
            and self.ingest_rate_records_per_s <= 0
        ):
            raise ConfigError(
                "ingest_rate_records_per_s must be positive, got "
                f"{self.ingest_rate_records_per_s}"
            )
        if self.tenants <= 0:
            raise ConfigError(f"tenants must be positive, got {self.tenants}")
        if self.ingress_queue_records <= 0:
            raise ConfigError(
                "ingress_queue_records must be positive, got "
                f"{self.ingress_queue_records}"
            )
        if not 0.0 < self.engage_frac < self.shed_frac <= 1.0:
            raise ConfigError(
                "need 0 < engage_frac < shed_frac <= 1, got "
                f"engage_frac={self.engage_frac} shed_frac={self.shed_frac}"
            )
        if not 0.0 < self.ewma_alpha <= 1.0:
            raise ConfigError(
                f"ewma_alpha must be in (0, 1], got {self.ewma_alpha}"
            )
        if self.straggler_ratio <= 1.0:
            raise ConfigError(
                "straggler_ratio must be > 1 (a multiple of the cluster "
                f"median service time), got {self.straggler_ratio}"
            )
        if self.straggler_min_samples <= 0:
            raise ConfigError(
                "straggler_min_samples must be positive, got "
                f"{self.straggler_min_samples}"
            )
        if not 0.0 < self.straggler_shed_factor <= 1.0:
            raise ConfigError(
                "straggler_shed_factor must be in (0, 1], got "
                f"{self.straggler_shed_factor}"
            )
        # Envelope parameters share the distributions-module contract;
        # building a tiny envelope validates them without duplication.
        from repro.workloads.distributions import burst_envelope

        burst_envelope(
            1,
            diurnal_amplitude=self.diurnal_amplitude,
            flash_at_frac=self.flash_at_frac,
            flash_duration_frac=self.flash_duration_frac,
            flash_magnitude=self.flash_magnitude,
        )

    @property
    def slo_s(self) -> float:
        """The SLO in seconds (the coordinator's working unit)."""
        return self.slo_p99_ms / 1e3
