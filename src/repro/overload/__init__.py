"""Overload robustness: backpressure, SLO-aware shedding, gray faults.

The overload plane answers the failure mode crashes and partitions
don't cover: nothing dies, the system just drowns.  It threads
source-level admission control through every worker loop (pacing
against an offered-load schedule, queueing-delay estimation fed by
channel credit stalls), sheds records under a declared latency SLO with
pluggable policies, and watches per-executor service-time EWMAs for the
gray failures (`slow-node`, `jitter`) the binary failure detector
cannot see.

Entry points: :class:`OverloadConfig` (declarative knobs, attached via
``SystemHooks.attach_overload``) and :class:`OverloadCoordinator`
(attached at ``sim.overload`` by the engine's ``run``).
"""

from repro.overload.config import OverloadConfig
from repro.overload.coordinator import OverloadCoordinator, weighted_percentile
from repro.overload.shedding import (
    DropOldestShedder,
    FairShedder,
    ProbabilisticShedder,
    Shedder,
    make_shedder,
)
from repro.overload.straggler import StragglerDetector

__all__ = [
    "OverloadConfig",
    "OverloadCoordinator",
    "Shedder",
    "DropOldestShedder",
    "ProbabilisticShedder",
    "FairShedder",
    "make_shedder",
    "StragglerDetector",
    "weighted_percentile",
]
