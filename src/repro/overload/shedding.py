"""Pluggable load shedders: which records to drop when the SLO is at risk.

A shedder answers one question per ingress batch: given the current
queueing-delay estimate relative to the declared SLO, which records (if
any) should be dropped *before* they cost a single cycle downstream?
Every decision returns an explicit keep mask — nothing disappears
silently; the coordinator logs the shed count per source and per tenant
so the oracle can verify ``admitted = emitted + shed`` exactly.

Policies:

``drop-oldest``
    Batch-granular: once the delay estimate crosses the saturation
    threshold, the whole (oldest, i.e. current) batch is shed.  Cheapest
    possible decision, coarsest fairness.
``probabilistic``
    Record-granular seeded sampling: the drop probability ramps linearly
    from 0 at the engage threshold to 1 at saturation, so degradation is
    gradual and every tenant is sampled in proportion to its traffic
    *in expectation*.
``fair``
    Tenant-aware: the same shed *fraction* is applied within each
    tenant's records (stochastic rounding per tenant), so per-tenant
    shed share tracks traffic share even in small batches — a hot
    tenant cannot push a cold tenant's records out.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.common.errors import ConfigError
from repro.core.system import (
    SHED_POLICIES,
    SHED_POLICY_DROP_OLDEST,
    SHED_POLICY_FAIR,
    SHED_POLICY_PROBABILISTIC,
)


class Shedder:
    """Base policy: maps (delay pressure, batch) to a keep decision."""

    name = "none"

    def __init__(self, rng: np.random.Generator, tenants: int):
        self.rng = rng
        self.tenants = tenants

    def shed_fraction(self, pressure: float) -> float:
        """The target drop fraction for delay ``pressure`` in [0, 1].

        ``pressure`` is the position of the current queueing-delay
        estimate between the engage threshold (0.0) and the saturation
        threshold (1.0), pre-clamped by the coordinator.
        """
        return pressure

    def keep_mask(
        self, keys: np.ndarray, pressure: float
    ) -> Optional[np.ndarray]:
        """Boolean keep mask for a batch, or ``None`` for keep-all.

        ``pressure <= 0`` always keeps everything; ``pressure >= 1``
        always sheds everything.  Subclasses decide the in-between.
        """
        raise NotImplementedError


class DropOldestShedder(Shedder):
    """Shed whole batches once saturated: the queue head is the oldest
    data, and by the time saturation is reached it is also the most
    stale — dropping it frees capacity fastest."""

    name = SHED_POLICY_DROP_OLDEST

    def keep_mask(self, keys, pressure):
        if pressure >= 1.0:
            return np.zeros(len(keys), dtype=bool)
        return None


class ProbabilisticShedder(Shedder):
    """Seeded per-record sampling with a linear drop-probability ramp."""

    name = SHED_POLICY_PROBABILISTIC

    def keep_mask(self, keys, pressure):
        if pressure <= 0.0:
            return None
        if pressure >= 1.0:
            return np.zeros(len(keys), dtype=bool)
        return self.rng.random(len(keys)) >= pressure


class FairShedder(Shedder):
    """Equal shed *fraction* within every tenant present in the batch.

    The drop count per tenant is ``fraction * tenant_records`` with
    stochastic rounding, and the dropped rows are a seeded choice within
    the tenant — so over a run each tenant's shed share converges to its
    traffic share regardless of how skewed the traffic is.
    """

    name = SHED_POLICY_FAIR

    def keep_mask(self, keys, pressure):
        if pressure <= 0.0:
            return None
        if pressure >= 1.0:
            return np.zeros(len(keys), dtype=bool)
        tenants = np.asarray(keys, dtype=np.int64) % self.tenants
        keep = np.ones(len(keys), dtype=bool)
        for tenant in np.unique(tenants):
            rows = np.flatnonzero(tenants == tenant)
            exact = pressure * len(rows)
            drop = int(exact) + (1 if self.rng.random() < exact - int(exact) else 0)
            if drop <= 0:
                continue
            drop = min(drop, len(rows))
            keep[self.rng.choice(rows, size=drop, replace=False)] = False
        return keep


_POLICIES = {
    SHED_POLICY_DROP_OLDEST: DropOldestShedder,
    SHED_POLICY_PROBABILISTIC: ProbabilisticShedder,
    SHED_POLICY_FAIR: FairShedder,
}


def make_shedder(
    policy: str, rng: np.random.Generator, tenants: int
) -> Shedder:
    """Instantiate the shedder for ``policy`` (a SHED_POLICIES value)."""
    cls = _POLICIES.get(policy)
    if cls is None:
        raise ConfigError(
            f"unknown shed policy {policy!r}; known: {sorted(SHED_POLICIES)}"
        )
    return cls(rng, tenants)
