"""A LightSaber-shaped scale-up SPE (single node, late merge).

LightSaber (Theodorakis et al., SIGMOD'20) is the paper's scale-up
representative: task-based parallelism on one multi-core node, workers
eagerly computing thread-local partial window aggregates that are merged
lazily when a window completes.  Two fidelity points from the paper:

* LightSaber shares a **single task queue** among workers (Sec. 5.3), so
  every task dispatch pays a synchronisation cost that grows with the
  worker count;
* it **does not support joins** (Sec. 8.2.4) — join queries are rejected.

Because it runs on one node, there is no network; the engine's ceiling
is the socket's cores and DRAM bandwidth, which is exactly the COST
argument of Fig. 7.
"""

from __future__ import annotations

from typing import Any, Generator, Optional

from repro.baselines.costs import LIGHTSABER_COSTS, ScaleUpCosts
from repro.common.config import ClusterConfig, paper_cluster
from repro.common.errors import ConfigError, QueryError
from repro.core.engine import RunResult
from repro.core.pipeline import compile_query
from repro.core.progress import WindowTriggerState
from repro.core.query import Query
from repro.core.system import CAP_SANITIZE, SystemHooks, install_sanitizer
from repro.core.windows import SessionWindows, SlidingWindow
from repro.simnet.cluster import Cluster
from repro.simnet.kernel import AllOf, Simulator
from repro.workloads.base import Flow


class LightSaberEngine(SystemHooks):
    """Scale-up, single-node, late-merge window aggregation engine."""

    name = "lightsaber"
    # Single node, no network, no joins/sessions, no recovery plane —
    # the capability-gating poster child (fault injection fails fast).
    capabilities = frozenset({CAP_SANITIZE})

    def __init__(
        self,
        cluster_config: Optional[ClusterConfig] = None,
        costs: ScaleUpCosts = LIGHTSABER_COSTS,
    ):
        self.cluster_config = cluster_config or paper_cluster(1)
        self.costs = costs

    def run(self, query: Query, flows: dict[tuple[int, int], Flow]) -> RunResult:
        query.validate()
        if query.is_join:
            raise QueryError("LightSaber does not support join queries (paper Sec. 8.2.4)")
        nodes = {node for node, _thread in flows}
        if nodes != {0}:
            raise ConfigError(
                f"LightSaber is single-node; flows reference nodes {sorted(nodes)}"
            )
        threads = max(thread for _node, thread in flows) + 1
        plan = compile_query(query)
        sim = Simulator()
        if self.sanitize:
            install_sanitizer(sim)
        cluster = Cluster(sim, self.cluster_config.with_nodes(1))
        node = cluster.node(0)
        if threads > len(node.cores):
            raise ConfigError(f"{threads} threads exceed {len(node.cores)} cores")

        crdt = plan.crdt
        window = plan.window
        if isinstance(window, SessionWindows):
            raise QueryError("LightSaber supports bucket/slice windows only")
        # Thread-local partial states (the eager half of late merge).
        locals_: list[dict] = [dict() for _ in range(threads)]
        local_bytes = [0.0] * threads
        flow_maxes = [float("-inf")] * threads
        flow_done = [False] * threads
        trigger = WindowTriggerState(window)
        results: dict = {}
        emitted = [0]
        records = [0]
        # Task-queue contention grows with the number of contenders.
        queue_cost_profile = self.costs.task_queue_sync.scaled(
            1.0 + 0.15 * max(0, threads - 1)
        )

        disorder = max(stream.disorder_ms for stream in query.streams)

        def frontier() -> float:
            live = [
                m - disorder if m != float("-inf") else m
                for m, done in zip(flow_maxes, flow_done)
                if not done
            ]
            return min(live) if live else float("inf")

        def merge_due(core) -> Generator[Any, Any, None]:
            for window_id in trigger.due_windows(frontier()):
                yield from fire(core, window_id)

        def fire(core, window_id: int) -> Generator[Any, Any, None]:
            slice_ids = (
                window.slices_of_window(window_id)
                if isinstance(window, SlidingWindow)
                else (window_id,)
            )
            merged: dict = {}
            pairs = 0
            for local in locals_:
                for slice_id in slice_ids:
                    keep_slice = (
                        isinstance(window, SlidingWindow) and slice_id != window_id
                    )
                    for state_key in [k for k in local if k[0] == slice_id]:
                        payload = local[state_key] if keep_slice else local.pop(state_key)
                        key = state_key[1]
                        pairs += 1
                        if key in merged:
                            merged[key] = crdt.merge(merged[key], payload)
                        else:
                            merged[key] = payload
            if not merged:
                return
            cost_model = node.cost_model
            merge_cost = cost_model.op(
                self.costs.merge_pair, 4096.0, self.costs.merge_lines
            )
            yield from core.execute(merge_cost, float(pairs))
            yield from core.execute(
                cost_model.compute_cost(self.costs.emit), float(len(merged))
            )
            for key, payload in merged.items():
                results[(window_id, key)] = crdt.finish(payload)
            emitted[0] += len(merged)

        def worker(thread: int) -> Generator[Any, Any, None]:
            core = node.core(thread)
            cost_model = node.cost_model
            local = locals_[thread]
            for stream_name, batch in flows[(0, thread)]:
                records[0] += len(batch)
                # Fetch a task from the single shared queue.
                yield from core.execute(
                    cost_model.compute_cost(queue_cost_profile), 1.0
                )
                yield from core.execute(
                    cost_model.cache.streaming_cost(batch.wire_bytes), 1.0
                )
                yield from core.execute(
                    cost_model.compute_cost(self.costs.pipeline), float(len(batch))
                )
                result = plan.pipeline_for(stream_name).process_batch(batch)
                if result.survivors:
                    working_set = max(4096.0, local_bytes[thread])
                    update_cost = cost_model.op(
                        self.costs.update, working_set, self.costs.update_lines
                    )
                    yield from core.execute(update_cost, float(result.survivors))
                    core.counters.count_records(result.survivors)
                    for key, partial in result.partials.items():
                        if key in local:
                            local[key] = crdt.merge(local[key], partial)
                        else:
                            local[key] = partial
                    local_bytes[thread] += result.state_bytes
                    trigger.note_slices(k[0] for k in result.partials)
                flow_maxes[thread] = max(flow_maxes[thread], result.max_timestamp)
                if thread == 0:
                    yield from merge_due(core)
            flow_done[thread] = True

        def finalizer(worker_procs) -> Generator[Any, Any, None]:
            yield AllOf(worker_procs)
            yield from merge_due(node.core(0))
            if trigger.pending:
                raise ConfigError(
                    f"LightSaber finished with pending windows "
                    f"{sorted(trigger.pending)[:5]}"
                )

        worker_procs = [
            sim.process(worker(thread), name=f"ls.worker{thread}")
            for thread in range(threads)
        ]
        sim.process(finalizer(worker_procs), name="ls.finalizer")
        sim.run()

        run_result = RunResult(
            system=self.name,
            query_name=query.name,
            nodes=1,
            threads_per_node=threads,
            input_records=records[0],
            sim_seconds=sim.now,
            aggregates=results,
            emitted=emitted[0],
        )
        node_counters = node.counters()
        run_result.per_node_counters.append(node_counters)
        run_result.counters.merge(node_counters)
        if sim.sanitize is not None:
            run_result.extra["sanitizer_checks"] = sim.sanitize.check_counts()
        return run_result
