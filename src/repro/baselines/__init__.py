"""Baseline systems the paper evaluates Slash against (Sec. 8.1.1).

* :mod:`repro.baselines.reference` — a sequential executor defining the
  ground-truth query output (property P2);
* :mod:`repro.baselines.uppar` — **RDMA UpPar**: the straw-man
  'lightweight integration' — classical hash re-partitioning over
  Slash's own RDMA channels (Sec. 3.1);
* :mod:`repro.baselines.flink` — a Flink-1.9-shaped scale-out SPE:
  queue-based partitioning on a managed runtime over IP-over-InfiniBand
  ('plug-and-play integration');
* :mod:`repro.baselines.lightsaber` — a LightSaber-shaped scale-up SPE:
  single node, task-based parallelism, late merge, no network;
* :mod:`repro.baselines.transfer` — the two-node producer/consumer
  harnesses used by the drill-down experiments (Figs. 8-10, Table 1).
"""

from repro.baselines.reference import SequentialReference
from repro.baselines.uppar import UpParEngine
from repro.baselines.flink import FlinkEngine
from repro.baselines.lightsaber import LightSaberEngine
from repro.baselines.transfer import (
    SlashTransferBench,
    UpParTransferBench,
    TransferResult,
)

__all__ = [
    "SequentialReference",
    "UpParEngine",
    "FlinkEngine",
    "LightSaberEngine",
    "SlashTransferBench",
    "UpParTransferBench",
    "TransferResult",
]
