"""A Flink-1.9-shaped scale-out SPE on IP-over-InfiniBand.

This models the paper's 'plug-and-play integration' system under test:
the same queue-based re-partitioning dataflow as RDMA UpPar, but

* the exchange rides **socket channels over IPoIB** (kernel syscalls,
  copies, and a fraction of the link's RDMA bandwidth);
* all compute carries a **managed-runtime multiplier** (JVM dispatch,
  object churn) and per-record **serialization** on both sides of every
  network hop — the overheads the paper cites from Zeuch et al. [70];
* same-node exchange still pays loopback serde (Flink serialises across
  local exchanges between task slots unless operators chain).

Configuration follows the paper's Flink setup: half the cores process,
half do network I/O — reflected here as the partitioner/consumer split
plus the per-buffer flush overheads of queue-mediated networking.
"""

from __future__ import annotations

from typing import Optional

from repro.baselines.costs import FLINK_COSTS, ExchangeCosts
from repro.baselines.ipoib import IpoibChannel, IpoibFabric
from repro.baselines.partitioned import PartitionedEngine, _RunContext
from repro.common.config import ClusterConfig, DEFAULT_BUFFER_BYTES
from repro.core.system import (
    CAP_FAULT_INJECTION,
    CAP_JOINS,
    CAP_SANITIZE,
    CAP_SCALE_OUT,
    CAP_SESSION_WINDOWS,
)
from repro.simnet.cluster import Node

# TCP gives a deeper in-flight window than an RDMA ring of 8 buffers.
FLINK_WINDOW_BUFFERS = 32


class FlinkEngine(PartitionedEngine):
    """Queue-based partitioning on a managed runtime over IPoIB."""

    name = "flink"
    # Data-plane faults only: the IPoIB channel retransmits dropped
    # segments with exponential RTO backoff, its per-node fabric pipes
    # degrade under a NIC flap, and a zero-window fault withholds its
    # acks — but there are no checkpoints or membership, so crash and
    # partition plans stay rejected.
    capabilities = frozenset(
        {
            CAP_SCALE_OUT,
            CAP_JOINS,
            CAP_SESSION_WINDOWS,
            CAP_SANITIZE,
            CAP_FAULT_INJECTION,
        }
    )
    # slow-node rides the node cost model (every priced op slows) and
    # jitter the shared physical path the IPoIB wire consults.
    supported_fault_kinds = frozenset(
        {"nic-flap", "drop-chunk", "credit-starvation", "slow-node", "jitter"}
    )

    def __init__(
        self,
        cluster_config: Optional[ClusterConfig] = None,
        buffer_bytes: int = DEFAULT_BUFFER_BYTES,
        costs: ExchangeCosts = FLINK_COSTS,
    ):
        super().__init__(costs, cluster_config, FLINK_WINDOW_BUFFERS, buffer_bytes)
        self._fabric: Optional[IpoibFabric] = None

    def _make_channel(self, ctx: _RunContext, src: Node, dst: Node, name: str):
        if self._fabric is None or self._fabric.sim is not ctx.sim:
            self._fabric = IpoibFabric(ctx.sim)
        return IpoibChannel(
            self._fabric, src, dst,
            credits=self.credits, buffer_bytes=self.buffer_bytes, name=name,
        )

    def _serde_records(self, n: int) -> float:
        # Every exchanged record is serialized (sender) or deserialized
        # (receiver); callers invoke this once per side.
        return float(n)

    def _fault_pipes(self, ctx: _RunContext, node_index: int) -> list:
        # A NIC flap throttles the IPoIB fabric the same way it throttles
        # the RDMA pipes (it is the same physical port).
        if self._fabric is None:
            return []
        node = ctx.cluster.node(node_index)
        return [self._fabric.tx(node), self._fabric.rx(node)]
