"""Two-node producer/consumer benches for the drill-down experiments.

The paper's Sec. 8.3 isolates the data plane: one producer node streams
pre-generated data to one consumer node over a single NIC, and the
consumer applies the stateful operator (RO's per-key count, or the YSB
window).  Two shapes are compared:

* :class:`SlashTransferBench` — Slash's shape: producer thread *i* feeds
  consumer thread *i* over one RDMA channel (no partitioning; consumers
  update shared-mutable-style local fragments);
* :class:`UpParTransferBench` — UpPar's shape: every producer thread
  hash-partitions records across *all* consumer threads (fan-out
  channels, data-dependent routing).

These benches produce Figs. 8a-8d (buffer-size, parallelism, and skew
sweeps), the top-down breakdowns of Figs. 9-10, and Table 1.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Generator, Optional

import numpy as np

from repro.baselines.costs import UPPAR_COSTS, ExchangeCosts
from repro.channel.channel import CHANNEL_EOS, RdmaChannel
from repro.channel.circular_queue import FOOTER_BYTES
from repro.common.config import ClusterConfig, DEFAULT_CREDITS, paper_cluster
from repro.common.errors import ConfigError
from repro.core.aggregations import _segments
from repro.core.costs import DEFAULT_SLASH_COSTS, SlashCosts, quantize_working_set
from repro.core.pipeline import compile_query
from repro.core.records import RecordBatch
from repro.rdma.connection import ConnectionManager
from repro.simnet.cluster import Cluster, Core
from repro.simnet.counters import HwCounters
from repro.simnet.kernel import Simulator
from repro.state.partition import stable_hash_array
from repro.workloads.base import Workload

MESSAGE_HEADER_BYTES = 48


class _DeferredMerge:
    """End-of-run state fold for order-independent integer partials.

    Count partials are int64 and integer addition is exact in any order,
    so instead of merging every message's groups into the state dict one
    key at a time (a random-access loop over a dict with millions of
    entries), consumers append the group columns here and a single
    C-level segment reduction folds them after ``sim.run()``.  Only
    Python-side bookkeeping moves; per-message simulated costs are
    charged exactly as before.
    """

    def __init__(self):
        self._windows: list[np.ndarray] = []
        self._keys: list[np.ndarray] = []
        self._partials: list[np.ndarray] = []

    def add(self, result) -> None:
        self._windows.append(result.group_windows)
        self._keys.append(result.group_keys)
        self._partials.append(result.group_partials)

    def fold_into(self, state: dict) -> None:
        if not self._keys:
            return
        windows = np.concatenate(self._windows)
        keys = np.concatenate(self._keys)
        partials = np.concatenate(self._partials)
        order, starts, group_windows, group_keys = _segments(windows, keys)
        totals = np.add.reduceat(partials[order], starts)
        state.update(
            zip(
                zip(group_windows.tolist(), group_keys.tolist()),
                totals.tolist(),
            )
        )


@dataclass
class TransferResult:
    """Observables of one two-node transfer run."""

    system: str
    workload: str
    threads: int
    buffer_bytes: int
    records: int
    payload_bytes: float
    sim_seconds: float
    mean_latency_s: float
    max_latency_s: float
    credit_stall_s: float
    sender_counters: HwCounters = field(default_factory=HwCounters)
    receiver_counters: HwCounters = field(default_factory=HwCounters)
    state: dict = field(default_factory=dict)

    @property
    def throughput_bytes_per_s(self) -> float:
        return self.payload_bytes / self.sim_seconds if self.sim_seconds > 0 else 0.0

    @property
    def throughput_records_per_s(self) -> float:
        return self.records / self.sim_seconds if self.sim_seconds > 0 else 0.0


class _TransferBase:
    """Shared setup for the two transfer shapes."""

    name = "transfer"

    def __init__(
        self,
        cluster_config: Optional[ClusterConfig] = None,
        credits: int = DEFAULT_CREDITS,
        buffer_bytes: int = 64 * 1024,
        threads: int = 2,
        signal_writes: bool = False,
    ):
        if threads < 1:
            raise ConfigError("need at least one thread per side")
        self.cluster_config = (cluster_config or paper_cluster(2)).with_nodes(2)
        if threads > self.cluster_config.node.cpu.cores:
            raise ConfigError(f"{threads} threads exceed the per-node core count")
        self.credits = credits
        self.buffer_bytes = buffer_bytes
        self.threads = threads
        self.signal_writes = signal_writes

    def _setup(self) -> tuple[Simulator, Cluster, ConnectionManager]:
        sim = Simulator()
        cluster = Cluster(sim, self.cluster_config)
        return sim, cluster, ConnectionManager(cluster)

    def _rebatched_flow(self, workload: Workload, thread: int) -> list:
        """The producer flow for one thread, re-packed to fill one buffer.

        Batches are coalesced per stream and re-cut so every message fills
        the channel buffer (modulo the final remainder) — the buffer-size
        sweep of Fig. 8a/8b is meaningless otherwise.
        """
        schema_bytes = {
            s.name: s.schema.record_bytes for s in workload.build_query().streams
        }
        capacity = self.buffer_bytes - FOOTER_BYTES - MESSAGE_HEADER_BYTES
        flow = workload.flow_for(0, thread)
        per_stream: dict[str, list] = {}
        schemas: dict[str, Any] = {}
        order: list[str] = []
        for stream, batch in flow:
            if stream not in per_stream:
                per_stream[stream] = []
                order.append(stream)
                schemas[stream] = batch.schema
            if len(batch):
                per_stream[stream].append(batch.data)
        out = []
        for stream in order:
            if not per_stream[stream]:
                continue
            data = np.concatenate(per_stream[stream])
            limit = max(1, capacity // schema_bytes[stream])
            for start in range(0, len(data), limit):
                out.append(
                    (stream, RecordBatch(schemas[stream], data[start:start + limit]))
                )
        return out

    def _collect(
        self,
        sim: Simulator,
        cluster: Cluster,
        workload: Workload,
        channels: list,
        records: int,
        state: dict,
    ) -> TransferResult:
        payload = sum(ch.stats.payload_bytes for ch in channels)
        latencies = [ch.stats for ch in channels if ch.stats.messages]
        mean_latency = (
            sum(s.mean_latency_s * s.messages for s in latencies)
            / sum(s.messages for s in latencies)
            if latencies
            else 0.0
        )
        sender = HwCounters()
        receiver = HwCounters()
        for thread in range(self.threads):
            sender.merge(cluster.node(0).core(thread).counters)
            receiver.merge(cluster.node(1).core(thread).counters)
        return TransferResult(
            system=self.name,
            workload=workload.name,
            threads=self.threads,
            buffer_bytes=self.buffer_bytes,
            records=records,
            payload_bytes=payload,
            sim_seconds=sim.now,
            mean_latency_s=mean_latency,
            max_latency_s=max((s.max_latency_s for s in latencies), default=0.0),
            credit_stall_s=sum(ch.stats.credit_stall_s for ch in channels),
            sender_counters=sender,
            receiver_counters=receiver,
            state=state,
        )


class SlashTransferBench(_TransferBase):
    """Producer i -> consumer i over one RDMA channel each (no routing)."""

    name = "slash"

    def __init__(self, *args, costs: SlashCosts = DEFAULT_SLASH_COSTS, **kwargs):
        super().__init__(*args, **kwargs)
        self.costs = costs

    def run(self, workload: Workload) -> TransferResult:
        sim, cluster, cm = self._setup()
        plan = compile_query(workload.build_query())
        channels = [
            RdmaChannel.create(
                cm, 0, 1, credits=self.credits, buffer_bytes=self.buffer_bytes,
                name=f"slash-xfer{i}", signal_writes=self.signal_writes,
            )
            for i in range(self.threads)
        ]
        state: dict = {}
        deferred = _DeferredMerge() if plan.crdt.name == "count" else None
        records = [0]
        ws_bytes = [0.0]
        light = workload.name == "ro"
        update_profile = self.costs.light_update if light else self.costs.update
        update_lines = self.costs.light_update_lines if light else self.costs.update_lines

        def producer(thread: int) -> Generator[Any, Any, None]:
            core = cluster.node(0).core(thread)
            cost_model = core.node.cost_model
            flow = self._rebatched_flow(workload, thread)
            endpoint = channels[thread].producer
            for stream, batch in flow:
                yield from core.execute(
                    cost_model.cache.streaming_cost(batch.wire_bytes), 1.0
                )
                core.counters.count_records(len(batch))
                yield from endpoint.send(
                    core, (stream, batch), batch.wire_bytes + MESSAGE_HEADER_BYTES
                )
            yield from endpoint.close(core)

        def consumer(thread: int) -> Generator[Any, Any, None]:
            core = cluster.node(1).core(thread)
            cost_model = core.node.cost_model
            endpoint = channels[thread].consumer
            crdt = plan.crdt
            while True:
                payload, _n = yield from endpoint.recv(core)
                if payload is CHANNEL_EOS:
                    yield from endpoint.release(core)
                    return
                stream, batch = payload
                pipeline = plan.pipeline_for(stream)
                if pipeline.chain.op_count:
                    yield from core.execute(
                        cost_model.compute_cost(self.costs.pipeline), float(len(batch))
                    )
                result = pipeline.process_batch(batch)
                records[0] += len(batch)
                if result.survivors:
                    working_set = quantize_working_set(ws_bytes[0] + 4096)
                    update_cost = cost_model.op(
                        update_profile, working_set, update_lines
                    )
                    yield from core.execute(update_cost, float(result.survivors))
                    core.counters.count_records(result.survivors)
                    if deferred is not None:
                        deferred.add(result)
                    else:
                        crdt.merge_into(state, result.partials)
                    ws_bytes[0] += result.state_bytes
                yield from endpoint.release(core)

        for thread in range(self.threads):
            sim.process(producer(thread), name=f"slash.prod{thread}")
            sim.process(consumer(thread), name=f"slash.cons{thread}")
        sim.run()
        if deferred is not None:
            deferred.fold_into(state)
        return self._collect(sim, cluster, workload, channels, records[0], state)


class UpParTransferBench(_TransferBase):
    """Every producer hash-partitions across all consumers (fan-out)."""

    name = "uppar"

    def __init__(self, *args, costs: ExchangeCosts = UPPAR_COSTS, **kwargs):
        super().__init__(*args, **kwargs)
        self.costs = costs

    def run(self, workload: Workload) -> TransferResult:
        sim, cluster, cm = self._setup()
        plan = compile_query(workload.build_query())
        # channels[p][c]: producer thread p -> consumer thread c.
        channels = [
            [
                RdmaChannel.create(
                    cm, 0, 1, credits=self.credits, buffer_bytes=self.buffer_bytes,
                    name=f"uppar-xfer{p}->{c}", signal_writes=self.signal_writes,
                )
                for c in range(self.threads)
            ]
            for p in range(self.threads)
        ]
        state: dict = {}
        deferred = _DeferredMerge() if plan.crdt.name == "count" else None
        records = [0]
        state_bytes = [0.0]
        capacity = self.buffer_bytes - FOOTER_BYTES - MESSAGE_HEADER_BYTES
        fanout_ws = float(self.threads * self.buffer_bytes)
        light = workload.name == "ro"
        update_profile = self.costs.light_update if light else self.costs.update
        update_lines = self.costs.light_update_lines if light else self.costs.update_lines

        def producer(p: int) -> Generator[Any, Any, None]:
            core = cluster.node(0).core(p)
            cost_model = core.node.cost_model
            flow = self._rebatched_flow(workload, p)
            pending: list[list[np.ndarray]] = [[] for _ in range(self.threads)]
            pending_rows = [0] * self.threads
            limits: dict[str, int] = {}

            def flush(c: int, stream: str, schema) -> Generator[Any, Any, None]:
                if not pending[c]:
                    return
                data = (
                    np.concatenate(pending[c]) if len(pending[c]) > 1 else pending[c][0]
                )
                pending[c] = []
                pending_rows[c] = 0
                limit = limits[stream]
                for start in range(0, len(data), limit):
                    batch = RecordBatch(schema, data[start:start + limit])
                    yield from core.execute(
                        cost_model.compute_cost(self.costs.per_buffer), 1.0
                    )
                    yield from channels[p][c].producer.send(
                        core, (stream, batch), batch.wire_bytes + MESSAGE_HEADER_BYTES
                    )

            last = (None, None)
            for batch_index, (stream, batch) in enumerate(flow):
                last = (stream, batch.schema)
                limits.setdefault(
                    stream, max(1, capacity // batch.schema.record_bytes)
                )
                yield from core.execute(
                    cost_model.cache.streaming_cost(batch.wire_bytes), 1.0
                )
                partition_cost = cost_model.op(
                    self.costs.partition,
                    fanout_ws,
                    self.costs.partition_lines_for(batch.schema.record_bytes),
                )
                yield from core.execute(partition_cost, float(len(batch)))
                core.counters.count_records(len(batch))
                cids = (
                    stable_hash_array(np.asarray(batch.keys, dtype=np.int64))
                    % np.uint64(self.threads)
                ).astype(np.int64)
                for c in range(self.threads):
                    rows = batch.data[cids == c]
                    if not len(rows):
                        continue
                    pending[c].append(rows)
                    pending_rows[c] += len(rows)
                    if pending_rows[c] >= limits[stream]:
                        yield from flush(c, stream, batch.schema)
                if batch_index % 2 == 1:
                    # Buffer timeout (linger): partially-filled fan-out
                    # buffers must not sit until end-of-stream.
                    for c in range(self.threads):
                        if pending_rows[c]:
                            yield from flush(c, stream, batch.schema)
            stream, schema = last
            for c in range(self.threads):
                if stream is not None:
                    yield from flush(c, stream, schema)
                yield from channels[p][c].producer.close(core)

        def consumer(c: int) -> Generator[Any, Any, None]:
            core = cluster.node(1).core(c)
            cost_model = core.node.cost_model
            wake = sim.store(name=f"uppar.cons{c}.wake")
            endpoints = [channels[p][c].consumer for p in range(self.threads)]
            for endpoint in endpoints:
                endpoint.notify_store = wake
            crdt = plan.crdt
            done = [False] * self.threads
            index_of = {id(endpoint): p for p, endpoint in enumerate(endpoints)}
            while not all(done):
                ok, woken = wake.try_get()
                if not ok:
                    woken = yield from core.spin_wait(wake.get())
                p = index_of[id(woken)]
                endpoint = endpoints[p]
                while True:
                        ok, payload, _n = endpoint.try_recv(core)
                        if not ok:
                            break
                        if payload is CHANNEL_EOS:
                            done[p] = True
                            yield from endpoint.release(core)
                            continue
                        stream, batch = payload
                        yield from core.execute(
                            cost_model.compute_cost(self.costs.dequeue),
                            float(len(batch)),
                        )
                        result = plan.pipeline_for(stream).process_batch(batch)
                        records[0] += len(batch)
                        if result.survivors:
                            working_set = max(4096.0, state_bytes[0])
                            update_cost = cost_model.op(
                                update_profile, working_set, update_lines
                            )
                            yield from core.execute(
                                update_cost, float(result.survivors)
                            )
                            core.counters.count_records(result.survivors)
                            if deferred is not None:
                                deferred.add(result)
                            else:
                                crdt.merge_into(state, result.partials)
                            state_bytes[0] += result.state_bytes
                        yield from endpoint.release(core)

        for thread in range(self.threads):
            sim.process(producer(thread), name=f"uppar.prod{thread}")
            sim.process(consumer(thread), name=f"uppar.cons{thread}")
        sim.run()
        if deferred is not None:
            deferred.fold_into(state)
        flat_channels = [channels[p][c] for p in range(self.threads) for c in range(self.threads)]
        return self._collect(sim, cluster, workload, flat_channels, records[0], state)
