"""The classical partitioned scale-out SPE shared by UpPar and Flink.

This is the architecture the paper argues *against* (Secs. 3.1, 8.2):
each node splits its threads into **partitioner** threads (read local
flows, filter/project, hash-partition every record to the consumer that
owns its key, copy it into a fan-out buffer, ship full buffers) and
**consumer** threads (poll inbound queues from *every* partitioner in
the cluster, apply the windowed operator on consumer-local state, and
trigger windows with classical per-channel watermarks).

RDMA UpPar instantiates this over Slash's RDMA channels ('lightweight
integration'); the Flink-like engine instantiates it over IPoIB socket
channels with managed-runtime and serialization costs ('plug-and-play').

The pathologies the paper measures all *emerge* here rather than being
scripted: partitioning burns most of the sender's cycles (front-end
bound), consumers spin on empty queues (core bound), skewed keys
overload one consumer and stall every partitioner on its credits, and
the fan-out buffers blow the sender's cache.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Generator, Optional

import numpy as np

from repro.baselines.costs import ExchangeCosts
from repro.channel.channel import CHANNEL_EOS, LocalChannel, RdmaChannel
from repro.common.config import (
    ClusterConfig,
    DEFAULT_BUFFER_BYTES,
    DEFAULT_CREDITS,
    paper_cluster,
)
from repro.common.errors import ConfigError
from repro.core.engine import RunResult
from repro.core.executor import DoneToken
from repro.core.system import SystemHooks, install_sanitizer
from repro.core.join import probe_sessions, probe_window
from repro.core.pipeline import PhysicalPlan, compile_query
from repro.core.progress import WindowTriggerState
from repro.core.query import Query
from repro.core.records import RecordBatch
from repro.core.windows import SessionWindows, SlidingWindow
from repro.simnet.cluster import Cluster, Core, Node
from repro.simnet.counters import HwCounters
from repro.simnet.kernel import Simulator
from repro.state.partition import stable_hash_array
from repro.workloads.base import Flow

MESSAGE_HEADER_BYTES = 48


@dataclass
class _Message:
    """One exchange buffer: a sub-batch plus the sender's watermark."""

    stream: str
    batch: RecordBatch
    watermark: float


class _PartitionerState:
    """Fan-out buffers and watermark bookkeeping of one partitioner."""

    def __init__(
        self,
        consumer_count: int,
        streams: tuple[str, ...],
        disorder_ms: Optional[dict[str, int]] = None,
    ):
        self.pending: list[dict[str, list[np.ndarray]]] = [
            {stream: [] for stream in streams} for _ in range(consumer_count)
        ]
        self.pending_rows = [0] * consumer_count
        self.stream_maxes = {stream: float("-inf") for stream in streams}
        self.disorder = {stream: 0 for stream in streams}
        if disorder_ms:
            self.disorder.update(disorder_ms)

    @property
    def watermark(self) -> float:
        return min(
            value - self.disorder[stream] if value != float("-inf") else value
            for stream, value in self.stream_maxes.items()
        )


class PartitionedEngine(SystemHooks):
    """Base class; subclasses choose the data plane and the cost surface."""

    name = "partitioned"

    #: Flush partially-filled fan-out buffers after this many input
    #: batches (the buffer-timeout/linger every exchange-based SPE needs
    #: so downstream windows make progress).  At high fan-out this is
    #: what floods the exchange with small messages.
    linger_batches = 4

    def __init__(
        self,
        costs: ExchangeCosts,
        cluster_config: Optional[ClusterConfig] = None,
        credits: int = DEFAULT_CREDITS,
        buffer_bytes: int = DEFAULT_BUFFER_BYTES,
    ):
        self.costs = costs
        self.cluster_config = cluster_config or paper_cluster()
        self.credits = credits
        self.buffer_bytes = buffer_bytes

    # -- data plane hook -----------------------------------------------------
    def _make_channel(self, ctx: "_RunContext", src: Node, dst: Node, name: str):
        """Return a channel (producer/consumer endpoint pair) src -> dst."""
        raise NotImplementedError

    def _serde_records(self, n: int) -> float:
        """How many per-record serde charges one exchange hop costs."""
        return 0.0

    # -- the run --------------------------------------------------------------
    def run(self, query: Query, flows: dict[tuple[int, int], Flow]) -> RunResult:
        query.validate()
        nodes = max(node for node, _ in flows) + 1
        threads = max(thread for _, thread in flows) + 1
        if threads < 2:
            raise ConfigError(
                f"{self.name} needs >= 2 threads per node (half partition, "
                f"half consume); got {threads}"
            )
        if nodes > self.cluster_config.nodes:
            raise ConfigError(f"flows span {nodes} nodes > cluster size")

        sim = Simulator()
        if self.sanitize:
            install_sanitizer(sim)
        cluster = Cluster(sim, self.cluster_config.with_nodes(nodes))

        injector = None
        if self.fault_plan is not None and len(self.fault_plan):
            from repro.faults.injector import FaultInjector

            injector = FaultInjector(sim, self.fault_plan, **self.fault_overrides)
            # Attaching before wiring flips the shared channel/RDMA layer
            # onto its fault-tolerant code path (ACK-tracked transfers,
            # credit timeouts), exactly as it does for Slash.
            sim.faults = injector

        plan = compile_query(query)
        ctx = _RunContext(self, sim, cluster, plan, nodes, threads)
        ctx.wire(flows)
        if injector is not None:
            from repro.faults.injector import FaultTarget

            injector.register_data_plane(
                cluster,
                [
                    FaultTarget(
                        node=cluster.node(node_index),
                        in_channels=ctx.inbound_endpoints(node_index),
                    )
                    for node_index in range(nodes)
                ],
            )
        ctx.start()
        if injector is not None:
            injector.arm()
        sim.run()
        result = ctx.collect(query)
        if injector is not None:
            result.extra["faults"] = injector.report()
        if sim.sanitize is not None:
            result.extra["sanitizer_checks"] = sim.sanitize.check_counts()
        return result


class _RunContext:
    """All mutable state of one partitioned-engine run."""

    def __init__(
        self,
        engine: PartitionedEngine,
        sim: Simulator,
        cluster: Cluster,
        plan: PhysicalPlan,
        nodes: int,
        threads: int,
    ):
        self.engine = engine
        self.sim = sim
        self.cluster = cluster
        self.plan = plan
        self.nodes = nodes
        self.threads = threads
        self.partitioners_per_node = threads // 2
        self.consumers_per_node = threads - self.partitioners_per_node
        self.consumer_count = nodes * self.consumers_per_node
        self.partitioner_count = nodes * self.partitioners_per_node
        self.streams = tuple(s.name for s in plan.query.streams)
        self.records_in = 0
        self.results_aggregates: dict = {}
        self.results_joins: list = []
        self.emitted = 0
        self._consumers: list[_Consumer] = []
        self._channels: list[list[Any]] = []  # [partitioner_gid][consumer_gid]
        self._partitioner_flows: dict[int, list[Flow]] = {}
        self.sender_counters = HwCounters()
        self.receiver_counters = HwCounters()

    # -- topology ---------------------------------------------------------------
    def partitioner_node(self, gid: int) -> int:
        return gid // self.partitioners_per_node

    def partitioner_core(self, gid: int) -> Core:
        node = self.cluster.node(self.partitioner_node(gid))
        return node.core(gid % self.partitioners_per_node)

    def consumer_node(self, gid: int) -> int:
        return gid // self.consumers_per_node

    def consumer_core(self, gid: int) -> Core:
        node = self.cluster.node(self.consumer_node(gid))
        return node.core(self.partitioners_per_node + gid % self.consumers_per_node)

    def inbound_endpoints(self, node_index: int) -> list:
        """Consumer endpoints terminating on ``node_index`` (fault targets)."""
        return [
            endpoint
            for consumer in self._consumers
            if self.consumer_node(consumer.gid) == node_index
            for endpoint in consumer.channels
        ]

    def wire(self, flows: dict[tuple[int, int], Flow]) -> None:
        """Assign flows to partitioners and build the exchange channels."""
        for (node, thread), flow in sorted(flows.items()):
            gid = node * self.partitioners_per_node + thread % self.partitioners_per_node
            self._partitioner_flows.setdefault(gid, []).append(flow)
            self.records_in += sum(len(batch) for _s, batch in flow)
        self._consumers = [
            _Consumer(self, gid, self.consumer_core(gid))
            for gid in range(self.consumer_count)
        ]
        for p_gid in range(self.partitioner_count):
            row = []
            src = self.cluster.node(self.partitioner_node(p_gid))
            for c_gid in range(self.consumer_count):
                dst = self.cluster.node(self.consumer_node(c_gid))
                channel = self.engine._make_channel(
                    self, src, dst, name=f"x:{p_gid}->{c_gid}"
                )
                row.append(channel)
                self._consumers[c_gid].attach(channel.consumer)
            self._channels.append(row)

    def start(self) -> None:
        for p_gid in range(self.partitioner_count):
            self.sim.process(
                _Partitioner(self, p_gid).body(), name=f"part{p_gid}"
            )
        for consumer in self._consumers:
            self.sim.process(consumer.body(), name=f"cons{consumer.gid}")

    def collect(self, query: Query) -> RunResult:
        for consumer in self._consumers:
            if not consumer.done:
                raise ConfigError(
                    f"consumer {consumer.gid} never finished — exchange deadlock?"
                )
        result = RunResult(
            system=self.engine.name,
            query_name=query.name,
            nodes=self.nodes,
            threads_per_node=self.threads,
            input_records=self.records_in,
            sim_seconds=self.sim.now,
            aggregates=self.results_aggregates,
            join_pairs=self.results_joins,
            emitted=self.emitted,
        )
        for p_gid in range(self.partitioner_count):
            self.sender_counters.merge(self.partitioner_core(p_gid).counters)
        for c_gid in range(self.consumer_count):
            self.receiver_counters.merge(self.consumer_core(c_gid).counters)
        for node_index in range(self.nodes):
            node_counters = self.cluster.node(node_index).counters()
            result.per_node_counters.append(node_counters)
            result.counters.merge(node_counters)
        lags = [lag for c in self._consumers for lag in c.trigger_lag_s]
        result.extra["trigger_lag_mean_s"] = sum(lags) / len(lags) if lags else 0.0
        result.extra["trigger_lag_max_s"] = max(lags) if lags else 0.0
        result.extra["sender_counters"] = self.sender_counters
        result.extra["receiver_counters"] = self.receiver_counters
        return result


class _Partitioner:
    """One sender thread: filter, hash-partition, fan out."""

    def __init__(self, ctx: _RunContext, gid: int):
        self.ctx = ctx
        self.gid = gid
        self.core = ctx.partitioner_core(gid)
        self.node = self.core.node
        self.flows = ctx._partitioner_flows.get(gid, [])
        self.state = _PartitionerState(
            ctx.consumer_count,
            ctx.streams,
            disorder_ms={s.name: s.disorder_ms for s in ctx.plan.query.streams},
        )
        self.fanout_working_set = ctx.consumer_count * ctx.engine.buffer_bytes
        self.records_per_send = {
            s.name: max(
                1,
                (ctx.engine.buffer_bytes - 512 - MESSAGE_HEADER_BYTES)
                // s.schema.record_bytes,
            )
            for s in ctx.plan.query.streams
        }
        self.schema_by_stream = {s.name: s.schema for s in ctx.plan.query.streams}

    def body(self) -> Generator[Any, Any, None]:
        ctx = self.ctx
        core = self.core
        cost_model = self.node.cost_model
        costs = ctx.engine.costs
        # Round-robin over this partitioner's flows keeps watermarks moving.
        cursors = [0] * len(self.flows)
        per_flow_streams = [
            {stream: float("-inf") for stream in ctx.streams} for _ in self.flows
        ]
        active = set(range(len(self.flows)))
        batches_done = 0
        while active:
            for flow_index in sorted(active):
                flow = self.flows[flow_index]
                if cursors[flow_index] >= len(flow):
                    active.discard(flow_index)
                    for stream in ctx.streams:
                        per_flow_streams[flow_index][stream] = float("inf")
                    self._refresh_watermark(per_flow_streams)
                    continue
                stream_name, batch = flow[cursors[flow_index]]
                cursors[flow_index] += 1
                yield from self._process_batch(
                    stream_name, batch, per_flow_streams[flow_index]
                )
                self._refresh_watermark(per_flow_streams)
                batches_done += 1
                if batches_done % ctx.engine.linger_batches == 0:
                    # Buffer timeout: push out partial buffers so consumers
                    # and their watermarks keep moving.
                    for c_gid in range(ctx.consumer_count):
                        if self.state.pending_rows[c_gid]:
                            yield from self._flush(c_gid)
        # Flush leftovers, then signal completion everywhere.
        for c_gid in range(ctx.consumer_count):
            yield from self._flush(c_gid, force=True)
        for c_gid, channel in enumerate(ctx._channels[self.gid]):
            yield from channel.producer.send(
                core, DoneToken(self.gid), MESSAGE_HEADER_BYTES
            )
            yield from channel.producer.close(core)

    def _refresh_watermark(self, per_flow_streams: list[dict[str, float]]) -> None:
        for stream in self.ctx.streams:
            self.state.stream_maxes[stream] = min(
                flow_maxes[stream] for flow_maxes in per_flow_streams
            )

    def _process_batch(
        self, stream_name: str, batch: RecordBatch, flow_maxes: dict[str, float]
    ) -> Generator[Any, Any, None]:
        ctx = self.ctx
        core = self.core
        cost_model = self.node.cost_model
        costs = ctx.engine.costs
        # Read the batch and run the fused stateless prefix.
        yield from core.execute(
            cost_model.cache.streaming_cost(batch.wire_bytes), 1.0
        )
        chain = ctx.plan.pipeline_for(stream_name).chain
        if chain.op_count:
            yield from core.execute(
                cost_model.compute_cost(costs.pipeline), float(len(batch))
            )
        filtered = chain.apply(batch)
        flow_maxes[stream_name] = max(flow_maxes[stream_name], batch.max_timestamp)
        if len(filtered):
            # The expensive bit: per-record hash + route + fan-out copy.
            partition_cost = cost_model.op(
                costs.partition,
                float(self.fanout_working_set),
                costs.partition_lines_for(batch.schema.record_bytes),
            )
            yield from core.execute(partition_cost, float(len(filtered)))
            serde_n = ctx.engine._serde_records(len(filtered))
            if serde_n:
                yield from core.execute(cost_model.compute_cost(costs.serde), serde_n)
            core.counters.count_records(len(filtered))
            consumer_ids = (
                stable_hash_array(np.asarray(filtered.keys, dtype=np.int64))
                % np.uint64(ctx.consumer_count)
            ).astype(np.int64)
            order = np.argsort(consumer_ids, kind="stable")
            sorted_ids = consumer_ids[order]
            boundaries = np.flatnonzero(np.diff(sorted_ids)) + 1
            starts = np.concatenate(([0], boundaries))
            ends = np.concatenate((boundaries, [len(sorted_ids)]))
            for start, end in zip(starts, ends):
                c_gid = int(sorted_ids[start])
                rows = filtered.data[order[start:end]]
                self.state.pending[c_gid][stream_name].append(rows)
                self.state.pending_rows[c_gid] += len(rows)
                if self.state.pending_rows[c_gid] >= self.records_per_send[stream_name]:
                    yield from self._flush(c_gid)

    def _flush(self, c_gid: int, force: bool = False) -> Generator[Any, Any, None]:
        ctx = self.ctx
        core = self.core
        costs = ctx.engine.costs
        pending = self.state.pending[c_gid]
        if self.state.pending_rows[c_gid] == 0 and not force:
            return
        channel = ctx._channels[self.gid][c_gid]
        watermark = self.state.watermark
        outgoing: list[tuple[str, RecordBatch]] = []
        for stream_name in ctx.streams:
            chunks = pending[stream_name]
            if not chunks:
                continue
            limit = self.records_per_send[stream_name]
            data = np.concatenate(chunks) if len(chunks) > 1 else chunks[0]
            pending[stream_name] = []
            schema = self.schema_by_stream[stream_name]
            for start in range(0, len(data), limit):
                rows = data[start:start + limit]
                outgoing.append((stream_name, RecordBatch(schema, rows)))
        # Only the flush's last buffer carries the fresh watermark: the
        # consumer applies a message's watermark on receipt, so stamping
        # it on an earlier buffer would advance the frontier past rows
        # of another stream still queued behind it on this channel.
        for position, (stream_name, batch) in enumerate(outgoing):
            last = position == len(outgoing) - 1
            message = _Message(
                stream_name, batch, watermark if last else float("-inf")
            )
            nbytes = batch.wire_bytes + MESSAGE_HEADER_BYTES
            yield from core.execute(
                self.node.cost_model.compute_cost(costs.per_buffer), 1.0
            )
            yield from channel.producer.send(core, message, nbytes)
        self.state.pending_rows[c_gid] = 0


class _Consumer:
    """One receiver thread: poll queues, update local state, trigger."""

    def __init__(self, ctx: _RunContext, gid: int, core: Core):
        self.ctx = ctx
        self.gid = gid
        self.core = core
        self.node = core.node
        self.wake = ctx.sim.store(name=f"cons{gid}.wake")
        self.channels: list[Any] = []
        self.channel_wm: list[float] = []
        self.channel_done: list[bool] = []
        self.state: dict = {}
        self.state_bytes = 0.0
        self._last_contribution: dict = {}
        self.trigger_lag_s: list[float] = []
        window = ctx.plan.window
        self.trigger = (
            None if isinstance(window, SessionWindows) else WindowTriggerState(window)
        )
        self.done = False

    def attach(self, consumer_endpoint: Any) -> None:
        consumer_endpoint.notify_store = self.wake
        self.channels.append(consumer_endpoint)
        self.channel_wm.append(float("-inf"))
        self.channel_done.append(False)

    def body(self) -> Generator[Any, Any, None]:
        core = self.core
        index_of = {id(channel): i for i, channel in enumerate(self.channels)}
        while not all(self.channel_done):
            ok, channel = self.wake.try_get()
            if not ok:
                # All queues empty: spin (pause) until any channel signals.
                channel = yield from core.spin_wait(self.wake.get())
            index = index_of[id(channel)]
            progressed = False
            while True:
                ok, payload, _nbytes = channel.try_recv(core)
                if not ok:
                    break
                progressed = True
                yield from self._handle(index, channel, payload)
            if progressed:
                yield from self._check_triggers()
        yield from self._check_triggers()
        self._assert_drained()
        self.done = True

    def _handle(self, index: int, channel: Any, payload: Any) -> Generator[Any, Any, None]:
        core = self.core
        ctx = self.ctx
        costs = ctx.engine.costs
        if payload is CHANNEL_EOS:
            self.channel_done[index] = True
            self.channel_wm[index] = float("inf")
            yield from channel.release(core)
            return
        if isinstance(payload, DoneToken):
            self.channel_wm[index] = float("inf")
            yield from channel.release(core)
            return
        message: _Message = payload
        batch = message.batch
        pipeline = ctx.plan.pipeline_for(message.stream)
        cost_model = self.node.cost_model
        yield from core.execute(cost_model.compute_cost(costs.dequeue), float(len(batch)))
        serde_n = ctx.engine._serde_records(len(batch))
        if serde_n:
            yield from core.execute(cost_model.compute_cost(costs.serde), serde_n)
        result = pipeline.process_batch(batch)
        if result.survivors:
            profile = costs.append if ctx.plan.is_join else costs.update
            lines = costs.append_lines if ctx.plan.is_join else costs.update_lines
            working_set = max(4096.0, self.state_bytes)
            update_cost = cost_model.op(profile, working_set, lines)
            yield from core.execute(update_cost, float(result.survivors))
            core.counters.count_records(result.survivors)
            crdt = ctx.plan.crdt
            now = ctx.sim.now
            for key, partial in result.partials.items():
                if key in self.state:
                    self.state[key] = crdt.merge(self.state[key], partial)
                else:
                    self.state[key] = partial
                if isinstance(key, tuple):
                    self._last_contribution[key[0]] = now
            self.state_bytes += result.state_bytes
            if self.trigger is not None:
                self.trigger.note_slices(
                    key[0] for key in result.partials if isinstance(key, tuple)
                )
        if message.watermark > self.channel_wm[index]:
            self.channel_wm[index] = message.watermark
        yield from channel.release(core)

    # -- triggering ----------------------------------------------------------------
    def _frontier(self) -> float:
        return min(self.channel_wm) if self.channel_wm else float("inf")

    def _check_triggers(self) -> Generator[Any, Any, None]:
        ctx = self.ctx
        frontier = self._frontier()
        if isinstance(ctx.plan.window, SessionWindows):
            yield from self._trigger_sessions(frontier)
            return
        assert self.trigger is not None
        for window_id in self.trigger.due_windows(frontier):
            if ctx.plan.is_join:
                yield from self._fire_join(window_id)
            else:
                yield from self._fire_agg(window_id)

    def _fire_agg(self, window_id: int) -> Generator[Any, Any, None]:
        ctx = self.ctx
        crdt = ctx.plan.crdt
        window = ctx.plan.window
        if isinstance(window, SlidingWindow):
            merged: dict = {}
            for slice_id in window.slices_of_window(window_id):
                for (sid, key), payload in list(self.state.items()):
                    if sid == slice_id:
                        merged[key] = (
                            crdt.merge(merged[key], payload) if key in merged else payload
                        )
            for (sid, key) in [k for k in self.state if k[0] == window_id]:
                del self.state[(sid, key)]
            extracted = merged
        else:
            extracted = {
                key: self.state.pop((win, key))
                for win, key in [k for k in self.state if k[0] == window_id]
            }
        if not extracted:
            return
        last = self._last_contribution.pop(window_id, ctx.sim.now)
        self.trigger_lag_s.append(ctx.sim.now - last)
        emit_cost = self.node.cost_model.compute_cost(ctx.engine.costs.emit)
        yield from self.core.execute(emit_cost, float(len(extracted)))
        for key, payload in extracted.items():
            ctx.results_aggregates[(window_id, key)] = crdt.finish(payload)
        ctx.emitted += len(extracted)
        self.state_bytes = max(
            0.0, self.state_bytes - len(extracted) * (16 + crdt.payload_bytes)
        )

    def _fire_join(self, window_id: int) -> Generator[Any, Any, None]:
        ctx = self.ctx
        extracted = {
            key: self.state.pop((win, key))
            for win, key in [k for k in self.state if k[0] == window_id]
        }
        if extracted:
            last = self._last_contribution.pop(window_id, ctx.sim.now)
            self.trigger_lag_s.append(ctx.sim.now - last)
        produced = 0
        for key, payload in extracted.items():
            for left_row, right_row in probe_window(payload):
                ctx.results_joins.append((window_id, key, left_row, right_row))
                produced += 1
        if produced:
            probe_cost = self.node.cost_model.compute_cost(ctx.engine.costs.probe_pair)
            yield from self.core.execute(probe_cost, float(produced))
        ctx.emitted += produced

    def _trigger_sessions(self, frontier: float) -> Generator[Any, Any, None]:
        ctx = self.ctx
        window = ctx.plan.window
        assert isinstance(window, SessionWindows)
        if frontier == float("-inf"):
            return
        produced = 0
        for key in list(self.state):
            emitted, remaining = probe_sessions(window, self.state[key], frontier)
            if not emitted:
                continue
            produced += len(emitted)
            for left_row, right_row in emitted:
                ctx.results_joins.append((key, left_row, right_row))
            if remaining:
                self.state[key] = remaining
            else:
                del self.state[key]
        if produced:
            probe_cost = self.node.cost_model.compute_cost(ctx.engine.costs.probe_pair)
            yield from self.core.execute(probe_cost, float(produced))
        ctx.emitted += produced

    def _assert_drained(self) -> None:
        if self.trigger is not None and self.trigger.pending:
            raise ConfigError(
                f"consumer {self.gid} finished with pending windows "
                f"{sorted(self.trigger.pending)[:5]}"
            )
