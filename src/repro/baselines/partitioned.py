"""The classical partitioned scale-out SPE shared by UpPar and Flink.

This is the architecture the paper argues *against* (Secs. 3.1, 8.2):
each node splits its threads into **partitioner** threads (read local
flows, filter/project, hash-partition every record to the consumer that
owns its key, copy it into a fan-out buffer, ship full buffers) and
**consumer** threads (poll inbound queues from *every* partitioner in
the cluster, apply the windowed operator on consumer-local state, and
trigger windows with classical per-channel watermarks).

RDMA UpPar instantiates this over Slash's RDMA channels ('lightweight
integration'); the Flink-like engine instantiates it over IPoIB socket
channels with managed-runtime and serialization costs ('plug-and-play').

The pathologies the paper measures all *emerge* here rather than being
scripted: partitioning burns most of the sender's cycles (front-end
bound), consumers spin on empty queues (core bound), skewed keys
overload one consumer and stall every partitioner on its credits, and
the fan-out buffers blow the sender's cache.

Fault tolerance (docs/fault_tolerance.md §8): workers are grouped into
a :class:`_Generation`.  Under a crash-capable fault plan the run
context hands a ``PartitionedChaosController`` (``faults/snapshots.py``)
the levers it needs — aligned snapshot rounds (partitioners flush,
record absolute input cursors, and send in-band markers; consumers
spill post-marker buffers until every input channel markered), and the
Flink-style **global restart**: on a quorum-backed fence the current
generation halts, a new generation over the survivors restores the last
complete snapshot (state re-bucketed to the new consumer count) and
replays every flow from its captured cursor.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Generator, Optional

import numpy as np

from repro.baselines.costs import ExchangeCosts
from repro.channel.channel import CHANNEL_EOS, LocalChannel, RdmaChannel
from repro.common.config import (
    ClusterConfig,
    DEFAULT_BUFFER_BYTES,
    DEFAULT_CREDITS,
    paper_cluster,
)
from repro.common.errors import ConfigError
from repro.core.engine import RunResult
from repro.core.executor import DoneToken, SnapshotMarker
from repro.core.system import STRATEGY_ASYNC_SNAPSHOT, SystemHooks, install_sanitizer
from repro.core.join import probe_sessions, probe_window
from repro.core.pipeline import PhysicalPlan, compile_query
from repro.core.progress import WindowTriggerState
from repro.core.query import Query
from repro.core.records import RecordBatch
from repro.core.windows import SessionWindows, SlidingWindow
from repro.simnet.cluster import Cluster, Core, Node
from repro.simnet.counters import HwCounters
from repro.simnet.kernel import Simulator, Timeout
from repro.state.partition import stable_hash_array
from repro.workloads.base import Flow

MESSAGE_HEADER_BYTES = 48


@dataclass
class _Message:
    """One exchange buffer: a sub-batch plus the sender's watermark."""

    stream: str
    batch: RecordBatch
    watermark: float


@dataclass
class _FlowEntry:
    """One input flow as a generation's partitioner sees it.

    ``start`` is the absolute batch cursor to begin at: 0 in the first
    generation, the snapshot's captured cursor after a restart (the
    replay prefix ``0..start`` is covered by the restored state).
    """

    flow_id: int
    flow: Flow
    start: int = 0


class _PartitionerState:
    """Fan-out buffers and watermark bookkeeping of one partitioner."""

    def __init__(
        self,
        consumer_count: int,
        streams: tuple[str, ...],
        disorder_ms: Optional[dict[str, int]] = None,
    ):
        self.pending: list[dict[str, list[np.ndarray]]] = [
            {stream: [] for stream in streams} for _ in range(consumer_count)
        ]
        self.pending_rows = [0] * consumer_count
        self.stream_maxes = {stream: float("-inf") for stream in streams}
        self.disorder = {stream: 0 for stream in streams}
        if disorder_ms:
            self.disorder.update(disorder_ms)

    @property
    def watermark(self) -> float:
        return min(
            value - self.disorder[stream] if value != float("-inf") else value
            for stream, value in self.stream_maxes.items()
        )


class PartitionedEngine(SystemHooks):
    """Base class; subclasses choose the data plane and the cost surface."""

    name = "partitioned"

    #: Flush partially-filled fan-out buffers after this many input
    #: batches (the buffer-timeout/linger every exchange-based SPE needs
    #: so downstream windows make progress).  At high fan-out this is
    #: what floods the exchange with small messages.
    linger_batches = 4

    def __init__(
        self,
        costs: ExchangeCosts,
        cluster_config: Optional[ClusterConfig] = None,
        credits: int = DEFAULT_CREDITS,
        buffer_bytes: int = DEFAULT_BUFFER_BYTES,
    ):
        self.costs = costs
        self.cluster_config = cluster_config or paper_cluster()
        self.credits = credits
        self.buffer_bytes = buffer_bytes

    # -- data plane hook -----------------------------------------------------
    def _make_channel(self, ctx: "_RunContext", src: Node, dst: Node, name: str):
        """Return a channel (producer/consumer endpoint pair) src -> dst."""
        raise NotImplementedError

    def _serde_records(self, n: int) -> float:
        """How many per-record serde charges one exchange hop costs."""
        return 0.0

    def _fault_pipes(self, ctx: "_RunContext", node_index: int) -> list:
        """Extra bandwidth pipes a NIC flap on ``node_index`` must degrade
        (beyond the node's RDMA NIC pipes) — e.g. the IPoIB fabric's."""
        return []

    # -- the run --------------------------------------------------------------
    def run(self, query: Query, flows: dict[tuple[int, int], Flow]) -> RunResult:
        query.validate()
        nodes = max(node for node, _ in flows) + 1
        threads = max(thread for _, thread in flows) + 1
        if threads < 2:
            raise ConfigError(
                f"{self.name} needs >= 2 threads per node (half partition, "
                f"half consume); got {threads}"
            )
        if nodes > self.cluster_config.nodes:
            raise ConfigError(f"flows span {nodes} nodes > cluster size")
        # A join rescale provisions spare nodes up front: their
        # partitioners have no flows and their consumers own no route
        # buckets until the coordinator moves some over.
        spares = self.elastic_plan.spare_nodes if self.elastic_plan else 0
        total_nodes = nodes + spares

        sim = Simulator()
        if self.sanitize:
            install_sanitizer(sim)
        cluster = Cluster(sim, self.cluster_config.with_nodes(total_nodes))

        injector = None
        recovery_plan = False
        if self.fault_plan is not None and len(self.fault_plan):
            from repro.faults.injector import DATA_PLANE_KINDS, FaultInjector

            recovery_plan = any(
                e.kind not in DATA_PLANE_KINDS for e in self.fault_plan
            )
            if recovery_plan and self.elastic_plan is not None:
                raise ConfigError(
                    f"{self.name} cannot combine a live rescale with "
                    "crash recovery: a global restart would rebuild the "
                    "generation under the route table (data-plane fault "
                    "plans are fine)"
                )
            kwargs = dict(self.fault_overrides)
            if recovery_plan:
                # Partitioned engines recover via aligned snapshots +
                # global restart; epoch-buddy has no meaning here.
                kwargs.setdefault(
                    "strategy", self.recovery_strategy or STRATEGY_ASYNC_SNAPSHOT
                )
            injector = FaultInjector(sim, self.fault_plan, **kwargs)
            # Attaching before wiring flips the shared channel/RDMA layer
            # onto its fault-tolerant code path (ACK-tracked transfers,
            # credit timeouts), exactly as it does for Slash.
            sim.faults = injector

        plan = compile_query(query)
        ctx = _RunContext(self, sim, cluster, plan, total_nodes, threads)
        ctx.wire(flows)
        elastic = None
        if self.elastic_plan is not None:
            from repro.elastic.exchange import ElasticExchangeCoordinator

            elastic = ElasticExchangeCoordinator(
                ctx, self.elastic_plan, base_nodes=nodes
            )
            ctx.elastic = elastic
            elastic.install()
        if injector is not None:
            if recovery_plan:
                from repro.faults.snapshots import PartitionedChaosController

                controller = PartitionedChaosController(ctx)
                ctx.chaos = controller
                injector.register_partitioned(cluster, controller)
            else:
                from repro.faults.injector import FaultTarget

                injector.register_data_plane(
                    cluster,
                    [
                        FaultTarget(
                            node=cluster.node(node_index),
                            in_channels=ctx.inbound_endpoints(node_index),
                            extra_pipes=self._fault_pipes(ctx, node_index),
                        )
                        for node_index in range(total_nodes)
                    ],
                )
        ctx.start()
        if injector is not None:
            injector.arm()
        if elastic is not None:
            elastic.arm()
        sim.run()
        if elastic is not None:
            elastic.check_complete()
        result = ctx.collect(query)
        if injector is not None:
            result.extra["faults"] = injector.report()
        if elastic is not None:
            result.extra["elastic"] = elastic.report()
        if sim.sanitize is not None:
            result.extra["sanitizer_checks"] = sim.sanitize.check_counts()
        return result


class _Generation:
    """One deployment attempt: a worker set over a (sub)set of the nodes.

    The first generation spans every node; each global restart builds a
    successor over the survivors.  Halting a generation is cooperative —
    the kernel has no process kill — so ``halt`` raises flags the worker
    bodies poll, marks every exchange producer dead (sends blackhole,
    parked credit waits wake), and pokes parked consumers awake.
    """

    def __init__(self, ctx: "_RunContext", number: int, node_indexes: list[int]):
        self.ctx = ctx
        self.number = number
        self.nodes = list(node_indexes)
        self.partitioners_per_node = ctx.partitioners_per_node
        self.consumers_per_node = ctx.consumers_per_node
        self.partitioner_count = len(self.nodes) * self.partitioners_per_node
        self.consumer_count = len(self.nodes) * self.consumers_per_node
        self.partitioners: list[_Partitioner] = []
        self.consumers: list[_Consumer] = []
        self.channels: list[list[Any]] = []  # [partitioner_gid][consumer_gid]
        self.halted = False

    # -- topology (gids are generation-local) --------------------------------
    def partitioner_node(self, gid: int) -> int:
        return self.nodes[gid // self.partitioners_per_node]

    def partitioner_core(self, gid: int) -> Core:
        node = self.ctx.cluster.node(self.partitioner_node(gid))
        return node.core(gid % self.partitioners_per_node)

    def consumer_node(self, gid: int) -> int:
        return self.nodes[gid // self.consumers_per_node]

    def consumer_core(self, gid: int) -> Core:
        node = self.ctx.cluster.node(self.consumer_node(gid))
        return node.core(
            self.partitioners_per_node + gid % self.consumers_per_node
        )

    # -- lifecycle ------------------------------------------------------------
    def build(self, assignments: dict[int, list[_FlowEntry]]) -> None:
        ctx = self.ctx
        tag = "" if self.number == 0 else f"{self.number}"
        self.consumers = [
            _Consumer(ctx, self, gid, self.consumer_core(gid))
            for gid in range(self.consumer_count)
        ]
        for p_gid in range(self.partitioner_count):
            row = []
            src = ctx.cluster.node(self.partitioner_node(p_gid))
            for c_gid in range(self.consumer_count):
                dst = ctx.cluster.node(self.consumer_node(c_gid))
                channel = ctx.engine._make_channel(
                    ctx, src, dst, name=f"x{tag}:{p_gid}->{c_gid}"
                )
                row.append(channel)
                self.consumers[c_gid].attach(channel.consumer)
            self.channels.append(row)
        self.partitioners = [
            _Partitioner(ctx, self, gid, assignments.get(gid, []))
            for gid in range(self.partitioner_count)
        ]

    def start(self) -> None:
        prefix = "" if self.number == 0 else f"g{self.number}."
        for partitioner in self.partitioners:
            self.ctx.sim.process(
                partitioner.body(), name=f"{prefix}part{partitioner.gid}"
            )
        for consumer in self.consumers:
            self.ctx.sim.process(
                consumer.body(), name=f"{prefix}cons{consumer.gid}"
            )

    def halt(self) -> None:
        """Cooperatively stop every worker (the generation is discarded)."""
        self.halted = True
        for partitioner in self.partitioners:
            partitioner.halted = True
        self._mark_channels_dead(self.channels)
        for consumer in self.consumers:
            consumer.halted = True
            consumer.wake.put(None)

    def halt_node(self, node_index: int) -> None:
        """Stop the workers of one crashed node in place (pre-fence)."""
        for partitioner in self.partitioners:
            if partitioner.node.index == node_index:
                partitioner.halted = True
                self._mark_channels_dead(
                    [self.channels[partitioner.gid]]
                )
        for consumer in self.consumers:
            if consumer.node.index == node_index:
                consumer.halted = True
                consumer.wake.put(None)

    @staticmethod
    def _mark_channels_dead(rows: list[list[Any]]) -> None:
        for row in rows:
            for channel in row:
                mark_dead = getattr(channel.producer, "mark_dead", None)
                if mark_dead is not None:
                    mark_dead()


class _RunContext:
    """All mutable state of one partitioned-engine run."""

    def __init__(
        self,
        engine: PartitionedEngine,
        sim: Simulator,
        cluster: Cluster,
        plan: PhysicalPlan,
        nodes: int,
        threads: int,
    ):
        self.engine = engine
        self.sim = sim
        self.cluster = cluster
        self.plan = plan
        self.nodes = nodes
        self.threads = threads
        self.partitioners_per_node = threads // 2
        self.consumers_per_node = threads - self.partitioners_per_node
        self.streams = tuple(s.name for s in plan.query.streams)
        self.records_in = 0
        #: Every input flow in global order; the source of truth a
        #: restarted generation re-assigns work from.
        self._all_flows: list[tuple[int, Flow]] = []
        self.gen: _Generation = None  # set by wire()
        #: The PartitionedChaosController when the plan can crash nodes.
        self.chaos: Any = None
        #: The ElasticExchangeCoordinator when an ElasticPlan is
        #: attached (duck-typed here so this module never imports the
        #: elastic layer); ``None`` keeps the static hash routing.
        self.elastic: Any = None
        self.sender_counters = HwCounters()
        self.receiver_counters = HwCounters()

    # -- current-generation views --------------------------------------------
    @property
    def consumer_count(self) -> int:
        return self.gen.consumer_count

    @property
    def partitioner_count(self) -> int:
        return self.gen.partitioner_count

    def inbound_endpoints(self, node_index: int) -> list:
        """Consumer endpoints terminating on ``node_index`` (fault targets)."""
        return [
            endpoint
            for consumer in self.gen.consumers
            if consumer.node.index == node_index
            for endpoint in consumer.channels
        ]

    def wire(self, flows: dict[tuple[int, int], Flow]) -> None:
        """Assign flows to partitioners and build the exchange channels."""
        assignments: dict[int, list[_FlowEntry]] = {}
        for flow_id, ((node, thread), flow) in enumerate(sorted(flows.items())):
            gid = node * self.partitioners_per_node + thread % self.partitioners_per_node
            entry = _FlowEntry(flow_id, flow, 0)
            assignments.setdefault(gid, []).append(entry)
            self._all_flows.append((flow_id, flow))
            self.records_in += sum(len(batch) for _s, batch in flow)
        self.gen = _Generation(self, 0, list(range(self.nodes)))
        self.gen.build(assignments)

    def start(self) -> None:
        self.gen.start()

    # -- global restart (driven by the chaos controller) ----------------------
    def halt_node(self, node_index: int) -> None:
        self.gen.halt_node(node_index)

    def halt_generation(self) -> None:
        self.gen.halt()

    def restart_generation(self, survivors: list[int], restore: dict) -> dict:
        """Build, restore, and start the next generation over ``survivors``.

        ``restore`` is the chaos controller's bundle: per-flow absolute
        cursors and the merged consumer state of the last complete
        aligned snapshot round (empty cursors/state mean full replay
        from scratch).  Returns the replay volume for the report.
        """
        gen = _Generation(self, self.gen.number + 1, survivors)
        cursors = restore.get("cursors", {})
        assignments: dict[int, list[_FlowEntry]] = {}
        replayed_batches = 0
        replayed_records = 0
        for flow_id, flow in self._all_flows:
            gid = flow_id % gen.partitioner_count
            start = min(int(cursors.get(flow_id, 0)), len(flow))
            assignments.setdefault(gid, []).append(
                _FlowEntry(flow_id, flow, start)
            )
            replayed_batches += len(flow) - start
            replayed_records += sum(
                len(batch) for _s, batch in flow[start:]
            )
        gen.build(assignments)
        crdt = self.plan.crdt
        now = self.sim.now
        for key, payload in restore.get("state", {}).items():
            group_key = key[1] if isinstance(key, tuple) else key
            bucket = int(
                (
                    stable_hash_array(
                        np.asarray([int(group_key)], dtype=np.int64)
                    )
                    % np.uint64(gen.consumer_count)
                )[0]
            )
            consumer = gen.consumers[bucket]
            consumer.state[key] = payload
            consumer.state_bytes += 16 + crdt.payload_bytes
            if isinstance(key, tuple):
                consumer._last_contribution[key[0]] = now
                if consumer.trigger is not None:
                    consumer.trigger.note_slices([key[0]])
        self.gen = gen
        gen.start()
        return {
            "replayed_batches": replayed_batches,
            "replayed_records": replayed_records,
        }

    def collect(self, query: Query) -> RunResult:
        for consumer in self.gen.consumers:
            if not consumer.done:
                raise ConfigError(
                    f"consumer {consumer.gid} never finished — exchange deadlock?"
                )
        if self.chaos is not None:
            aggregates, joins, emitted = self.chaos.committed_base()
            aggregates = dict(aggregates)
            joins = list(joins)
        else:
            aggregates, joins, emitted = {}, [], 0
        for consumer in self.gen.consumers:
            aggregates.update(consumer.results_aggregates)
            joins.extend(consumer.results_joins)
            emitted += consumer.emitted
        result = RunResult(
            system=self.engine.name,
            query_name=query.name,
            nodes=self.nodes,
            threads_per_node=self.threads,
            input_records=self.records_in,
            sim_seconds=self.sim.now,
            aggregates=aggregates,
            join_pairs=joins,
            emitted=emitted,
        )
        for node_index in range(self.nodes):
            node = self.cluster.node(node_index)
            for slot in range(self.partitioners_per_node):
                self.sender_counters.merge(node.core(slot).counters)
            for slot in range(self.partitioners_per_node, self.threads):
                self.receiver_counters.merge(node.core(slot).counters)
            node_counters = node.counters()
            result.per_node_counters.append(node_counters)
            result.counters.merge(node_counters)
        lags = [lag for c in self.gen.consumers for lag in c.trigger_lag_s]
        result.extra["trigger_lag_mean_s"] = sum(lags) / len(lags) if lags else 0.0
        result.extra["trigger_lag_max_s"] = max(lags) if lags else 0.0
        result.extra["trigger_events"] = sorted(
            event for c in self.gen.consumers for event in c.trigger_events
        )
        result.extra["sender_counters"] = self.sender_counters
        result.extra["receiver_counters"] = self.receiver_counters
        if self.chaos is not None:
            result.extra["generations"] = self.chaos.generations_started
        return result


class _Partitioner:
    """One sender thread: filter, hash-partition, fan out."""

    def __init__(
        self, ctx: _RunContext, gen: _Generation, gid: int,
        entries: list[_FlowEntry],
    ):
        self.ctx = ctx
        self.gen = gen
        self.gid = gid
        self.core = gen.partitioner_core(gid)
        self.node = self.core.node
        self.entries = entries
        self.cursors = [entry.start for entry in entries]
        self.state = _PartitionerState(
            gen.consumer_count,
            ctx.streams,
            disorder_ms={s.name: s.disorder_ms for s in ctx.plan.query.streams},
        )
        self.fanout_working_set = gen.consumer_count * ctx.engine.buffer_bytes
        self.records_per_send = {
            s.name: max(
                1,
                (ctx.engine.buffer_bytes - 512 - MESSAGE_HEADER_BYTES)
                // s.schema.record_bytes,
            )
            for s in ctx.plan.query.streams
        }
        self.schema_by_stream = {s.name: s.schema for s in ctx.plan.query.streams}
        self.halted = False
        self.finished_body = False
        #: Round id the chaos controller wants a barrier for (aligned
        #: snapshot); consumed at the top of the batch loop.
        self.snapshot_request: Optional[int] = None
        #: Round id the elastic coordinator wants flushed + markered
        #: after a route flip; consumed at the top of the batch loop.
        self.reroute_request: Optional[int] = None

    def abs_cursors(self) -> dict[int, int]:
        """Absolute per-flow batch cursors (flow_id -> consumed batches)."""
        return {
            entry.flow_id: self.cursors[index]
            for index, entry in enumerate(self.entries)
        }

    def body(self) -> Generator[Any, Any, None]:
        ctx = self.ctx
        core = self.core
        # Round-robin over this partitioner's flows keeps watermarks moving.
        per_flow_streams = [
            {stream: float("-inf") for stream in ctx.streams} for _ in self.entries
        ]
        active = set(range(len(self.entries)))
        batches_done = 0
        while active:
            if self.halted:
                return
            if self.snapshot_request is not None:
                yield from self._snapshot_barrier()
            if self.reroute_request is not None:
                yield from self._reroute_flush()
            for flow_index in sorted(active):
                if self.halted:
                    return
                flow = self.entries[flow_index].flow
                if self.cursors[flow_index] >= len(flow):
                    active.discard(flow_index)
                    for stream in ctx.streams:
                        per_flow_streams[flow_index][stream] = float("inf")
                    self._refresh_watermark(per_flow_streams)
                    continue
                stream_name, batch = flow[self.cursors[flow_index]]
                self.cursors[flow_index] += 1
                yield from self._process_batch(
                    stream_name, batch, per_flow_streams[flow_index]
                )
                self._refresh_watermark(per_flow_streams)
                batches_done += 1
                if batches_done % ctx.engine.linger_batches == 0:
                    # Buffer timeout: push out partial buffers so consumers
                    # and their watermarks keep moving.
                    for c_gid in range(self.gen.consumer_count):
                        if self.state.pending_rows[c_gid]:
                            yield from self._flush(c_gid)
        if self.halted:
            return
        # Flush leftovers, then signal completion everywhere.
        for c_gid in range(self.gen.consumer_count):
            yield from self._flush(c_gid, force=True)
        for c_gid, channel in enumerate(self.gen.channels[self.gid]):
            yield from channel.producer.send(
                core, DoneToken(self.gid), MESSAGE_HEADER_BYTES
            )
            yield from channel.producer.close(core)
        self.finished_body = True
        if ctx.chaos is not None and not self.halted:
            # EOS is this partitioner's barrier for any outstanding round.
            ctx.chaos.note_partitioner_finished(self)

    def _snapshot_barrier(self) -> Generator[Any, Any, None]:
        """Aligned-snapshot barrier: flush, record cursors, marker out.

        The flush pushes every pre-barrier row onto the wire before the
        marker, so per-channel FIFO puts the marker exactly at the cut;
        the cursors are captured before any post-barrier batch is read,
        making (cursors, markers) one consistent frontier.
        """
        round_id = self.snapshot_request
        self.snapshot_request = None
        chaos = self.ctx.chaos
        if chaos is None or round_id is None:
            return
        for c_gid in range(self.gen.consumer_count):
            if self.state.pending_rows[c_gid]:
                yield from self._flush(c_gid)
        chaos.note_partitioner_capture(round_id, self, self.abs_cursors())
        marker = SnapshotMarker(
            round_id=round_id, from_executor=self.gid, boundary=0
        )
        for channel in self.gen.channels[self.gid]:
            yield from channel.producer.send(
                self.core, marker, MESSAGE_HEADER_BYTES
            )

    def _reroute_flush(self) -> Generator[Any, Any, None]:
        """Rescale cut: flush the fan-out buffers, marker every channel.

        Mirrors the snapshot barrier — the flush pushes every row routed
        before the coordinator's table flip onto the wire, then the
        marker rides behind them, so per-channel FIFO guarantees the old
        owner has merged all pre-flip records once its marker arrives.
        """
        round_id = self.reroute_request
        self.reroute_request = None
        elastic = self.ctx.elastic
        if elastic is None or round_id is None:
            return
        for c_gid in range(self.gen.consumer_count):
            if self.state.pending_rows[c_gid]:
                yield from self._flush(c_gid)
        marker = elastic.marker_for(round_id, self.gid)
        for channel in self.gen.channels[self.gid]:
            yield from channel.producer.send(
                self.core, marker, MESSAGE_HEADER_BYTES
            )

    def _refresh_watermark(self, per_flow_streams: list[dict[str, float]]) -> None:
        if not per_flow_streams:
            return
        for stream in self.ctx.streams:
            self.state.stream_maxes[stream] = min(
                flow_maxes[stream] for flow_maxes in per_flow_streams
            )

    def _process_batch(
        self, stream_name: str, batch: RecordBatch, flow_maxes: dict[str, float]
    ) -> Generator[Any, Any, None]:
        ctx = self.ctx
        core = self.core
        cost_model = self.node.cost_model
        costs = ctx.engine.costs
        # Read the batch and run the fused stateless prefix.
        yield from core.execute(
            cost_model.cache.streaming_cost(batch.wire_bytes), 1.0
        )
        chain = ctx.plan.pipeline_for(stream_name).chain
        if chain.op_count:
            yield from core.execute(
                cost_model.compute_cost(costs.pipeline), float(len(batch))
            )
        filtered = chain.apply(batch)
        flow_maxes[stream_name] = max(flow_maxes[stream_name], batch.max_timestamp)
        if len(filtered):
            # The expensive bit: per-record hash + route + fan-out copy.
            partition_cost = cost_model.op(
                costs.partition,
                float(self.fanout_working_set),
                costs.partition_lines_for(batch.schema.record_bytes),
            )
            yield from core.execute(partition_cost, float(len(filtered)))
            serde_n = ctx.engine._serde_records(len(filtered))
            if serde_n:
                yield from core.execute(cost_model.compute_cost(costs.serde), serde_n)
            core.counters.count_records(len(filtered))
            hashes = stable_hash_array(np.asarray(filtered.keys, dtype=np.int64))
            elastic = ctx.elastic
            if elastic is not None:
                # Elastic runs route through the coordinator's bucket
                # table (initialised hash-identical to the static path).
                buckets = (hashes % np.uint64(elastic.buckets)).astype(np.int64)
                consumer_ids = elastic.route[buckets]
            else:
                consumer_ids = (
                    hashes % np.uint64(self.gen.consumer_count)
                ).astype(np.int64)
            order = np.argsort(consumer_ids, kind="stable")
            sorted_ids = consumer_ids[order]
            boundaries = np.flatnonzero(np.diff(sorted_ids)) + 1
            starts = np.concatenate(([0], boundaries))
            ends = np.concatenate((boundaries, [len(sorted_ids)]))
            for start, end in zip(starts, ends):
                c_gid = int(sorted_ids[start])
                rows = filtered.data[order[start:end]]
                self.state.pending[c_gid][stream_name].append(rows)
                self.state.pending_rows[c_gid] += len(rows)
                if self.state.pending_rows[c_gid] >= self.records_per_send[stream_name]:
                    yield from self._flush(c_gid)

    def _flush(self, c_gid: int, force: bool = False) -> Generator[Any, Any, None]:
        ctx = self.ctx
        core = self.core
        costs = ctx.engine.costs
        pending = self.state.pending[c_gid]
        if self.state.pending_rows[c_gid] == 0 and not force:
            return
        channel = self.gen.channels[self.gid][c_gid]
        watermark = self.state.watermark
        outgoing: list[tuple[str, RecordBatch]] = []
        for stream_name in ctx.streams:
            chunks = pending[stream_name]
            if not chunks:
                continue
            limit = self.records_per_send[stream_name]
            data = np.concatenate(chunks) if len(chunks) > 1 else chunks[0]
            pending[stream_name] = []
            schema = self.schema_by_stream[stream_name]
            for start in range(0, len(data), limit):
                rows = data[start:start + limit]
                outgoing.append((stream_name, RecordBatch(schema, rows)))
        # Only the flush's last buffer carries the fresh watermark: the
        # consumer applies a message's watermark on receipt, so stamping
        # it on an earlier buffer would advance the frontier past rows
        # of another stream still queued behind it on this channel.
        for position, (stream_name, batch) in enumerate(outgoing):
            last = position == len(outgoing) - 1
            message = _Message(
                stream_name, batch, watermark if last else float("-inf")
            )
            nbytes = batch.wire_bytes + MESSAGE_HEADER_BYTES
            yield from core.execute(
                self.node.cost_model.compute_cost(costs.per_buffer), 1.0
            )
            yield from channel.producer.send(core, message, nbytes)
        self.state.pending_rows[c_gid] = 0


class _Consumer:
    """One receiver thread: poll queues, update local state, trigger."""

    def __init__(self, ctx: _RunContext, gen: _Generation, gid: int, core: Core):
        self.ctx = ctx
        self.gen = gen
        self.gid = gid
        self.core = core
        self.node = core.node
        self.wake = ctx.sim.store(name=f"g{gen.number}.cons{gid}.wake")
        self.channels: list[Any] = []
        self.channel_wm: list[float] = []
        self.channel_done: list[bool] = []
        self.state: dict = {}
        self.state_bytes = 0.0
        self._last_contribution: dict = {}
        self.trigger_lag_s: list[float] = []
        #: (fire_time_s, lag_s) per fired window, for latency timelines.
        self.trigger_events: list[tuple[float, float]] = []
        # Per-consumer result sinks: a discarded generation's output dies
        # with it, the surviving generation's merges at collect().
        self.results_aggregates: dict = {}
        self.results_joins: list = []
        self.emitted = 0
        window = ctx.plan.window
        self.trigger = (
            None if isinstance(window, SessionWindows) else WindowTriggerState(window)
        )
        self.halted = False
        self.done = False

    def attach(self, consumer_endpoint: Any) -> None:
        consumer_endpoint.notify_store = self.wake
        self.channels.append(consumer_endpoint)
        self.channel_wm.append(float("-inf"))
        self.channel_done.append(False)

    def body(self) -> Generator[Any, Any, None]:
        core = self.core
        chaos = self.ctx.chaos
        index_of = {id(channel): i for i, channel in enumerate(self.channels)}
        while not all(self.channel_done):
            if self.halted:
                return
            ok, channel = self.wake.try_get()
            if not ok:
                # All queues empty: spin (pause) until any channel signals.
                channel = yield from core.spin_wait(self.wake.get())
            if self.halted:
                return
            index = index_of.get(id(channel))
            if index is None:
                continue  # a halt/restart poke, not a channel signal
            progressed = False
            while True:
                if self.halted:
                    return
                ok, payload, _nbytes = channel.try_recv(core)
                if not ok:
                    break
                if self.ctx.elastic is not None and self.ctx.elastic.on_consumer_payload(
                    self, index, payload
                ):
                    yield from channel.release(core)
                    progressed = True
                    continue
                if chaos is not None:
                    verdict = chaos.on_consumer_payload(
                        self, index, channel, payload
                    )
                    if verdict == "marker":
                        yield from channel.release(core)
                        yield from chaos.maybe_capture(self)
                        continue
                    if verdict == "spill":
                        # Alignment backpressure: hold the credit until
                        # the capture replays this buffer.
                        continue
                progressed = True
                yield from self._handle(index, channel, payload)
                if chaos is not None:
                    yield from chaos.maybe_capture(self)
            if progressed:
                yield from self._check_triggers()
        # A live rescale may have this consumer's bucket state split
        # mid-flight; wait for the round to re-unite it before the final
        # sweep, or the drain assertion below would fire spuriously.
        while self.ctx.elastic is not None and self.ctx.elastic.holds_finish(
            self.gid
        ):
            yield Timeout(1e-4)
        yield from self._check_triggers()
        if chaos is not None:
            yield from chaos.maybe_capture(self)
        self._assert_drained()
        self.done = True

    def _handle(self, index: int, channel: Any, payload: Any) -> Generator[Any, Any, None]:
        core = self.core
        ctx = self.ctx
        costs = ctx.engine.costs
        if payload is CHANNEL_EOS:
            self.channel_done[index] = True
            self.channel_wm[index] = float("inf")
            yield from channel.release(core)
            return
        if isinstance(payload, DoneToken):
            self.channel_wm[index] = float("inf")
            yield from channel.release(core)
            return
        if isinstance(payload, SnapshotMarker):
            # A marker of an aborted round (the controller declined it):
            # barrier of nothing, just drop it.
            yield from channel.release(core)
            return
        if ctx.chaos is not None:
            ctx.chaos.note_consumer_merge(self, index)
        message: _Message = payload
        batch = message.batch
        pipeline = ctx.plan.pipeline_for(message.stream)
        cost_model = self.node.cost_model
        yield from core.execute(cost_model.compute_cost(costs.dequeue), float(len(batch)))
        serde_n = ctx.engine._serde_records(len(batch))
        if serde_n:
            yield from core.execute(cost_model.compute_cost(costs.serde), serde_n)
        result = pipeline.process_batch(batch)
        if result.survivors:
            profile = costs.append if ctx.plan.is_join else costs.update
            lines = costs.append_lines if ctx.plan.is_join else costs.update_lines
            working_set = max(4096.0, self.state_bytes)
            update_cost = cost_model.op(profile, working_set, lines)
            yield from core.execute(update_cost, float(result.survivors))
            core.counters.count_records(result.survivors)
            crdt = ctx.plan.crdt
            now = ctx.sim.now
            for key, partial in result.partials.items():
                if key in self.state:
                    self.state[key] = crdt.merge(self.state[key], partial)
                else:
                    self.state[key] = partial
                if isinstance(key, tuple):
                    self._last_contribution[key[0]] = now
            self.state_bytes += result.state_bytes
            if self.trigger is not None:
                self.trigger.note_slices(
                    key[0] for key in result.partials if isinstance(key, tuple)
                )
        if message.watermark > self.channel_wm[index]:
            self.channel_wm[index] = message.watermark
        yield from channel.release(core)

    # -- triggering ----------------------------------------------------------------
    def _frontier(self) -> float:
        return min(self.channel_wm) if self.channel_wm else float("inf")

    def _check_triggers(self) -> Generator[Any, Any, None]:
        ctx = self.ctx
        if ctx.elastic is not None and ctx.elastic.triggers_suppressed(self.gid):
            # A rescale round holds this consumer's bucket state split
            # across two owners; firing now would emit partial windows.
            return
        frontier = self._frontier()
        if isinstance(ctx.plan.window, SessionWindows):
            yield from self._trigger_sessions(frontier)
            return
        assert self.trigger is not None
        for window_id in self.trigger.due_windows(frontier):
            if ctx.plan.is_join:
                yield from self._fire_join(window_id)
            else:
                yield from self._fire_agg(window_id)

    def _fire_agg(self, window_id: int) -> Generator[Any, Any, None]:
        ctx = self.ctx
        crdt = ctx.plan.crdt
        window = ctx.plan.window
        if isinstance(window, SlidingWindow):
            merged: dict = {}
            for slice_id in window.slices_of_window(window_id):
                for (sid, key), payload in list(self.state.items()):
                    if sid == slice_id:
                        merged[key] = (
                            crdt.merge(merged[key], payload) if key in merged else payload
                        )
            for (sid, key) in [k for k in self.state if k[0] == window_id]:
                del self.state[(sid, key)]
            extracted = merged
        else:
            extracted = {
                key: self.state.pop((win, key))
                for win, key in [k for k in self.state if k[0] == window_id]
            }
        if not extracted:
            return
        last = self._last_contribution.pop(window_id, ctx.sim.now)
        self.trigger_lag_s.append(ctx.sim.now - last)
        self.trigger_events.append((ctx.sim.now, ctx.sim.now - last))
        emit_cost = self.node.cost_model.compute_cost(ctx.engine.costs.emit)
        yield from self.core.execute(emit_cost, float(len(extracted)))
        for key, payload in extracted.items():
            self.results_aggregates[(window_id, key)] = crdt.finish(payload)
        self.emitted += len(extracted)
        self.state_bytes = max(
            0.0, self.state_bytes - len(extracted) * (16 + crdt.payload_bytes)
        )

    def _fire_join(self, window_id: int) -> Generator[Any, Any, None]:
        ctx = self.ctx
        extracted = {
            key: self.state.pop((win, key))
            for win, key in [k for k in self.state if k[0] == window_id]
        }
        if extracted:
            last = self._last_contribution.pop(window_id, ctx.sim.now)
            self.trigger_lag_s.append(ctx.sim.now - last)
            self.trigger_events.append((ctx.sim.now, ctx.sim.now - last))
        produced = 0
        for key, payload in extracted.items():
            for left_row, right_row in probe_window(payload):
                self.results_joins.append((window_id, key, left_row, right_row))
                produced += 1
        if produced:
            probe_cost = self.node.cost_model.compute_cost(ctx.engine.costs.probe_pair)
            yield from self.core.execute(probe_cost, float(produced))
        self.emitted += produced

    def _trigger_sessions(self, frontier: float) -> Generator[Any, Any, None]:
        ctx = self.ctx
        window = ctx.plan.window
        assert isinstance(window, SessionWindows)
        if frontier == float("-inf"):
            return
        produced = 0
        for key in list(self.state):
            emitted, remaining = probe_sessions(window, self.state[key], frontier)
            if not emitted:
                continue
            produced += len(emitted)
            for left_row, right_row in emitted:
                self.results_joins.append((key, left_row, right_row))
            if remaining:
                self.state[key] = remaining
            else:
                del self.state[key]
        if produced:
            probe_cost = self.node.cost_model.compute_cost(ctx.engine.costs.probe_pair)
            yield from self.core.execute(probe_cost, float(produced))
        self.emitted += produced

    def _assert_drained(self) -> None:
        if self.trigger is not None and self.trigger.pending:
            raise ConfigError(
                f"consumer {self.gid} finished with pending windows "
                f"{sorted(self.trigger.pending)[:5]}"
            )
