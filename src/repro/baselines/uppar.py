"""RDMA UpPar — the paper's straw-man 'lightweight integration' baseline.

UpPar keeps the classical scale-out architecture (hash re-partitioning,
consumer-local state, dedicated network threads) but swaps socket
exchange for Slash's own RDMA channels (the paper implements it exactly
this way: 'we use Slash's RDMA channel to implement RDMA UpPar',
Sec. 8.1.1).  Same-node exchange uses the memcpy-priced local channel.

The point of this baseline in the paper — and in this reproduction — is
that fast links alone do not fix the design: partitioning dominates the
sender's cycles and the receiver spins waiting on it.
"""

from __future__ import annotations

from typing import Optional

from repro.baselines.costs import UPPAR_COSTS, ExchangeCosts
from repro.baselines.partitioned import PartitionedEngine, _RunContext
from repro.channel.channel import LocalChannel, RdmaChannel
from repro.common.config import (
    ClusterConfig,
    DEFAULT_BUFFER_BYTES,
    DEFAULT_CREDITS,
)
from repro.core.system import (
    CAP_CRASH_RECOVERY,
    CAP_ELASTIC,
    CAP_FAULT_INJECTION,
    CAP_JOINS,
    CAP_SANITIZE,
    CAP_SCALE_OUT,
    CAP_SESSION_WINDOWS,
    CAP_TRANSFER_BENCH,
    MIGRATION_STRATEGIES,
    STRATEGY_ASYNC_SNAPSHOT,
)
from repro.rdma.connection import ConnectionManager
from repro.simnet.cluster import Node


class UpParEngine(PartitionedEngine):
    """Scale-out SPE over RDMA channels with hash re-partitioning."""

    name = "uppar"
    capabilities = frozenset(
        {
            CAP_SCALE_OUT,
            CAP_JOINS,
            CAP_SESSION_WINDOWS,
            CAP_SANITIZE,
            CAP_FAULT_INJECTION,
            CAP_CRASH_RECOVERY,
            CAP_TRANSFER_BENCH,
            CAP_ELASTIC,
        }
    )
    # Live rescale rides the route-table exchange coordinator
    # (elastic/exchange.py); Flink stays static on purpose — the
    # comparison needs a non-elastic engine for the CapabilityError path.
    supported_migration_strategies = frozenset(MIGRATION_STRATEGIES)
    # Data-plane kinds ride Slash's RDMA channels directly; crash and
    # partition plans go through the aligned-snapshot + global-restart
    # plane (membership over per-node proxies, Flink-style recovery —
    # see faults/snapshots.py).  Stall and duplicate-delta stay out:
    # both act on Slash executor internals a partitioned worker lacks.
    supported_fault_kinds = frozenset(
        {
            "nic-flap",
            "drop-chunk",
            "credit-starvation",
            "node-crash",
            "net-partition",
            "asym-partition",
            "slow-node",
            "jitter",
        }
    )
    supported_recovery_strategies = frozenset({STRATEGY_ASYNC_SNAPSHOT})
    default_recovery_strategy = STRATEGY_ASYNC_SNAPSHOT

    def __init__(
        self,
        cluster_config: Optional[ClusterConfig] = None,
        credits: int = DEFAULT_CREDITS,
        buffer_bytes: int = DEFAULT_BUFFER_BYTES,
        costs: ExchangeCosts = UPPAR_COSTS,
    ):
        super().__init__(costs, cluster_config, credits, buffer_bytes)
        self._cm: Optional[ConnectionManager] = None

    def _make_channel(self, ctx: _RunContext, src: Node, dst: Node, name: str):
        if src.index == dst.index:
            return LocalChannel(
                ctx.sim, src, credits=self.credits,
                buffer_bytes=self.buffer_bytes, name=name,
            )
        if self._cm is None or self._cm.cluster is not ctx.cluster:
            self._cm = ConnectionManager(ctx.cluster)
        return RdmaChannel.create(
            self._cm, src.index, dst.index,
            credits=self.credits, buffer_bytes=self.buffer_bytes, name=name,
        )
