"""Sequential reference executor — the ground truth for property P2.

The paper's consistency property P2 states that a distributed Slash
computation over a stream D must, after lazy merging, produce the same
output a *sequential* computation over D would.  This module is that
sequential computation: no cluster, no time, no partitioning — just the
compiled pipelines folded into one dictionary and triggered at
end-of-stream.  Every engine's output is tested against it.
"""

from __future__ import annotations

from typing import Any

from repro.core.engine import RunResult
from repro.core.join import probe_sessions, probe_window
from repro.core.pipeline import PhysicalPlan, compile_query
from repro.core.query import Query
from repro.core.system import CAP_JOINS, CAP_SESSION_WINDOWS, SystemHooks
from repro.core.windows import SessionWindows, SlidingWindow
from repro.workloads.base import Flow


class SequentialReference(SystemHooks):
    """Run a query single-threaded and return the canonical output."""

    name = "reference"
    # No cluster, no simulated time: nothing to sanitize or fault.
    capabilities = frozenset({CAP_JOINS, CAP_SESSION_WINDOWS})

    def run(self, query: Query, flows: dict[tuple[int, int], Flow]) -> "ReferenceOutput":
        plan = compile_query(query)
        state: dict[Any, Any] = {}
        crdt = plan.crdt
        records = 0
        for _worker, flow in sorted(flows.items()):
            for stream_name, batch in flow:
                records += len(batch)
                pipeline = plan.pipeline_for(stream_name)
                result = pipeline.process_batch(batch)
                for key, partial in result.partials.items():
                    if key in state:
                        state[key] = crdt.merge(state[key], partial)
                    else:
                        state[key] = partial
        nodes = {node for node, _thread in flows}
        threads = {thread for _node, thread in flows}
        output = ReferenceOutput(
            records=records,
            query_name=query.name,
            nodes=len(nodes),
            threads_per_node=len(threads),
        )
        if plan.aggregation is not None:
            self._finish_aggregation(plan, state, output)
        else:
            self._finish_join(plan, state, output)
        return output

    def _finish_aggregation(self, plan: PhysicalPlan, state: dict, output: "ReferenceOutput") -> None:
        assert plan.aggregation is not None
        crdt = plan.aggregation.crdt
        window = plan.window
        if isinstance(window, SlidingWindow):
            windows_seen: set[int] = set()
            for (slice_id, _key) in state:
                windows_seen.update(window.windows_of_slice(slice_id))
            for window_id in sorted(windows_seen):
                merged: dict[Any, Any] = {}
                for slice_id in window.slices_of_window(window_id):
                    for (sid, key), payload in state.items():
                        if sid == slice_id:
                            if key in merged:
                                merged[key] = crdt.merge(merged[key], payload)
                            else:
                                merged[key] = payload
                for key, payload in merged.items():
                    output.aggregates[(window_id, key)] = crdt.finish(payload)
        else:
            for (window_id, key), payload in state.items():
                output.aggregates[(window_id, key)] = crdt.finish(payload)

    def _finish_join(self, plan: PhysicalPlan, state: dict, output: "ReferenceOutput") -> None:
        window = plan.window
        if isinstance(window, SessionWindows):
            for key, payload in state.items():
                emitted, remaining = probe_sessions(window, payload, float("inf"))
                assert not remaining
                for left_row, right_row in emitted:
                    output.join_pairs.append((key, left_row, right_row))
        else:
            for (window_id, key), payload in state.items():
                for left_row, right_row in probe_window(payload):
                    output.join_pairs.append((window_id, key, left_row, right_row))
        output.join_pairs.sort()


class ReferenceOutput(RunResult):
    """The canonical result set of one query over one input.

    A :class:`~repro.core.engine.RunResult` like every other engine's,
    so the runtime oracle can diff it directly; ``sim_seconds`` is zero
    (the reference computes outside simulated time) and ``records``
    aliases ``input_records`` for the established call sites.
    """

    def __init__(
        self,
        records: int = 0,
        query_name: str = "",
        nodes: int = 0,
        threads_per_node: int = 0,
    ):
        super().__init__(
            system="reference",
            query_name=query_name,
            nodes=nodes,
            threads_per_node=threads_per_node,
            input_records=records,
            sim_seconds=0.0,
        )

    @property
    def records(self) -> int:
        return self.input_records
