"""Cost profiles for the baseline engines, calibrated to the paper.

**RDMA UpPar** (Table 1, Fig. 9): the sender's partitioning logic costs
~166 instructions / ~274 cycles per record with heavy front-end stalls
(large, branchy code footprint) and low-MLP data-dependent writes into
the fan-out buffers; the receiver spends ~78 instructions / ~276 cycles
per record — but most of its measured cycles are the ``pause``-spinning
core-bound wait, which in this simulation *emerges* from waiting on
channels rather than being charged per record.

**Flink**: the same dataflow shape, further burdened by a managed-runtime
multiplier on all compute, per-record (de)serialization on both sides of
every exchange, and socket syscalls per buffer — the overheads the paper
attributes to 'plug-and-play' IPoIB deployments (Secs. 3.1, 8.2).

**LightSaber**: scale-up late merge — per-record work close to Slash's,
plus a shared-task-queue synchronisation cost per batch (the paper notes
LightSaber's single task queue versus Slash's per-worker queues,
Sec. 5.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.simnet.cost_model import CostProfile


@dataclass(frozen=True)
class ExchangeCosts:
    """Cost surface for a queue/exchange-based scale-out engine."""

    # Fused filter/project on the source/partitioner threads.
    pipeline: CostProfile
    # Hash + route one record (fixed part; the copy is priced separately
    # per record byte via ``partition_lines_for``).
    partition: CostProfile
    # Fixed random lines touched per routed record (routing tables etc.);
    # the data-dependent fan-out copy adds record_bytes / 64 lines.
    partition_lines: float
    # Pop one record out of an inbound queue (queue-based sync).
    dequeue: CostProfile
    # RMW one record into consumer-local window state.
    update: CostProfile
    update_lines: float
    # Cheap vectorisable count path for the RO benchmark (see
    # repro.core.costs.SlashCosts.light_update).
    light_update: CostProfile
    light_update_lines: float
    # Append one record into consumer-local join state.
    append: CostProfile
    append_lines: float
    # Serialize or deserialize one record (managed runtimes only).
    serde: CostProfile
    # Emit one result / produce one join pair.
    emit: CostProfile
    probe_pair: CostProfile
    # Per-sent-buffer bookkeeping on the sender (flush, queue sync).
    per_buffer: CostProfile

    def partition_lines_for(self, record_bytes: int) -> float:
        """Random cache lines per partitioned record of ``record_bytes``.

        The data-dependent copy into the fan-out buffer touches one line
        per 64 payload bytes on top of the fixed routing lines — this is
        why partitioning small RO records is far cheaper per record than
        partitioning 78-byte YSB records (Table 1 vs Fig. 8).
        """
        return self.partition_lines + record_bytes / 64.0


UPPAR_COSTS = ExchangeCosts(
    pipeline=CostProfile(
        "uppar.pipeline", instructions=12, frontend=1.0, bad_spec=1.0, core=2.0, mlp=12
    ),
    # The expensive part: branchy partitioning with a large code footprint
    # (front-end bound) and data-dependent fan-out writes (low MLP).
    partition=CostProfile(
        "uppar.partition", instructions=36, frontend=14.0, bad_spec=5.0, core=4.0, mlp=1.2
    ),
    partition_lines=0.05,
    # Queue-based synchronisation per dequeued record — the 'costly
    # message passing' overhead of Sec. 1 (shared-queue CAS + bookkeeping).
    dequeue=CostProfile(
        "uppar.dequeue", instructions=24, frontend=3.0, bad_spec=1.0, core=10.0, mlp=8
    ),
    update=CostProfile(
        "uppar.update", instructions=42, frontend=5.0, bad_spec=3.0, core=12.0, mlp=2.5
    ),
    update_lines=2.2,
    light_update=CostProfile(
        "uppar.light_update", instructions=10, frontend=1.0, bad_spec=0.5, core=2.0, mlp=12
    ),
    light_update_lines=0.3,
    append=CostProfile(
        "uppar.append", instructions=60, frontend=6.0, bad_spec=3.0, core=14.0, mlp=2.5
    ),
    append_lines=2.5,
    serde=CostProfile("uppar.serde", instructions=0),
    emit=CostProfile("uppar.emit", instructions=20, frontend=1.0, core=3.0, mlp=8),
    probe_pair=CostProfile(
        "uppar.probe", instructions=24, frontend=2.0, bad_spec=1.0, core=5.0, mlp=4
    ),
    per_buffer=CostProfile(
        "uppar.flush", instructions=400, frontend=60.0, core=220.0, mlp=4
    ),
)

# Managed-runtime factor: JVM object handling, virtual dispatch, GC
# pressure.  Applied on top of per-record serialization.
FLINK_RUNTIME_FACTOR = 6.0

FLINK_COSTS = ExchangeCosts(
    pipeline=UPPAR_COSTS.pipeline.scaled(FLINK_RUNTIME_FACTOR),
    partition=UPPAR_COSTS.partition.scaled(FLINK_RUNTIME_FACTOR),
    partition_lines=0.5,
    dequeue=UPPAR_COSTS.dequeue.scaled(FLINK_RUNTIME_FACTOR),
    update=UPPAR_COSTS.update.scaled(FLINK_RUNTIME_FACTOR),
    update_lines=2.0,
    light_update=UPPAR_COSTS.light_update.scaled(FLINK_RUNTIME_FACTOR),
    light_update_lines=0.5,
    append=UPPAR_COSTS.append.scaled(FLINK_RUNTIME_FACTOR),
    append_lines=3.0,
    # Kryo-style per-record serialization, paid on both exchange sides.
    serde=CostProfile(
        "flink.serde", instructions=180, frontend=40.0, bad_spec=10.0, core=30.0, mlp=4
    ),
    emit=UPPAR_COSTS.emit.scaled(FLINK_RUNTIME_FACTOR),
    probe_pair=UPPAR_COSTS.probe_pair.scaled(FLINK_RUNTIME_FACTOR),
    per_buffer=CostProfile(
        "flink.flush", instructions=2500, frontend=400.0, core=1400.0, mlp=4
    ),
)


@dataclass(frozen=True)
class ScaleUpCosts:
    """Cost surface for the LightSaber-like scale-up engine."""

    pipeline: CostProfile = field(
        default_factory=lambda: CostProfile(
            "ls.pipeline", instructions=12, frontend=1.0, bad_spec=1.0, core=2.0, mlp=12
        )
    )
    update: CostProfile = field(
        default_factory=lambda: CostProfile(
            "ls.update", instructions=34, frontend=2.0, bad_spec=2.0, core=10.0, mlp=8
        )
    )
    update_lines: float = 1.75
    merge_pair: CostProfile = field(
        default_factory=lambda: CostProfile(
            "ls.merge", instructions=26, frontend=1.0, bad_spec=1.0, core=6.0, mlp=8
        )
    )
    merge_lines: float = 1.5
    emit: CostProfile = field(
        default_factory=lambda: CostProfile(
            "ls.emit", instructions=20, frontend=1.0, core=3.0, mlp=8
        )
    )
    # The single shared task queue: one CAS-contended sync per task
    # (batch), growing with the number of contending workers.
    task_queue_sync: CostProfile = field(
        default_factory=lambda: CostProfile(
            "ls.taskq", instructions=80, frontend=5.0, core=260.0, mlp=4
        )
    )


LIGHTSABER_COSTS = ScaleUpCosts()
