"""IP-over-InfiniBand socket channels — the 'plug-and-play' data plane.

IPoIB lets unmodified socket code run on an RDMA NIC, but (per Binnig et
al., VLDB'16, and the paper's Sec. 3.1) it neither saturates the link
nor avoids per-message CPU cost: every send and receive crosses the
kernel (syscall + copy), and the effective bandwidth of the 100 Gb/s
port drops to a fraction of ``ib_write_bw``.

:class:`IpoibChannel` exposes the same endpoint API as the RDMA channel
(``send`` / ``recv`` / ``try_recv`` / ``release`` / ``close``), so the
partitioned engines are data-plane agnostic.  Flow control models a
bounded TCP send window with ``credits`` in-flight buffers.
"""

from __future__ import annotations

from typing import Any, Generator, Optional

from repro.channel.channel import CHANNEL_EOS
from repro.channel.protocol import ChannelStats, FlowControl
from repro.common.errors import ProtocolError
from repro.simnet.cluster import BandwidthPipe, Core, Node
from repro.simnet.cost_model import OpCost
from repro.simnet.kernel import Simulator, Store, Timeout


class IpoibFabric:
    """Per-run registry of each node's IPoIB TX/RX pipes.

    All socket traffic of one node shares these two pipes, so fan-in
    congestion and bandwidth ceilings behave like the RDMA data plane —
    just with a far lower rate.
    """

    def __init__(self, sim: Simulator):
        self.sim = sim
        self._tx: dict[int, BandwidthPipe] = {}
        self._rx: dict[int, BandwidthPipe] = {}

    def tx(self, node: Node) -> BandwidthPipe:
        return self._pipe(self._tx, node, "tx")

    def rx(self, node: Node) -> BandwidthPipe:
        return self._pipe(self._rx, node, "rx")

    def _pipe(self, pool: dict[int, BandwidthPipe], node: Node, kind: str) -> BandwidthPipe:
        pipe = pool.get(node.index)
        if pipe is None:
            pipe = BandwidthPipe(
                self.sim,
                node.config.nic.ipoib_bandwidth_bytes_per_s,
                name=f"node{node.index}.ipoib_{kind}",
            )
            pool[node.index] = pipe
        return pipe


def _syscall_cost(node: Node) -> OpCost:
    """CPU price of one socket syscall (send or recv) incl. kernel copy."""
    cycles = node.config.nic.ipoib_syscall_cycles
    return OpCost(
        instructions=cycles / 3.0,
        retiring=cycles * 0.25,
        frontend=cycles * 0.15,
        core=cycles * 0.45,
        memory=cycles * 0.15,
    )


class IpoibChannel:
    """A socket connection between two workers (possibly on one node)."""

    def __init__(
        self,
        fabric: IpoibFabric,
        src: Node,
        dst: Node,
        credits: int = 32,
        buffer_bytes: int = 64 * 1024,
        name: str = "ipoib",
    ):
        self.fabric = fabric
        self.sim = fabric.sim
        self.src = src
        self.dst = dst
        self.buffer_bytes = buffer_bytes
        self.name = name
        self.stats = ChannelStats()
        self._flow = FlowControl(credits)
        self._arrivals: Store = self.sim.store(name=f"{name}.arrivals")
        self._acks: Store = self.sim.store(name=f"{name}.acks")
        self._eos_seen = False
        self._closed = False
        self.notify_store: Optional[Store] = None
        self.producer = self
        self.consumer = self
        #: Credit-starvation fault surface (same names as the RDMA
        #: consumer endpoint so the injector drives both uniformly).
        self.withhold_credits = False
        self._withheld = 0

    # -- producer side ------------------------------------------------------
    @property
    def closed(self) -> bool:
        return self._closed

    def send(self, core: Core, payload: Any, nbytes: int) -> Generator[Any, Any, None]:
        """Socket send: syscall + kernel copy + NIC, window-limited."""
        if self._closed:
            raise ProtocolError(f"{self.name}: send after EOS")
        if nbytes > self.buffer_bytes:
            raise ProtocolError(
                f"{self.name}: payload {nbytes} exceeds buffer {self.buffer_bytes}"
            )
        self._drain_acks()
        while not self._flow.can_send():
            stall_start = self.sim.now
            yield from core.spin_wait(self._acks.get())
            self._flow.refill(1)
            self.stats.record_stall(self.sim.now - stall_start)
        self._flow.spend()
        yield from core.execute(_syscall_cost(self.src), 1.0)
        # Kernel copy of the payload into the socket buffer.
        copy = self.src.cost_model.cache.streaming_cost(2 * max(nbytes, 1))
        yield from core.execute(copy, 1.0)
        core.counters.count_network(nbytes)
        self.sim.process(self._wire(payload, nbytes), name=f"{self.name}.wire")
        self.stats.record_send(nbytes)

    def _wire(self, payload: Any, nbytes: int) -> Generator[Any, Any, None]:
        sent_at = self.sim.now
        wire_bytes = max(nbytes, 64)
        if self.src.index != self.dst.index:
            yield self.fabric.tx(self.src).transfer(wire_bytes)
            # TCP over a lossy path: the injector may eat the segment;
            # the sender's stack retransmits after an RTO that backs off
            # exponentially, up to its retry budget.
            faults = self.sim.faults
            if faults is not None:
                rto = faults.rto_s
                attempts = 0
                while faults.should_drop_write(self.src.index, wire_bytes):
                    attempts += 1
                    if attempts > faults.max_retries:
                        raise ProtocolError(
                            f"{self.name}: {attempts - 1} retransmissions "
                            "exhausted (path black-holed?)"
                        )
                    yield Timeout(rto)
                    rto *= 2.0
                    yield self.fabric.tx(self.src).transfer(wire_bytes)
            # The jitter fault inflates the shared physical path, so the
            # socket fabric sees it just like the RDMA data plane does.
            yield Timeout(
                self.src.config.nic.ipoib_latency_s
                + self.src.cluster.extra_latency(self.src.index, self.dst.index)
            )
            yield self.fabric.rx(self.dst).transfer(wire_bytes)
        else:
            # Loopback: no NIC, but still a kernel round trip.
            yield Timeout(5e-6)
        self._arrivals.put((sent_at, payload, nbytes))
        if self.notify_store is not None:
            self.notify_store.put(self)

    def close(self, core: Core) -> Generator[Any, Any, None]:
        yield from self.send(core, CHANNEL_EOS, 0)
        self._closed = True

    def _drain_acks(self) -> None:
        while True:
            ok, _ack = self._acks.try_get()
            if not ok:
                return
            self._flow.refill(1)

    # -- consumer side ----------------------------------------------------------
    @property
    def eos(self) -> bool:
        return self._eos_seen

    @property
    def pending(self) -> int:
        return len(self._arrivals)

    def try_recv(self, core: Core) -> tuple[bool, Any, int]:
        ok, item = self._arrivals.try_get()
        if not ok:
            return False, None, 0
        return self._take(core, item)

    def recv(self, core: Core) -> Generator[Any, Any, tuple[Any, int]]:
        item = yield from core.spin_wait(self._arrivals.get())
        _ok, payload, nbytes = self._take(core, item)
        return payload, nbytes

    def _take(self, core: Core, item: tuple[float, Any, int]) -> tuple[bool, Any, int]:
        sent_at, payload, nbytes = item
        self.stats.record_latency(self.sim.now - sent_at)
        if payload is CHANNEL_EOS:
            self._eos_seen = True
        return True, payload, nbytes

    def release(self, core: Core) -> Generator[Any, Any, None]:
        """Recv-side syscall; frees one window slot for the sender."""
        yield from core.execute(_syscall_cost(self.dst), 1.0)
        if self.withhold_credits:
            # Zero-window fault: the ack stays in the receiver's stack
            # until the injector lifts the starvation.
            self._withheld += 1
            return
        self._acks.put(1)

    def flush_withheld(self, core: Core) -> Generator[Any, Any, None]:
        """Release every ack the starvation window swallowed."""
        while self._withheld > 0:
            self._withheld -= 1
            yield from core.execute(_syscall_cost(self.dst), 1.0)
            self._acks.put(1)
