"""Analytical CPU micro-architecture cost model.

Real hardware charges a stream engine per record through instruction
execution, branch (mis)prediction, and the cache hierarchy.  This module
substitutes an *analytical* model for the PMU: every engine operation is
priced as an :class:`OpCost` — an instruction count, a cycle vector over
the top-down categories, per-level cache misses, and DRAM traffic.

Two ingredients:

* :class:`CostProfile` — the *compute* part of an operation: instructions
  and non-memory cycles.  Retiring cycles are ``instructions / retire_width``
  (Skylake retires up to 4 uops/cycle, Sec. 8.3.4 of the paper); the
  front-end, bad-speculation, and core components are per-operation
  constants calibrated against the paper's measurements (Table 1,
  Figs. 9-10) and documented at each profile definition site.

* :class:`CacheModel` — the *memory* part: an inclusive three-level model
  where the probability that a random access into a working set of ``W``
  bytes hits a cache of ``S`` bytes is ``min(1, S / W)``.  Each miss level
  charges its load-to-use latency divided by the operation's memory-level
  parallelism (out-of-order cores overlap independent misses; streaming
  RMW batches reach high MLP, pointer-chasing appends do not).  LLC misses
  additionally move a cache line from DRAM (and a dirty write-back for
  stores), which feeds the aggregate-memory-bandwidth column of Table 1.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.common.config import CpuConfig
from repro.common.errors import ConfigError


@dataclass(frozen=True)
class OpCost:
    """The full price of one operation instance (typically one record)."""

    instructions: float = 0.0
    retiring: float = 0.0
    frontend: float = 0.0
    bad_spec: float = 0.0
    memory: float = 0.0
    core: float = 0.0
    l1_misses: float = 0.0
    l2_misses: float = 0.0
    llc_misses: float = 0.0
    mem_bytes: float = 0.0

    @property
    def total_cycles(self) -> float:
        """Sum of all cycle categories."""
        return self.retiring + self.frontend + self.bad_spec + self.memory + self.core

    def plus(self, other: "OpCost") -> "OpCost":
        """Return the component-wise sum of two costs."""
        return OpCost(
            instructions=self.instructions + other.instructions,
            retiring=self.retiring + other.retiring,
            frontend=self.frontend + other.frontend,
            bad_spec=self.bad_spec + other.bad_spec,
            memory=self.memory + other.memory,
            core=self.core + other.core,
            l1_misses=self.l1_misses + other.l1_misses,
            l2_misses=self.l2_misses + other.l2_misses,
            llc_misses=self.llc_misses + other.llc_misses,
            mem_bytes=self.mem_bytes + other.mem_bytes,
        )

    def scaled(self, factor: float) -> "OpCost":
        """Return this cost multiplied by ``factor`` in every component."""
        return OpCost(
            instructions=self.instructions * factor,
            retiring=self.retiring * factor,
            frontend=self.frontend * factor,
            bad_spec=self.bad_spec * factor,
            memory=self.memory * factor,
            core=self.core * factor,
            l1_misses=self.l1_misses * factor,
            l2_misses=self.l2_misses * factor,
            llc_misses=self.llc_misses * factor,
            mem_bytes=self.mem_bytes * factor,
        )


@dataclass(frozen=True)
class CostProfile:
    """The compute (non-cache) price of an operation.

    ``frontend``/``bad_spec``/``core`` are cycles per operation; retiring
    cycles are derived from ``instructions``.  ``mlp`` is the memory-level
    parallelism the operation achieves when its cache accesses miss.
    """

    name: str
    instructions: float
    frontend: float = 0.0
    bad_spec: float = 0.0
    core: float = 0.0
    mlp: float = 8.0

    def __post_init__(self) -> None:
        if self.instructions < 0:
            raise ConfigError(f"profile {self.name!r}: negative instructions")
        if self.mlp <= 0:
            raise ConfigError(f"profile {self.name!r}: mlp must be positive")

    def scaled(self, factor: float) -> "CostProfile":
        """Uniformly scale the compute price (used for runtime multipliers)."""
        return replace(
            self,
            instructions=self.instructions * factor,
            frontend=self.frontend * factor,
            bad_spec=self.bad_spec * factor,
            core=self.core * factor,
        )


class CacheModel:
    """Inclusive three-level cache model over working-set sizes."""

    def __init__(self, cpu: CpuConfig):
        self.cpu = cpu
        self._miss_memo: dict[float, tuple[float, float, float]] = {}

    def miss_rates(self, working_set_bytes: float) -> tuple[float, float, float]:
        """Per-access miss probability at L1, L2, LLC for a random access.

        A random access into a uniformly-hot working set of ``W`` bytes hits
        a cache of ``S`` bytes with probability ``min(1, S / W)``; the three
        returned values are the per-access *miss* probabilities, which are
        non-increasing in cache size (inclusive hierarchy).  Memoized: the
        same working-set size recurs for every record of a batch.
        """
        if working_set_bytes <= 0:
            return 0.0, 0.0, 0.0
        cached = self._miss_memo.get(working_set_bytes)
        if cached is not None:
            return cached
        cpu = self.cpu
        l1_miss = max(0.0, 1.0 - cpu.l1d_bytes / working_set_bytes)
        l2_miss = max(0.0, 1.0 - cpu.l2_bytes / working_set_bytes)
        llc_miss = max(0.0, 1.0 - cpu.llc_bytes / working_set_bytes)
        # Inclusive hierarchy: a level cannot miss more often than the one
        # above it hits, so clamp to non-increasing.
        l2_miss = min(l2_miss, l1_miss)
        llc_miss = min(llc_miss, l2_miss)
        rates = (l1_miss, l2_miss, llc_miss)
        if len(self._miss_memo) < 65536:
            self._miss_memo[working_set_bytes] = rates
        return rates

    def access_cost(
        self,
        working_set_bytes: float,
        lines_touched: float,
        mlp: float,
        dirty_fraction: float = 1.0,
    ) -> OpCost:
        """Price ``lines_touched`` random cache-line accesses into a set.

        Returns an :class:`OpCost` carrying only the memory category, the
        per-level miss counts, and the DRAM traffic (line fill plus a
        write-back for the ``dirty_fraction`` of evicted lines).
        """
        cpu = self.cpu
        l1_miss, l2_miss, llc_miss = self.miss_rates(working_set_bytes)
        l1 = lines_touched * l1_miss
        l2 = lines_touched * l2_miss
        llc = lines_touched * llc_miss
        hits_l1 = lines_touched - l1
        hits_l2 = l1 - l2
        hits_llc = l2 - llc
        stall = (
            hits_l1 * cpu.l1_latency_cycles
            + hits_l2 * cpu.l2_latency_cycles
            + hits_llc * cpu.llc_latency_cycles
            + llc * cpu.dram_latency_cycles
        ) / mlp
        traffic = llc * cpu.cacheline_bytes * (1.0 + dirty_fraction)
        return OpCost(memory=stall, l1_misses=l1, l2_misses=l2, llc_misses=llc, mem_bytes=traffic)

    def streaming_cost(self, nbytes: float, mlp: float = 16.0) -> OpCost:
        """Price a sequential streaming read/write of ``nbytes``.

        Sequential access misses once per cache line at every level
        (compulsory misses) but prefetchers hide most latency, hence the
        high default MLP.
        """
        cpu = self.cpu
        lines = nbytes / cpu.cacheline_bytes
        stall = lines * cpu.dram_latency_cycles / mlp
        return OpCost(
            memory=stall,
            l1_misses=lines,
            l2_misses=lines,
            llc_misses=lines,
            mem_bytes=nbytes,
        )


class CostModel:
    """Combines a :class:`CostProfile` with the :class:`CacheModel`.

    Engines hold one instance per node and call :meth:`op` to price each
    operation kind; results are cached because the same (profile, working
    set) pair recurs for every batch.
    """

    RETIRE_WIDTH = 4.0  # Skylake retires up to 4 uops per cycle.

    def __init__(self, cpu: CpuConfig):
        self.cpu = cpu
        self.cache = CacheModel(cpu)
        self._memo: dict[tuple, OpCost] = {}
        self._compute_memo: dict[CostProfile, OpCost] = {}
        # Wall-clock multiplier applied in :meth:`seconds` — the
        # slow-node gray-fault lever.  Kept out of the memo tables on
        # purpose: they cache cycle counts, and pricing happens at
        # :meth:`seconds` time, so a mid-run change applies immediately.
        self._slowdown = 1.0

    def slow_down(self, factor: float) -> None:
        """Run this node at ``factor`` of nominal speed (slow-node fault).

        ``factor`` is the fraction of nominal throughput that survives
        (0.25 = the node runs at quarter speed).  Only one slowdown can
        be active at a time — plans with overlapping windows are
        rejected by :meth:`FaultPlan.validate`.
        """
        if not 0.0 < factor < 1.0:
            raise ConfigError(
                f"slow_down factor must be in (0, 1), got {factor}"
            )
        self._slowdown = 1.0 / factor

    def restore_speed(self) -> None:
        """Undo :meth:`slow_down`: return to nominal speed."""
        self._slowdown = 1.0

    @property
    def slowdown_active(self) -> bool:
        """Whether a slow-node window is currently applied."""
        return self._slowdown != 1.0

    def compute_cost(self, profile: CostProfile) -> OpCost:
        """Price only the compute portion of ``profile`` (no cache access).

        Memoized on the (frozen) profile: engines price the same handful
        of profiles for every record of a run.
        """
        cached = self._compute_memo.get(profile)
        if cached is not None:
            return cached
        cost = OpCost(
            instructions=profile.instructions,
            retiring=profile.instructions / self.RETIRE_WIDTH,
            frontend=profile.frontend,
            bad_spec=profile.bad_spec,
            core=profile.core,
        )
        self._compute_memo[profile] = cost
        return cost

    def op(
        self,
        profile: CostProfile,
        working_set_bytes: float = 0.0,
        lines_touched: float = 0.0,
        dirty_fraction: float = 1.0,
    ) -> OpCost:
        """Price one operation: compute portion + random cache accesses."""
        key = (profile.name, profile.instructions, working_set_bytes, lines_touched, dirty_fraction)
        cached = self._memo.get(key)
        if cached is not None:
            return cached
        cost = self.compute_cost(profile)
        if lines_touched > 0:
            cost = cost.plus(
                self.cache.access_cost(
                    working_set_bytes, lines_touched, profile.mlp, dirty_fraction
                )
            )
        self._memo[key] = cost
        return cost

    def streaming(self, profile: CostProfile, nbytes: float) -> OpCost:
        """Price one operation that streams ``nbytes`` sequentially."""
        cost = self.compute_cost(profile)
        return cost.plus(self.cache.streaming_cost(nbytes))

    def seconds(self, cost: OpCost, count: float = 1.0) -> float:
        """Wall-clock (simulated) seconds for ``count`` instances of ``cost``."""
        return cost.total_cycles * count * self._slowdown / self.cpu.frequency_hz
