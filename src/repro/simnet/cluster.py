"""Simulated cluster hardware: cores, DRAM channels, NICs, links, switch.

The contention model is intentionally simple and deterministic:

* each **core** runs one engine worker (the paper pins threads to cores);
* each node's **DRAM** is a shared bandwidth pipe — when the aggregate
  cache-miss traffic of all workers exceeds the socket's sustainable
  bandwidth, batches queue and the node becomes memory-bandwidth bound
  (this is what caps Slash, Sec. 8.3.4);
* each node's **NIC** has one transmit and one receive bandwidth pipe; a
  message serialises on the sender's TX pipe, crosses the switch after a
  propagation delay, then serialises on the receiver's RX pipe — so incast
  (many senders, one receiver, as in hash re-partitioning) congests the
  receive side, exactly the effect that hurts RDMA UpPar under skew.

Bandwidth pipes are FIFO with O(1) bookkeeping: a transfer occupies the
pipe from ``max(now, pipe_free_at)`` for ``overhead + bytes/bandwidth``.
"""

from __future__ import annotations

from typing import Any, Generator, Optional

from repro.common.config import ClusterConfig, NodeConfig
from repro.common.errors import ConfigError, SimulationError
from repro.simnet.cost_model import CostModel, OpCost
from repro.simnet.counters import HwCounters
from repro.simnet.kernel import AllOf, Process, Signal, Simulator, Timeout


class BandwidthPipe:
    """A FIFO resource that serialises byte transfers at a fixed rate."""

    def __init__(self, sim: Simulator, bytes_per_s: float, name: str = ""):
        if bytes_per_s <= 0:
            raise ConfigError(f"pipe {name!r}: bandwidth must be positive")
        self.sim = sim
        self.bytes_per_s = bytes_per_s
        self.nominal_bytes_per_s = bytes_per_s
        self.name = name
        self._free_at = 0.0
        self.total_bytes = 0.0

    def degrade(self, factor: float) -> None:
        """Scale the pipe's rate to ``factor`` of nominal (NIC flap / link
        degradation fault).  Transfers already enqueued keep their old
        completion times; only future transfers see the new rate."""
        if factor <= 0:
            raise ConfigError(f"pipe {self.name!r}: degrade factor must be positive")
        self.bytes_per_s = self.nominal_bytes_per_s * factor

    def restore(self) -> None:
        """Undo :meth:`degrade`: return to the nominal rate."""
        self.bytes_per_s = self.nominal_bytes_per_s

    def transfer(self, nbytes: float, overhead_s: float = 0.0) -> Signal:
        """Enqueue a transfer; the returned signal fires when it completes."""
        if nbytes < 0:
            raise SimulationError(f"pipe {self.name!r}: negative transfer size")
        start = max(self.sim.now, self._free_at)
        finish = start + overhead_s + nbytes / self.bytes_per_s
        self._free_at = finish
        self.total_bytes += nbytes
        done = Signal(name=f"{self.name}.xfer")
        self.sim.call_in(finish - self.sim.now, done.fire, nbytes)
        return done

    @property
    def busy_until(self) -> float:
        """Simulated time at which the pipe next becomes idle."""
        return self._free_at

    def utilization(self, elapsed_s: float) -> float:
        """Fraction of ``elapsed_s`` the pipe spent moving bytes."""
        if elapsed_s <= 0:
            return 0.0
        return min(1.0, self.total_bytes / self.bytes_per_s / elapsed_s)


class Core:
    """One pinned hardware thread: executes priced operations, spins on waits."""

    def __init__(self, node: "Node", index: int):
        self.node = node
        self.index = index
        self.counters = HwCounters()

    @property
    def sim(self) -> Simulator:
        return self.node.sim

    def execute(self, cost: OpCost, count: float = 1.0) -> Generator[Any, Any, None]:
        """Charge and spend the time for ``count`` instances of ``cost``.

        The CPU time and the operation's DRAM traffic advance concurrently;
        the step finishes when both are done, so a node whose workers
        collectively overdraw the memory pipe slows down.
        """
        self.counters.charge(cost, count)
        cpu_s = self.node.cost_model.seconds(cost, count)
        self.counters.busy_seconds += cpu_s
        mem_bytes = cost.mem_bytes * count
        if mem_bytes > 0:
            dram_done = self.node.dram.transfer(mem_bytes)
            yield AllOf([Timeout(cpu_s), dram_done])
        else:
            yield Timeout(cpu_s)

    def spin_wait(self, waitable: Any) -> Generator[Any, Any, Any]:
        """Wait for ``waitable`` while busy-polling (``pause`` spinning).

        The waited wall time is charged as core-bound cycles, which is how
        the paper's 'receiver waits on sender / sender waits on network'
        effects show up in the top-down breakdowns (Sec. 8.3.3).
        """
        started = self.sim.now
        value = yield waitable
        waited = self.sim.now - started
        if waited > 0:
            self.counters.charge_wait(waited * self.node.config.cpu.frequency_hz)
        return value


class Link:
    """A unidirectional node-to-node path through the switch."""

    def __init__(self, cluster: "Cluster", src: "Node", dst: "Node"):
        self.cluster = cluster
        self.src = src
        self.dst = dst

    def send(self, nbytes: float, overhead_s: Optional[float] = None) -> Process:
        """Move ``nbytes`` from src to dst; the process ends on delivery.

        ``overhead_s`` overrides the per-message NIC processing time
        (callers model WQE-cache pressure by inflating it).  Reliable
        semantics across partitions: while the path is cut the transfer
        holds *before* occupying the TX pipe (modelling transport-level
        retransmission) and proceeds once the partition heals, so no
        committed byte is ever lost to a cut.
        """
        return self.cluster.sim.process(
            self._send_proc(nbytes, overhead_s),
            name=f"xfer:{self.src.index}->{self.dst.index}",
        )

    def send_datagram(self, nbytes: float) -> Process:
        """Lossy best-effort control send (heartbeats, fence votes).

        Unlike :meth:`send`, a datagram posted into a cut path is simply
        dropped — the process returns ``False`` and nothing is delivered.
        This is what lets the failure detector *see* a partition while
        the data plane rides it out.

        Datagrams model the management sidecar of a real deployment:
        they share the physical path (and therefore die with it), but at
        tens of bytes they are charged propagation + switch latency
        only, not data-pipe occupancy — heartbeat cadences are orders of
        magnitude below the per-message processing budget of the
        bandwidth pipes, and letting them queue there would let the
        control plane starve the data plane it is supposed to monitor.
        """
        return self.cluster.sim.process(
            self._datagram_proc(nbytes),
            name=f"dgram:{self.src.index}->{self.dst.index}",
        )

    def _send_proc(self, nbytes: float, overhead_s: Optional[float]) -> Generator[Any, Any, float]:
        cluster = self.cluster
        while not cluster.can_reach(self.src.index, self.dst.index):
            yield cluster.heal_wait(self.src.index, self.dst.index)
        nic = self.src.config.nic
        overhead = nic.nic_processing_s if overhead_s is None else overhead_s
        yield self.src.nic_tx.transfer(nbytes, overhead_s=overhead)
        yield Timeout(
            nic.propagation_latency_s
            + self.cluster.config.switch_latency_s
            + cluster.extra_latency(self.src.index, self.dst.index)
        )
        yield self.dst.nic_rx.transfer(nbytes)
        return nbytes

    def _datagram_proc(self, nbytes: float) -> Generator[Any, Any, bool]:
        if not self.cluster.can_reach(self.src.index, self.dst.index):
            return False  # posted straight into the cut
        nic = self.src.config.nic
        yield Timeout(nic.propagation_latency_s + self.cluster.config.switch_latency_s)
        if not self.cluster.can_reach(self.src.index, self.dst.index):
            return False  # the cut landed while the datagram was in flight
        return True


class Node:
    """One server: cores, a DRAM pipe, and a NIC with TX/RX pipes."""

    def __init__(self, cluster: "Cluster", index: int, config: NodeConfig):
        self.cluster = cluster
        self.index = index
        self.config = config
        self.sim = cluster.sim
        self.cost_model = CostModel(config.cpu)
        self.cores = [Core(self, i) for i in range(config.cpu.cores)]
        self.dram = BandwidthPipe(
            self.sim, config.cpu.dram_bandwidth_bytes_per_s, name=f"node{index}.dram"
        )
        self.nic_tx = BandwidthPipe(
            self.sim, config.nic.bandwidth_bytes_per_s, name=f"node{index}.nic_tx"
        )
        self.nic_rx = BandwidthPipe(
            self.sim, config.nic.bandwidth_bytes_per_s, name=f"node{index}.nic_rx"
        )

    def core(self, index: int) -> Core:
        """Return core ``index`` on this node."""
        return self.cores[index]

    def counters(self) -> HwCounters:
        """Aggregate counters over all cores on this node."""
        total = HwCounters()
        for core in self.cores:
            total.merge(core.counters)
        return total

    def __repr__(self) -> str:
        return f"Node({self.index}, cores={len(self.cores)})"


class Cluster:
    """The simulated rack: nodes behind one non-blocking switch."""

    def __init__(self, sim: Simulator, config: Optional[ClusterConfig] = None):
        self.sim = sim
        self.config = config or ClusterConfig()
        self.nodes = [Node(self, i, self.config.node) for i in range(self.config.nodes)]
        # Partition state: ordered (src, dst) node pairs whose path is
        # currently cut.  Symmetric partitions cut both directions,
        # asymmetric ones a single direction.
        self._blocked: set[tuple[int, int]] = set()
        self._heal_signals: dict[tuple[int, int], Signal] = {}
        # Jitter state: extra per-message latency (seconds) on ordered
        # (src, dst) data-plane paths.  Datagrams are deliberately NOT
        # jittered — they model the management sidecar, and a gray
        # failure of the data plane should not destabilise the failure
        # detector (that is what makes it *gray*).
        self._extra_latency: dict[tuple[int, int], float] = {}

    # -- jitter state ------------------------------------------------------
    def set_extra_latency(self, src: int, dst: int, extra_s: float) -> None:
        """Add ``extra_s`` of one-way latency to the (src → dst) path."""
        if src == dst:
            raise ConfigError(f"a node has no link to itself: {src}")
        if extra_s < 0:
            raise ConfigError(f"extra latency must be non-negative, got {extra_s}")
        self._extra_latency[(src, dst)] = extra_s

    def clear_extra_latency(self, src: int, dst: int) -> None:
        """Remove any jitter from the (src → dst) path."""
        self._extra_latency.pop((src, dst), None)

    def extra_latency(self, src: int, dst: int) -> float:
        """Current jitter (seconds) on the (src → dst) path; 0 if none."""
        if not self._extra_latency:
            return 0.0
        return self._extra_latency.get((src, dst), 0.0)

    # -- partition state ---------------------------------------------------
    def can_reach(self, src: int, dst: int) -> bool:
        """Whether the (src → dst) path is currently uncut."""
        return (src, dst) not in self._blocked

    def block(self, src: int, dst: int) -> None:
        """Cut the (src → dst) path (network partition fault)."""
        if src == dst:
            raise ConfigError(f"cannot cut a node's path to itself: {src}")
        self._blocked.add((src, dst))

    def unblock(self, src: int, dst: int) -> None:
        """Heal the (src → dst) path and wake every held transfer."""
        self._blocked.discard((src, dst))
        signal = self._heal_signals.pop((src, dst), None)
        if signal is not None:
            signal.fire(True)

    def heal_wait(self, src: int, dst: int) -> Signal:
        """The signal that fires when the (src → dst) path next heals.

        Callers must fetch it in the same simulation step as their
        ``can_reach`` check — :meth:`unblock` pops and fires the
        registered signal, so a signal fetched while blocked is always
        the one the heal fires.
        """
        pair = (src, dst)
        signal = self._heal_signals.get(pair)
        if signal is None:
            signal = Signal(name=f"heal:{src}->{dst}")
            if pair not in self._blocked:
                signal.fire(True)  # already reachable: resume immediately
            else:
                self._heal_signals[pair] = signal
        return signal

    def __len__(self) -> int:
        return len(self.nodes)

    def node(self, index: int) -> Node:
        """Return node ``index``."""
        return self.nodes[index]

    def link(self, src: int, dst: int) -> Link:
        """Return the (src → dst) path; src and dst must differ."""
        if src == dst:
            raise ConfigError(f"link endpoints must differ, got {src}->{dst}")
        return Link(self, self.nodes[src], self.nodes[dst])

    def counters(self) -> HwCounters:
        """Aggregate counters across the whole cluster."""
        total = HwCounters()
        for node in self.nodes:
            total.merge(node.counters())
        return total
