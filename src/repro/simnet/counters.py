"""Hardware-performance-counter emulation.

The paper analyses its systems with Intel's Top-Down method (Yasin,
ISPASS'14): every CPU cycle is attributed to one of five categories —
*retiring* (useful work), *front-end bound*, *bad speculation*,
*memory bound*, and *core bound*.  Real runs read these from PMU counters;
our simulation *accounts* them instead: every operation an engine executes
charges a cycle vector, and waiting on an empty RDMA channel charges
core-bound cycles (the ``pause``-instruction spinning the paper describes
in Sec. 8.3.3).

:class:`HwCounters` is the per-thread accumulator; it also tracks
instructions, per-level cache misses, DRAM traffic, and processed records,
from which every metric of Table 1 (IPC, instructions/record,
cycles/record, misses/record, aggregate memory bandwidth) is derived.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum


class CycleCategory(str, Enum):
    """Top-down cycle categories (Yasin, ISPASS'14)."""

    RETIRING = "retiring"
    FRONTEND = "frontend"
    BAD_SPEC = "bad_spec"
    MEMORY = "memory"
    CORE = "core"


_CATEGORIES = tuple(CycleCategory)


@dataclass
class HwCounters:
    """Accumulated counters for one hardware thread (or an aggregate)."""

    instructions: float = 0.0
    cycles: dict[CycleCategory, float] = field(
        default_factory=lambda: {c: 0.0 for c in _CATEGORIES}
    )
    l1_misses: float = 0.0
    l2_misses: float = 0.0
    llc_misses: float = 0.0
    mem_bytes: float = 0.0
    records: int = 0
    network_bytes: float = 0.0
    busy_seconds: float = 0.0
    # Spin-wait (pause) cycles; also included in cycles[CORE].
    wait_cycles: float = 0.0
    # RNR-NAK-style retry accounting (fault-injected runs): transfers
    # re-posted after a timeout, the bytes they re-sent (included in
    # network_bytes), and receiver-not-ready NAK events observed.
    retransmits: int = 0
    retransmitted_bytes: float = 0.0
    rnr_nacks: int = 0

    # -- accumulation -----------------------------------------------------
    def charge(self, cost: "OpCostLike", count: float = 1.0) -> None:
        """Accumulate ``count`` repetitions of an operation's cost."""
        self.instructions += cost.instructions * count
        cycles = self.cycles
        cycles[CycleCategory.RETIRING] += cost.retiring * count
        cycles[CycleCategory.FRONTEND] += cost.frontend * count
        cycles[CycleCategory.BAD_SPEC] += cost.bad_spec * count
        cycles[CycleCategory.MEMORY] += cost.memory * count
        cycles[CycleCategory.CORE] += cost.core * count
        self.l1_misses += cost.l1_misses * count
        self.l2_misses += cost.l2_misses * count
        self.llc_misses += cost.llc_misses * count
        self.mem_bytes += cost.mem_bytes * count

    def charge_wait(self, cycles: float) -> None:
        """Charge spin-wait (``pause``) cycles; they are core-bound."""
        self.cycles[CycleCategory.CORE] += cycles
        self.wait_cycles += cycles

    def count_records(self, n: int) -> None:
        """Record that ``n`` stream records were fully processed here."""
        self.records += n

    def count_network(self, nbytes: float) -> None:
        """Record bytes this thread pushed onto (or pulled off) the NIC."""
        self.network_bytes += nbytes

    def count_retransmit(self, nbytes: float) -> None:
        """Record one RNR-NAK-style retry: a transfer re-posted after a
        timeout, re-sending ``nbytes`` over the wire."""
        self.retransmits += 1
        self.retransmitted_bytes += nbytes
        self.rnr_nacks += 1

    def merge(self, other: "HwCounters") -> None:
        """Fold another counter set into this one (for aggregation)."""
        self.instructions += other.instructions
        for category in _CATEGORIES:
            self.cycles[category] += other.cycles[category]
        self.l1_misses += other.l1_misses
        self.l2_misses += other.l2_misses
        self.llc_misses += other.llc_misses
        self.mem_bytes += other.mem_bytes
        self.records += other.records
        self.network_bytes += other.network_bytes
        self.busy_seconds += other.busy_seconds
        self.wait_cycles += other.wait_cycles
        self.retransmits += other.retransmits
        self.retransmitted_bytes += other.retransmitted_bytes
        self.rnr_nacks += other.rnr_nacks

    def copy(self) -> "HwCounters":
        """Return an independent copy of this counter set."""
        clone = HwCounters()
        clone.merge(self)
        return clone

    # -- derived metrics ----------------------------------------------------
    @property
    def total_cycles(self) -> float:
        """All accounted cycles across the five top-down categories."""
        return sum(self.cycles.values())

    @property
    def ipc(self) -> float:
        """Instructions per cycle (0 if nothing ran)."""
        total = self.total_cycles
        return self.instructions / total if total else 0.0

    def per_record(self, value: float) -> float:
        """Normalise ``value`` by the number of processed records."""
        return value / self.records if self.records else 0.0

    @property
    def instructions_per_record(self) -> float:
        return self.per_record(self.instructions)

    @property
    def cycles_per_record(self) -> float:
        return self.per_record(self.total_cycles)

    @property
    def l1_misses_per_record(self) -> float:
        return self.per_record(self.l1_misses)

    @property
    def l2_misses_per_record(self) -> float:
        return self.per_record(self.l2_misses)

    @property
    def llc_misses_per_record(self) -> float:
        return self.per_record(self.llc_misses)

    @property
    def busy_cycles(self) -> float:
        """Cycles excluding spin-wait (``pause``) time — CPU doing work."""
        return self.total_cycles - self.wait_cycles

    @property
    def busy_ipc(self) -> float:
        """IPC over busy cycles only (what a sampling profiler on a
        non-idle thread would report)."""
        busy = self.busy_cycles
        return self.instructions / busy if busy else 0.0

    @property
    def busy_cycles_per_record(self) -> float:
        return self.per_record(self.busy_cycles)

    def breakdown(self, exclude_wait: bool = False) -> dict[CycleCategory, float]:
        """Return each category's share of total cycles (sums to 1).

        ``exclude_wait=True`` removes spin-wait cycles from the core
        category first, giving the busy-only breakdown.
        """
        cycles = dict(self.cycles)
        if exclude_wait:
            cycles[CycleCategory.CORE] = max(
                0.0, cycles[CycleCategory.CORE] - self.wait_cycles
            )
        total = sum(cycles.values())
        if total == 0:
            return {category: 0.0 for category in _CATEGORIES}
        return {category: cycles[category] / total for category in _CATEGORIES}

    def memory_bandwidth(self, elapsed_s: float) -> float:
        """Average DRAM traffic rate over ``elapsed_s`` seconds."""
        return self.mem_bytes / elapsed_s if elapsed_s > 0 else 0.0


class OpCostLike:
    """Structural protocol for anything :meth:`HwCounters.charge` accepts."""

    instructions: float
    retiring: float
    frontend: float
    bad_spec: float
    memory: float
    core: float
    l1_misses: float
    l2_misses: float
    llc_misses: float
    mem_bytes: float
