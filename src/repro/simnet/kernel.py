"""A deterministic discrete-event simulation kernel.

Processes are Python generators that ``yield`` *waitables*:

* :class:`Timeout` — resume after a simulated delay;
* :class:`Signal` — resume when the signal fires (carries a value);
* :class:`Process` — resume when another process finishes (receives its
  return value, or re-raises its exception);
* :class:`AllOf` — resume when every child waitable has fired.

Resources (:class:`Resource`) grant FIFO access to a shared facility (a NIC
DMA engine, a memory channel); stores (:class:`Store`) are unbounded FIFO
queues with blocking ``get``.

Determinism: events scheduled for the same timestamp fire in scheduling
order (a monotonically increasing sequence number breaks ties), so a run is
a pure function of the initial state.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Any, Callable, Generator, Iterable, Optional

from repro.common.errors import SimulationError

ProcessGen = Generator[Any, Any, Any]


class Waitable:
    """Anything a process can yield.  Subclasses implement ``_subscribe``."""

    __slots__ = ()

    def _subscribe(self, sim: "Simulator", callback: Callable[[Any, Optional[BaseException]], None]) -> None:
        raise NotImplementedError


class Timeout(Waitable):
    """Resume the process after ``delay`` simulated seconds."""

    __slots__ = ("delay", "value")

    def __init__(self, delay: float, value: Any = None):
        if delay < 0:
            raise SimulationError(f"cannot wait a negative delay: {delay}")
        self.delay = float(delay)
        self.value = value

    def _subscribe(self, sim: "Simulator", callback: Callable[[Any, Optional[BaseException]], None]) -> None:
        sim.call_in(self.delay, callback, self.value, None)

    def __repr__(self) -> str:
        return f"Timeout({self.delay!r})"


class Signal(Waitable):
    """A one-shot event.  ``fire(value)`` wakes every waiter with ``value``.

    Firing twice raises; waiting on an already-fired signal resumes
    immediately with the stored value.  ``fail(exc)`` wakes waiters with an
    exception instead.
    """

    __slots__ = ("_fired", "_value", "_exc", "_waiters", "name")

    def __init__(self, name: str = ""):
        self.name = name
        self._fired = False
        self._value: Any = None
        self._exc: Optional[BaseException] = None
        self._waiters: list[Callable[[Any, Optional[BaseException]], None]] = []

    @property
    def fired(self) -> bool:
        """Whether the signal has already fired (or failed)."""
        return self._fired

    def fire(self, value: Any = None) -> None:
        """Fire the signal, waking all current and future waiters."""
        if self._fired:
            raise SimulationError(f"signal {self.name!r} fired twice")
        self._fired = True
        self._value = value
        waiters, self._waiters = self._waiters, []
        for callback in waiters:
            callback(value, None)

    def fail(self, exc: BaseException) -> None:
        """Fail the signal: waiters receive ``exc`` instead of a value."""
        if self._fired:
            raise SimulationError(f"signal {self.name!r} fired twice")
        self._fired = True
        self._exc = exc
        waiters, self._waiters = self._waiters, []
        for callback in waiters:
            callback(None, exc)

    def _subscribe(self, sim: "Simulator", callback: Callable[[Any, Optional[BaseException]], None]) -> None:
        if self._fired:
            sim.call_in(0.0, callback, self._value, self._exc)
        else:
            self._waiters.append(callback)

    def __repr__(self) -> str:
        state = "fired" if self._fired else "pending"
        return f"Signal({self.name!r}, {state})"


class AllOf(Waitable):
    """Fires when all child waitables have fired; value is their value list."""

    __slots__ = ("children",)

    def __init__(self, children: Iterable[Waitable]):
        self.children = list(children)

    def _subscribe(self, sim: "Simulator", callback: Callable[[Any, Optional[BaseException]], None]) -> None:
        pending = len(self.children)
        results: list[Any] = [None] * pending
        if pending == 0:
            sim.call_in(0.0, callback, [], None)
            return
        done = {"count": 0, "failed": False}

        def make_child_callback(index: int) -> Callable[[Any, Optional[BaseException]], None]:
            def child_done(value: Any, exc: Optional[BaseException]) -> None:
                if done["failed"]:
                    return
                if exc is not None:
                    done["failed"] = True
                    callback(None, exc)
                    return
                results[index] = value
                done["count"] += 1
                if done["count"] == len(self.children):
                    callback(results, None)

            return child_done

        for i, child in enumerate(self.children):
            child._subscribe(sim, make_child_callback(i))


class FirstOf(Waitable):
    """Fires when the *first* child waitable fires; later children are ignored.

    The value is ``(index, value)`` of the winning child.  A child that
    *fails* first propagates its exception instead.  This is the race
    primitive behind every timeout-guarded wait (e.g. "completion ACK or
    retransmission timer, whichever comes first"); children that lose the
    race still fire into a no-op callback, so one-shot signals remain
    usable by other waiters.
    """

    __slots__ = ("children",)

    def __init__(self, children: Iterable[Waitable]):
        self.children = list(children)
        if not self.children:
            raise SimulationError("FirstOf needs at least one child")

    def _subscribe(self, sim: "Simulator", callback: Callable[[Any, Optional[BaseException]], None]) -> None:
        done = {"fired": False}

        def make_child_callback(index: int) -> Callable[[Any, Optional[BaseException]], None]:
            def child_done(value: Any, exc: Optional[BaseException]) -> None:
                if done["fired"]:
                    return
                done["fired"] = True
                if exc is not None:
                    callback(None, exc)
                else:
                    callback((index, value), None)

            return child_done

        for i, child in enumerate(self.children):
            child._subscribe(sim, make_child_callback(i))


class Process(Waitable):
    """A running simulation process wrapping a generator.

    The generator's ``return`` value becomes :attr:`value`; an uncaught
    exception is stored and re-raised in any process that waits on this one
    (and by :meth:`Simulator.run` if nobody does).
    """

    __slots__ = ("sim", "gen", "name", "_done", "_failure_observed")

    def __init__(self, sim: "Simulator", gen: ProcessGen, name: str = ""):
        if not hasattr(gen, "send"):
            raise SimulationError(
                f"process body must be a generator, got {type(gen).__name__}; "
                "did you forget a yield?"
            )
        self.sim = sim
        self.gen = gen
        self.name = name or getattr(gen, "__name__", "process")
        self._done = Signal(name=f"{self.name}.done")
        self._failure_observed = False
        sim.call_in(0.0, self._step, None, None)

    # -- public ----------------------------------------------------------
    @property
    def finished(self) -> bool:
        """Whether the process has run to completion (or raised)."""
        return self._done.fired

    @property
    def value(self) -> Any:
        """Return value of the process; raises if it failed or is running."""
        if not self._done.fired:
            raise SimulationError(f"process {self.name!r} still running")
        if self._done._exc is not None:
            raise self._done._exc
        return self._done._value

    def _subscribe(self, sim: "Simulator", callback: Callable[[Any, Optional[BaseException]], None]) -> None:
        self._failure_observed = True
        self._done._subscribe(sim, callback)

    # -- stepping ----------------------------------------------------------
    def _step(self, value: Any, exc: Optional[BaseException]) -> None:
        try:
            if exc is not None:
                item = self.gen.throw(exc)
            else:
                item = self.gen.send(value)
        except StopIteration as stop:
            self._done.fire(stop.value)
            return
        except BaseException as failure:  # noqa: BLE001 - deliberate capture
            self.sim._note_failure(self, failure)
            self._done.fail(failure)
            return
        if not isinstance(item, Waitable):
            self._step(None, SimulationError(
                f"process {self.name!r} yielded {item!r}, expected a Waitable"
            ))
            return
        item._subscribe(self.sim, self._step)

    def __repr__(self) -> str:
        state = "finished" if self.finished else "running"
        return f"Process({self.name!r}, {state})"


class Resource:
    """A FIFO shared resource with integer capacity (default 1).

    Usage inside a process::

        grant = yield resource.acquire()
        ...   # hold the resource
        resource.release()

    ``acquire`` returns a :class:`Signal` that fires when the resource is
    granted.  Releases wake waiters in FIFO order, which keeps the kernel
    deterministic.
    """

    __slots__ = ("sim", "capacity", "name", "_in_use", "_queue")

    def __init__(self, sim: "Simulator", capacity: int = 1, name: str = ""):
        if capacity <= 0:
            raise SimulationError(f"resource capacity must be positive: {capacity}")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self._in_use = 0
        self._queue: deque[Signal] = deque()

    @property
    def in_use(self) -> int:
        """Number of currently-held units."""
        return self._in_use

    @property
    def queued(self) -> int:
        """Number of processes waiting for a grant."""
        return len(self._queue)

    def acquire(self) -> Signal:
        """Request one unit; returns a signal that fires on grant."""
        grant = Signal(name=f"{self.name}.grant")
        if self._in_use < self.capacity:
            self._in_use += 1
            grant.fire(self)
        else:
            self._queue.append(grant)
        return grant

    def release(self) -> None:
        """Return one unit, waking the next waiter if any."""
        if self._in_use <= 0:
            raise SimulationError(f"release of un-acquired resource {self.name!r}")
        if self._queue:
            grant = self._queue.popleft()
            grant.fire(self)
        else:
            self._in_use -= 1


class Store:
    """An unbounded FIFO queue with blocking ``get`` and immediate ``put``."""

    __slots__ = ("sim", "name", "_items", "_getters")

    def __init__(self, sim: "Simulator", name: str = ""):
        self.sim = sim
        self.name = name
        self._items: deque[Any] = deque()
        self._getters: deque[Signal] = deque()

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> None:
        """Append ``item``; hands it straight to a blocked getter if any."""
        if self._getters:
            getter = self._getters.popleft()
            getter.fire(item)
        else:
            self._items.append(item)

    def get(self) -> Signal:
        """Return a signal that fires with the next item (FIFO)."""
        ticket = Signal(name=f"{self.name}.get")
        if self._items:
            ticket.fire(self._items.popleft())
        else:
            self._getters.append(ticket)
        return ticket

    def try_get(self) -> tuple[bool, Any]:
        """Non-blocking get: ``(True, item)`` or ``(False, None)``."""
        if self._items:
            return True, self._items.popleft()
        return False, None


class Simulator:
    """The event loop: a time-ordered heap of callbacks.

    Two scheduling structures back the loop:

    * a binary **heap** of ``(when, seq, callback, args)`` entries for
      delayed events (no per-event closure allocation);
    * a FIFO **ready deque** for zero-delay events.  Since simulated time
      never goes backwards and sequence numbers grow monotonically, the
      deque is always sorted by ``(when, seq)``, so the run loop merges
      heap and deque by comparing their heads — zero-delay events (signal
      wake-ups, process launches, store hand-offs) skip the ``O(log n)``
      heap entirely while firing in exactly the order the plain heap
      would have produced.
    """

    def __init__(self):
        self._now = 0.0
        self._heap: list[tuple[float, int, Callable[..., None], tuple]] = []
        self._ready: deque[tuple[float, int, Callable[..., None], tuple]] = deque()
        self._seq = 0
        self._unobserved_failures: list[tuple[Process, BaseException]] = []
        #: Optional repro.simnet.trace.Tracer; instrumented components
        #: emit events here when attached.
        self.tracer = None
        #: Optional repro.faults.injector.FaultInjector; when attached,
        #: the RDMA/channel/executor layers consult it for deterministic
        #: fault decisions and switch to their fault-tolerant code paths.
        self.faults = None
        #: Optional repro.sanitizer.invariants.Sanitizer; when attached,
        #: instrumented components report protocol events for runtime
        #: invariant checking.  Off (None) by default: every hook site
        #: pays a single attribute test.
        self.sanitize = None

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def scheduled_events(self) -> int:
        """Total events scheduled so far (the wall-clock benches' event count)."""
        return self._seq

    # -- scheduling --------------------------------------------------------
    def call_in(self, delay: float, callback: Callable[..., None], *args: Any) -> None:
        """Schedule ``callback(*args)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past: delay={delay}")
        self._seq += 1
        if delay == 0.0:
            self._ready.append((self._now, self._seq, callback, args))
        else:
            heapq.heappush(self._heap, (self._now + delay, self._seq, callback, args))

    def process(self, gen: ProcessGen, name: str = "") -> Process:
        """Launch a generator as a simulation process."""
        return Process(self, gen, name=name)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Convenience constructor mirroring SimPy's ``env.timeout``."""
        return Timeout(delay, value)

    def signal(self, name: str = "") -> Signal:
        """Create a fresh one-shot signal."""
        return Signal(name=name)

    def resource(self, capacity: int = 1, name: str = "") -> Resource:
        """Create a FIFO resource bound to this simulator."""
        return Resource(self, capacity=capacity, name=name)

    def store(self, name: str = "") -> Store:
        """Create a FIFO store bound to this simulator."""
        return Store(self, name=name)

    # -- running -----------------------------------------------------------
    def run(self, until: Optional[float] = None) -> float:
        """Run events until the queues drain or simulated time passes ``until``.

        Returns the final simulated time.  Re-raises the first exception of
        any process that failed without being waited on, so errors never
        pass silently.
        """
        heap = self._heap
        ready = self._ready
        heappop = heapq.heappop
        san = self.sanitize
        while heap or ready:
            if ready and (not heap or ready[0] <= heap[0]):
                when, _seq, callback, args = ready[0]
                if until is not None and when > until:
                    self._now = until
                    break
                ready.popleft()
            else:
                when, _seq, callback, args = heap[0]
                if until is not None and when > until:
                    self._now = until
                    break
                heappop(heap)
            if san is not None:
                san.note_event(when, self._now)
            self._now = when
            callback(*args)
            if self._unobserved_failures:
                self._raise_unobserved()
        if self._unobserved_failures:
            self._raise_unobserved()
        return self._now

    def run_until_process(self, proc: Process, limit: Optional[float] = None) -> Any:
        """Run until ``proc`` finishes; return its value (or re-raise).

        Like :meth:`run`, re-raises the first exception of any *other*
        process that failed without being waited on — the awaited process
        itself is observed here (its failure surfaces through ``value``).
        """
        proc._failure_observed = True
        heap = self._heap
        ready = self._ready
        heappop = heapq.heappop
        san = self.sanitize
        while not proc.finished:
            if not heap and not ready:
                raise SimulationError(
                    f"deadlock: no pending events but process {proc.name!r} unfinished"
                )
            if ready and (not heap or ready[0] <= heap[0]):
                when, _seq, callback, args = ready.popleft()
            else:
                when, _seq, callback, args = heappop(heap)
            if limit is not None and when > limit:
                raise SimulationError(
                    f"process {proc.name!r} exceeded time limit {limit}"
                )
            if san is not None:
                san.note_event(when, self._now)
            self._now = when
            callback(*args)
            if self._unobserved_failures:
                self._raise_unobserved()
        return proc.value

    def _note_failure(self, proc: Process, exc: BaseException) -> None:
        if not proc._failure_observed:
            self._unobserved_failures.append((proc, exc))

    def _raise_unobserved(self) -> None:
        for proc, exc in self._unobserved_failures:
            if proc._failure_observed:
                continue
            self._unobserved_failures = []
            raise exc
        self._unobserved_failures = []
