"""A deterministic discrete-event simulation kernel.

Processes are Python generators that ``yield`` *waitables*:

* :class:`Timeout` — resume after a simulated delay;
* :class:`Signal` — resume when the signal fires (carries a value);
* :class:`Process` — resume when another process finishes (receives its
  return value, or re-raises its exception);
* :class:`AllOf` — resume when every child waitable has fired.

Resources (:class:`Resource`) grant FIFO access to a shared facility (a NIC
DMA engine, a memory channel); stores (:class:`Store`) are unbounded FIFO
queues with blocking ``get``.

Determinism: events scheduled for the same timestamp fire in scheduling
order (a monotonically increasing sequence number breaks ties), so a run is
a pure function of the initial state.

Scheduling is backed by a *calendar queue* rather than a single binary
heap: events for the same timestamp live together in one bucket, buckets
are ordered by a small heap of **distinct** timestamps, and the earliest
bucket is cached front-and-centre so the common case — one or a handful of
outstanding timers — never touches the heap or the bucket dict at all.
See :class:`Simulator` for the full structure, and ``docs/performance.md``
for the design rationale and measured numbers.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Any, Callable, Generator, Iterable, Optional

from repro.common.errors import SimulationError

ProcessGen = Generator[Any, Any, Any]

# A scheduled event is a 5-slot entry ``[when, seq, proc, value_or_cb,
# exc_or_args]``:
#
# * process resumptions carry the Process in slot 2 (value in 3, pending
#   exception in 4) and are dispatched by stepping the generator directly;
# * plain callbacks carry None in slot 2, the callable in 3 and its args
#   tuple in 4.
#
# Zero-delay events go on the ready deque as immutable tuples; timed
# events go in calendar buckets as *lists* so a cancellation token can be
# honoured by removing the entry from its bucket before it ever fires.


class Waitable:
    """Anything a process can yield.  Subclasses implement ``_subscribe``."""

    __slots__ = ()

    def _subscribe(self, sim: "Simulator", callback: Callable[[Any, Optional[BaseException]], None]) -> None:
        raise NotImplementedError

    def _subscribe_cancellable(
        self, sim: "Simulator", callback: Callable[[Any, Optional[BaseException]], None]
    ) -> Optional["_CancelHandle"]:
        """Subscribe and return a cancellation handle, or None.

        Racers (:class:`FirstOf`) use this so losing children can be
        dropped from the queue instead of lingering until they fire into
        a no-op.  The default is a plain subscription with no handle —
        cancellation is an optimisation, never a semantic requirement.
        """
        self._subscribe(sim, callback)
        return None


class _CancelHandle:
    """Base for cancellation tokens.  ``cancel()`` returns True iff the
    subscription was still live and has now been dropped."""

    __slots__ = ()

    def cancel(self) -> bool:
        raise NotImplementedError


class _TimerHandle(_CancelHandle):
    """Cancellation token for a timed calendar-queue entry.

    Cancelling removes the entry from its bucket, so a dead timer (an RTO
    that lost its race to the ACK) stops occupying the queue immediately
    instead of surviving to its deadline as dead weight.  Cancelling an
    entry that already fired — or that sits in a bucket currently being
    dispatched — is a no-op returning False; the subscriber's own guard
    (e.g. FirstOf's ``done`` flag) keeps such late fires harmless.
    """

    __slots__ = ("_sim", "_entry")

    def __init__(self, sim: "Simulator", entry: list):
        self._sim = sim
        self._entry = entry

    def cancel(self) -> bool:
        entry = self._entry
        if entry is None:
            return False
        self._entry = None
        sim = self._sim
        when = entry[0]
        if when == sim._head_when:
            bucket = sim._head
            try:
                bucket.remove(entry)
            except ValueError:
                return False
            sim.cancelled_events += 1
            if not bucket:
                sim._refill_head()
            return True
        bucket = sim._buckets.get(when)
        if bucket is None:
            return False
        try:
            bucket.remove(entry)
        except ValueError:
            return False
        sim.cancelled_events += 1
        if not bucket:
            # The timestamp stays in the time-heap as a stale key; the
            # head refill skips timestamps whose bucket is gone.
            del sim._buckets[when]
        return True


class _WaiterHandle(_CancelHandle):
    """Cancellation token for a signal subscription: drops the callback
    from the waiter list so a lost race stops holding a reference."""

    __slots__ = ("_waiters", "_callback")

    def __init__(self, waiters: list, callback: Callable):
        self._waiters = waiters
        self._callback = callback

    def cancel(self) -> bool:
        waiters = self._waiters
        if waiters is None:
            return False
        self._waiters = None
        callback = self._callback
        self._callback = None
        for i, cb in enumerate(waiters):
            if cb is callback:
                del waiters[i]
                return True
        return False


class Timeout(Waitable):
    """Resume the process after ``delay`` simulated seconds."""

    __slots__ = ("delay", "value")

    def __init__(self, delay: float, value: Any = None):
        if delay < 0:
            raise SimulationError(f"cannot wait a negative delay: {delay}")
        self.delay = float(delay)
        self.value = value

    def _subscribe(self, sim: "Simulator", callback: Callable[[Any, Optional[BaseException]], None]) -> None:
        seq = sim._seq = sim._seq + 1
        if self.delay == 0.0:
            sim._ready.append((sim._now, seq, None, callback, (self.value, None)))
        else:
            when = sim._now + self.delay
            sim._push_timed(when, [when, seq, None, callback, (self.value, None)])

    def _subscribe_cancellable(
        self, sim: "Simulator", callback: Callable[[Any, Optional[BaseException]], None]
    ) -> Optional[_CancelHandle]:
        seq = sim._seq = sim._seq + 1
        if self.delay == 0.0:
            # Ready-deque entries are immutable tuples and fire within the
            # current instant anyway; not worth a token.
            sim._ready.append((sim._now, seq, None, callback, (self.value, None)))
            return None
        when = sim._now + self.delay
        entry = [when, seq, None, callback, (self.value, None)]
        sim._push_timed(when, entry)
        return _TimerHandle(sim, entry)

    def __repr__(self) -> str:
        return f"Timeout({self.delay!r})"


class Signal(Waitable):
    """A one-shot event.  ``fire(value)`` wakes every waiter with ``value``.

    Firing twice raises; waiting on an already-fired signal resumes
    immediately with the stored value.  ``fail(exc)`` wakes waiters with an
    exception instead.
    """

    __slots__ = ("_fired", "_value", "_exc", "_waiters", "name")

    def __init__(self, name: str = ""):
        self.name = name
        self._fired = False
        self._value: Any = None
        self._exc: Optional[BaseException] = None
        self._waiters: list[Callable[[Any, Optional[BaseException]], None]] = []

    @property
    def fired(self) -> bool:
        """Whether the signal has already fired (or failed)."""
        return self._fired

    def fire(self, value: Any = None) -> None:
        """Fire the signal, waking all current and future waiters."""
        if self._fired:
            raise SimulationError(f"signal {self.name!r} fired twice")
        self._fired = True
        self._value = value
        waiters, self._waiters = self._waiters, []
        for callback in waiters:
            callback(value, None)

    def fail(self, exc: BaseException) -> None:
        """Fail the signal: waiters receive ``exc`` instead of a value."""
        if self._fired:
            raise SimulationError(f"signal {self.name!r} fired twice")
        self._fired = True
        self._exc = exc
        waiters, self._waiters = self._waiters, []
        for callback in waiters:
            callback(None, exc)

    def _subscribe(self, sim: "Simulator", callback: Callable[[Any, Optional[BaseException]], None]) -> None:
        if self._fired:
            sim.call_in(0.0, callback, self._value, self._exc)
        else:
            self._waiters.append(callback)

    def _subscribe_cancellable(
        self, sim: "Simulator", callback: Callable[[Any, Optional[BaseException]], None]
    ) -> Optional[_CancelHandle]:
        if self._fired:
            sim.call_in(0.0, callback, self._value, self._exc)
            return None
        self._waiters.append(callback)
        return _WaiterHandle(self._waiters, callback)

    def __repr__(self) -> str:
        state = "fired" if self._fired else "pending"
        return f"Signal({self.name!r}, {state})"


class AllOf(Waitable):
    """Fires when all child waitables have fired; value is their value list."""

    __slots__ = ("children",)

    def __init__(self, children: Iterable[Waitable]):
        self.children = list(children)

    def _subscribe(self, sim: "Simulator", callback: Callable[[Any, Optional[BaseException]], None]) -> None:
        pending = len(self.children)
        results: list[Any] = [None] * pending
        if pending == 0:
            sim.call_in(0.0, callback, [], None)
            return
        done = {"count": 0, "failed": False}

        def make_child_callback(index: int) -> Callable[[Any, Optional[BaseException]], None]:
            def child_done(value: Any, exc: Optional[BaseException]) -> None:
                if done["failed"]:
                    return
                if exc is not None:
                    done["failed"] = True
                    callback(None, exc)
                    return
                results[index] = value
                done["count"] += 1
                if done["count"] == len(self.children):
                    callback(results, None)

            return child_done

        for i, child in enumerate(self.children):
            child._subscribe(sim, make_child_callback(i))


class FirstOf(Waitable):
    """Fires when the *first* child waitable fires; later children are ignored.

    The value is ``(index, value)`` of the winning child.  A child that
    *fails* first propagates its exception instead.  This is the race
    primitive behind every timeout-guarded wait (e.g. "completion ACK or
    retransmission timer, whichever comes first").  When the winner fires,
    the losers' subscriptions are *cancelled*: a losing timer is removed
    from the event queue instead of surviving to its deadline as dead
    weight, and a losing signal subscription is dropped from the waiter
    list — so one-shot signals remain usable by other waiters, and
    RTO-heavy runs stop accumulating doomed timers.
    """

    __slots__ = ("children",)

    def __init__(self, children: Iterable[Waitable]):
        self.children = list(children)
        if not self.children:
            raise SimulationError("FirstOf needs at least one child")

    def _subscribe(self, sim: "Simulator", callback: Callable[[Any, Optional[BaseException]], None]) -> None:
        done = {"fired": False}
        handles: list[Optional[_CancelHandle]] = [None] * len(self.children)

        def make_child_callback(index: int) -> Callable[[Any, Optional[BaseException]], None]:
            def child_done(value: Any, exc: Optional[BaseException]) -> None:
                if done["fired"]:
                    return
                done["fired"] = True
                for i, handle in enumerate(handles):
                    if handle is not None and i != index:
                        handle.cancel()
                if exc is not None:
                    callback(None, exc)
                else:
                    callback((index, value), None)

            return child_done

        for i, child in enumerate(self.children):
            handles[i] = child._subscribe_cancellable(sim, make_child_callback(i))


class Process(Waitable):
    """A running simulation process wrapping a generator.

    The generator's ``return`` value becomes :attr:`value`; an uncaught
    exception is stored and re-raised in any process that waits on this one
    (and by :meth:`Simulator.run` if nobody does).
    """

    __slots__ = ("sim", "gen", "name", "_done", "_failure_observed")

    def __init__(self, sim: "Simulator", gen: ProcessGen, name: str = ""):
        if not hasattr(gen, "send"):
            raise SimulationError(
                f"process body must be a generator, got {type(gen).__name__}; "
                "did you forget a yield?"
            )
        self.sim = sim
        self.gen = gen
        self.name = name or getattr(gen, "__name__", "process")
        self._done = Signal(name=f"{self.name}.done")
        self._failure_observed = False
        seq = sim._seq = sim._seq + 1
        sim._ready.append((sim._now, seq, self, None, None))

    # -- public ----------------------------------------------------------
    @property
    def finished(self) -> bool:
        """Whether the process has run to completion (or raised)."""
        return self._done.fired

    @property
    def value(self) -> Any:
        """Return value of the process; raises if it failed or is running."""
        if not self._done.fired:
            raise SimulationError(f"process {self.name!r} still running")
        if self._done._exc is not None:
            raise self._done._exc
        return self._done._value

    def _subscribe(self, sim: "Simulator", callback: Callable[[Any, Optional[BaseException]], None]) -> None:
        self._failure_observed = True
        self._done._subscribe(sim, callback)

    def _subscribe_cancellable(
        self, sim: "Simulator", callback: Callable[[Any, Optional[BaseException]], None]
    ) -> Optional[_CancelHandle]:
        self._failure_observed = True
        return self._done._subscribe_cancellable(sim, callback)

    # -- stepping ----------------------------------------------------------
    def _step(self, value: Any, exc: Optional[BaseException]) -> None:
        try:
            if exc is not None:
                item = self.gen.throw(exc)
            else:
                item = self.gen.send(value)
        except StopIteration as stop:
            self._done.fire(stop.value)
            return
        except BaseException as failure:  # noqa: BLE001 - deliberate capture
            self.sim._note_failure(self, failure)
            self._done.fail(failure)
            return
        if type(item) is Timeout:
            # The overwhelmingly common yield: schedule the resumption as a
            # process entry directly, skipping the generic subscribe path.
            sim = self.sim
            seq = sim._seq = sim._seq + 1
            delay = item.delay
            if delay == 0.0:
                sim._ready.append((sim._now, seq, self, item.value, None))
            else:
                when = sim._now + delay
                sim._push_timed(when, [when, seq, self, item.value, None])
            return
        if not isinstance(item, Waitable):
            self._step(None, SimulationError(
                f"process {self.name!r} yielded {item!r}, expected a Waitable"
            ))
            return
        item._subscribe(self.sim, self._step)

    def __repr__(self) -> str:
        state = "finished" if self.finished else "running"
        return f"Process({self.name!r}, {state})"


class Resource:
    """A FIFO shared resource with integer capacity (default 1).

    Usage inside a process::

        grant = yield resource.acquire()
        ...   # hold the resource
        resource.release()

    ``acquire`` returns a :class:`Signal` that fires when the resource is
    granted.  Releases wake waiters in FIFO order, which keeps the kernel
    deterministic.
    """

    __slots__ = ("sim", "capacity", "name", "_in_use", "_queue")

    def __init__(self, sim: "Simulator", capacity: int = 1, name: str = ""):
        if capacity <= 0:
            raise SimulationError(f"resource capacity must be positive: {capacity}")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self._in_use = 0
        self._queue: deque[Signal] = deque()

    @property
    def in_use(self) -> int:
        """Number of currently-held units."""
        return self._in_use

    @property
    def queued(self) -> int:
        """Number of processes waiting for a grant."""
        return len(self._queue)

    def acquire(self) -> Signal:
        """Request one unit; returns a signal that fires on grant."""
        grant = Signal(name=f"{self.name}.grant")
        if self._in_use < self.capacity:
            self._in_use += 1
            grant.fire(self)
        else:
            self._queue.append(grant)
        return grant

    def release(self) -> None:
        """Return one unit, waking the next waiter if any."""
        if self._in_use <= 0:
            raise SimulationError(f"release of un-acquired resource {self.name!r}")
        if self._queue:
            grant = self._queue.popleft()
            grant.fire(self)
        else:
            self._in_use -= 1


class Store:
    """An unbounded FIFO queue with blocking ``get`` and immediate ``put``."""

    __slots__ = ("sim", "name", "_items", "_getters")

    def __init__(self, sim: "Simulator", name: str = ""):
        self.sim = sim
        self.name = name
        self._items: deque[Any] = deque()
        self._getters: deque[Signal] = deque()

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> None:
        """Append ``item``; hands it straight to a blocked getter if any."""
        if self._getters:
            getter = self._getters.popleft()
            getter.fire(item)
        else:
            self._items.append(item)

    def get(self) -> Signal:
        """Return a signal that fires with the next item (FIFO)."""
        ticket = Signal(name=f"{self.name}.get")
        if self._items:
            ticket.fire(self._items.popleft())
        else:
            self._getters.append(ticket)
        return ticket

    def try_get(self) -> tuple[bool, Any]:
        """Non-blocking get: ``(True, item)`` or ``(False, None)``."""
        if self._items:
            return True, self._items.popleft()
        return False, None


class Simulator:
    """The event loop: a calendar queue of timestamp buckets plus a ready deque.

    Three scheduling structures back the loop:

    * a FIFO **ready deque** for zero-delay events (signal wake-ups,
      process launches, store hand-offs).  Since simulated time never goes
      backwards and sequence numbers grow monotonically, the deque is
      always sorted by ``(when, seq)``;
    * a **front cache** — ``_head`` is the bucket (list of entries, in seq
      order) for the earliest pending timestamp ``_head_when``.  With one
      or a few outstanding timers, scheduling and dispatch touch only this
      list: no heap push/pop, no dict lookups;
    * the **calendar overflow** — ``_buckets`` maps each further distinct
      timestamp to its entry list and ``_times`` is a heap of those
      timestamps.  Every overflow timestamp is strictly later than
      ``_head_when``, and each distinct timestamp appears in ``_times`` at
      most once per residency (cancellation can strand a stale key, which
      the head refill skips).

    The run loop merges the ready deque against the head bucket by
    ``(when, seq)`` and dispatches whole same-timestamp buckets in one go,
    amortising comparisons and sanitizer hooks across the batch.  When a
    dispatched process yields a :class:`Timeout` and is provably the *sole
    runnable* (both queues empty, no pending failures, no sanitizer, no
    ``until``/``limit`` horizon), the loop resumes the generator directly
    — the scheduled event is accounted for in ``scheduled_events`` but
    never materialised, which is where the multi-million events/s
    headline comes from.
    """

    def __init__(self):
        self._now = 0.0
        self._seq = 0
        self._ready: deque = deque()
        self._head_when: Optional[float] = None
        self._head: list = []
        self._buckets: dict[float, list] = {}
        self._times: list[float] = []
        self._unobserved_failures: list[tuple[Process, BaseException]] = []
        self._watch: Optional[Process] = None
        #: Timers dropped early by cancellation (FirstOf losers).
        self.cancelled_events = 0
        #: Optional repro.simnet.trace.Tracer; instrumented components
        #: emit events here when attached.
        self.tracer = None
        #: Optional repro.faults.injector.FaultInjector; when attached,
        #: the RDMA/channel/executor layers consult it for deterministic
        #: fault decisions and switch to their fault-tolerant code paths.
        self.faults = None
        #: Optional repro.sanitizer.invariants.Sanitizer; when attached,
        #: instrumented components report protocol events for runtime
        #: invariant checking.  Off (None) by default: every hook site
        #: pays a single attribute test.  Attaching it also disables the
        #: sole-runnable fast path so every event passes the hooks.
        self.sanitize = None
        #: Optional repro.elastic migration coordinator; when attached,
        #: executors consult it at their merge/trigger/finalize hook
        #: points so live partition migration can intercept in-flight
        #: deltas and gate window firing during a handoff.
        self.elastic = None
        #: Optional repro.overload coordinator; when attached, executor
        #: worker loops consult it before each batch for source-level
        #: admission control (pacing, queueing-delay estimation, load
        #: shedding) and feed it per-batch service times for straggler
        #: detection.
        self.overload = None

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def scheduled_events(self) -> int:
        """Total events scheduled so far (the wall-clock benches' event count)."""
        return self._seq

    @property
    def pending_timers(self) -> int:
        """Live timed entries currently resident in the calendar queue."""
        count = len(self._head)
        for bucket in self._buckets.values():
            count += len(bucket)
        return count

    # -- scheduling --------------------------------------------------------
    def call_in(self, delay: float, callback: Callable[..., None], *args: Any) -> None:
        """Schedule ``callback(*args)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past: delay={delay}")
        seq = self._seq = self._seq + 1
        if delay == 0.0:
            self._ready.append((self._now, seq, None, callback, args))
        else:
            when = self._now + delay
            self._push_timed(when, [when, seq, None, callback, args])

    def _push_timed(self, when: float, entry: list) -> None:
        head_when = self._head_when
        if when == head_when:
            self._head.append(entry)
        elif head_when is None:
            self._head_when = when
            self._head.append(entry)
        else:
            self._push_overflow(when, entry)

    def _push_overflow(self, when: float, entry: list) -> None:
        """Slow path of :meth:`_push_timed`: ``when`` differs from the head."""
        head_when = self._head_when
        if when < head_when:
            # Demote the current head bucket into the calendar and make
            # the new, earlier timestamp the front.
            bucket = self._buckets.get(head_when)
            if bucket is None:
                self._buckets[head_when] = self._head
                heapq.heappush(self._times, head_when)
            else:
                bucket.extend(self._head)
            self._head_when = when
            self._head = [entry]
            return
        bucket = self._buckets.get(when)
        if bucket is None:
            self._buckets[when] = [entry]
            heapq.heappush(self._times, when)
        else:
            bucket.append(entry)

    def _refill_head(self) -> None:
        """Promote the earliest calendar bucket into the front cache,
        skipping timestamps stranded by cancellation."""
        times = self._times
        buckets = self._buckets
        while times:
            when = heapq.heappop(times)
            bucket = buckets.pop(when, None)
            if bucket:
                self._head_when = when
                self._head = bucket
                return
        self._head_when = None
        self._head = []

    def process(self, gen: ProcessGen, name: str = "") -> Process:
        """Launch a generator as a simulation process."""
        return Process(self, gen, name=name)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Convenience constructor mirroring SimPy's ``env.timeout``."""
        return Timeout(delay, value)

    def signal(self, name: str = "") -> Signal:
        """Create a fresh one-shot signal."""
        return Signal(name=name)

    def resource(self, capacity: int = 1, name: str = "") -> Resource:
        """Create a FIFO resource bound to this simulator."""
        return Resource(self, capacity=capacity, name=name)

    def store(self, name: str = "") -> Store:
        """Create a FIFO store bound to this simulator."""
        return Store(self, name=name)

    # -- dispatch ----------------------------------------------------------
    def _fire(self, entry, chain: bool) -> None:
        """Dispatch one popped entry.

        Process entries step the generator inline.  While ``chain`` is
        true and the process is the sole runnable — it yielded a Timeout,
        both queues are empty, nothing failed, no sanitizer — the loop
        keeps driving the same generator without ever materialising the
        event, advancing ``_now``/``_seq`` exactly as the queue would
        have.  The chain breaks out to a normal subscription the moment
        any condition stops holding, so ordering is untouched.
        """
        proc = entry[2]
        if proc is not None:
            value = entry[3]
            exc = entry[4]
            gen = proc.gen
            send = gen.send
            ready = self._ready
            failures = self._unobserved_failures
            watch = self._watch
            while True:
                try:
                    if exc is None:
                        item = send(value)
                    else:
                        item = gen.throw(exc)
                except StopIteration as stop:
                    proc._done.fire(stop.value)
                    return
                except BaseException as failure:  # noqa: BLE001 - deliberate capture
                    self._note_failure(proc, failure)
                    proc._done.fail(failure)
                    return
                is_timeout = type(item) is Timeout
                if (
                    is_timeout
                    and chain
                    and not ready
                    and self._head_when is None
                    and not failures
                    and self.sanitize is None
                    and (watch is None or not watch._done._fired)
                ):
                    self._seq += 1
                    delay = item.delay
                    if delay != 0.0:
                        self._now += delay
                    value = item.value
                    exc = None
                    continue
                # Something else is pending (or chaining is off): fall back
                # to an ordinary subscription and return to the merge loop.
                if is_timeout:
                    seq = self._seq = self._seq + 1
                    delay = item.delay
                    if delay == 0.0:
                        ready.append((self._now, seq, proc, item.value, None))
                    else:
                        when = self._now + delay
                        self._push_timed(when, [when, seq, proc, item.value, None])
                elif isinstance(item, Waitable):
                    item._subscribe(self, proc._step)
                else:
                    proc._step(None, SimulationError(
                        f"process {proc.name!r} yielded {item!r}, expected a Waitable"
                    ))
                return
        callback = entry[3]
        if callback is not None:
            callback(*entry[4])

    def _dispatch_bucket(self, bucket: list, when: float, watch: Optional[Process]) -> None:
        """Fire a whole same-timestamp bucket, interleaving any ready-deque
        entries that belong between its members by sequence number.

        Entries appended to the ready deque *during* the batch always carry
        larger sequence numbers than every bucket member (the bucket was
        scheduled earlier), so they sort after the bucket and the common
        case is a straight sweep.  If a fire raises (or the watched process
        finishes mid-bucket), the unfired tail is pushed back into the
        calendar so the queue is left exactly as a one-at-a-time loop
        would have left it.
        """
        ready = self._ready
        fire = self._fire
        failures = self._unobserved_failures
        done = watch._done if watch is not None else None
        i = 0
        n = len(bucket)
        try:
            while i < n:
                if ready:
                    first = ready[0]
                    if first[0] < when or (first[0] == when and first[1] < bucket[i][1]):
                        ready.popleft()
                        fire(first, False)
                        if failures:
                            self._raise_unobserved()
                        if done is not None and done._fired:
                            break
                        continue
                entry = bucket[i]
                i += 1
                if entry[2] is None:
                    # Inline the pure-callback dispatch: bucket sweeps are
                    # dominated by timer callbacks and the _fire indirection
                    # costs as much as the dispatch itself.
                    callback = entry[3]
                    if callback is not None:
                        callback(*entry[4])
                else:
                    fire(entry, False)
                if failures:
                    self._raise_unobserved()
                if done is not None and done._fired:
                    break
        finally:
            if i < n:
                for entry in bucket[i:]:
                    self._push_timed(when, entry)

    # -- running -----------------------------------------------------------
    def run(self, until: Optional[float] = None) -> float:
        """Run events until the queues drain or simulated time passes ``until``.

        Returns the final simulated time.  Re-raises the first exception of
        any process that failed without being waited on, so errors never
        pass silently.
        """
        ready = self._ready
        heappop = heapq.heappop
        fire = self._fire
        san = self.sanitize
        failures = self._unobserved_failures
        chain = until is None
        while True:
            head_when = self._head_when
            if ready:
                entry = ready[0]
                if (
                    head_when is None
                    or entry[0] < head_when
                    or (entry[0] == head_when and entry[1] < self._head[0][1])
                ):
                    when = entry[0]
                    if until is not None and when > until:
                        self._now = until
                        break
                    ready.popleft()
                    if san is not None:
                        san.note_event(when, self._now)
                    self._now = when
                    fire(entry, chain)
                    if failures:
                        self._raise_unobserved()
                    continue
            elif head_when is None:
                break
            if until is not None and head_when > until:
                self._now = until
                break
            bucket = self._head
            times = self._times
            if times:
                next_when = heappop(times)
                next_bucket = self._buckets.pop(next_when, None)
                if next_bucket:
                    self._head_when = next_when
                    self._head = next_bucket
                else:
                    self._refill_head()
            else:
                self._head_when = None
                self._head = []
            if san is not None:
                san.note_event(head_when, self._now)
            self._now = head_when
            if len(bucket) == 1:
                entry = bucket[0]
                if entry[2] is None:
                    # Inline pure-callback dispatch (see _dispatch_bucket).
                    callback = entry[3]
                    if callback is not None:
                        callback(*entry[4])
                else:
                    fire(entry, chain)
                if failures:
                    self._raise_unobserved()
            else:
                self._dispatch_bucket(bucket, head_when, None)
        if failures:
            self._raise_unobserved()
        return self._now

    def run_until_process(self, proc: Process, limit: Optional[float] = None) -> Any:
        """Run until ``proc`` finishes; return its value (or re-raise).

        Like :meth:`run`, re-raises the first exception of any *other*
        process that failed without being waited on — the awaited process
        itself is observed here (its failure surfaces through ``value``).
        """
        proc._failure_observed = True
        ready = self._ready
        heappop = heapq.heappop
        fire = self._fire
        san = self.sanitize
        failures = self._unobserved_failures
        done = proc._done
        chain = limit is None
        prev_watch = self._watch
        self._watch = proc
        try:
            while not done._fired:
                head_when = self._head_when
                if ready:
                    entry = ready[0]
                    if (
                        head_when is None
                        or entry[0] < head_when
                        or (entry[0] == head_when and entry[1] < self._head[0][1])
                    ):
                        when = entry[0]
                        if limit is not None and when > limit:
                            raise SimulationError(
                                f"process {proc.name!r} exceeded time limit {limit}"
                            )
                        ready.popleft()
                        if san is not None:
                            san.note_event(when, self._now)
                        self._now = when
                        fire(entry, chain)
                        if failures:
                            self._raise_unobserved()
                        continue
                elif head_when is None:
                    raise SimulationError(
                        f"deadlock: no pending events but process {proc.name!r} unfinished"
                    )
                if limit is not None and head_when > limit:
                    raise SimulationError(
                        f"process {proc.name!r} exceeded time limit {limit}"
                    )
                bucket = self._head
                times = self._times
                if times:
                    next_when = heappop(times)
                    next_bucket = self._buckets.pop(next_when, None)
                    if next_bucket:
                        self._head_when = next_when
                        self._head = next_bucket
                    else:
                        self._refill_head()
                else:
                    self._head_when = None
                    self._head = []
                if san is not None:
                    san.note_event(head_when, self._now)
                self._now = head_when
                if len(bucket) == 1:
                    fire(bucket[0], chain)
                    if failures:
                        self._raise_unobserved()
                else:
                    self._dispatch_bucket(bucket, head_when, proc)
            return proc.value
        finally:
            self._watch = prev_watch

    def _note_failure(self, proc: Process, exc: BaseException) -> None:
        if not proc._failure_observed:
            self._unobserved_failures.append((proc, exc))

    def _raise_unobserved(self) -> None:
        # Cleared in place: the run loops (and the sole-runnable chain)
        # hold a direct reference to this list.
        failures = self._unobserved_failures
        for proc, exc in failures:
            if proc._failure_observed:
                continue
            del failures[:]
            raise exc
        del failures[:]
