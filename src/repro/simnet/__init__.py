"""Discrete-event simulation substrate for the rack-scale RDMA cluster.

``simnet`` provides:

* :mod:`repro.simnet.kernel` — a deterministic discrete-event kernel with
  generator-based processes, timeouts, signals, FIFO resources, and stores
  (conceptually a small SimPy, built from scratch for this project);
* :mod:`repro.simnet.cluster` — nodes, cores, the switch, and link models;
* :mod:`repro.simnet.cost_model` — the analytical CPU micro-architecture
  cost model (top-down cycle accounting + cache model) used to charge
  engine operations;
* :mod:`repro.simnet.counters` — per-thread hardware-performance-counter
  emulation (instructions, cycles by category, cache misses, memory bytes).
"""

from repro.simnet.kernel import (
    Simulator,
    Process,
    Timeout,
    Signal,
    Resource,
    Store,
    AllOf,
)
from repro.simnet.cluster import Cluster, Node, Core, Link
from repro.simnet.counters import CycleCategory, HwCounters
from repro.simnet.cost_model import (
    CostModel,
    CostProfile,
    CacheModel,
    OpCost,
)

__all__ = [
    "Simulator",
    "Process",
    "Timeout",
    "Signal",
    "Resource",
    "Store",
    "AllOf",
    "Cluster",
    "Node",
    "Core",
    "Link",
    "CycleCategory",
    "HwCounters",
    "CostModel",
    "CostProfile",
    "CacheModel",
    "OpCost",
]
