"""Opt-in event tracing for simulation runs.

Attach a :class:`Tracer` to a :class:`~repro.simnet.kernel.Simulator`
(``sim.tracer = Tracer()``) and instrumented components emit timestamped
events: channel sends/receives and credit stalls, epoch boundaries,
delta merges, window triggers.  With no tracer attached the hooks cost a
single attribute check.

Typical debugging session::

    sim.tracer = Tracer(categories={"epoch", "window"})
    ... run ...
    print(sim.tracer.render_timeline(limit=50))

Events are bounded by ``capacity`` (oldest dropped first) so tracing a
long run cannot exhaust memory.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Iterable, Optional

from repro.common.errors import ConfigError
from repro.common.units import fmt_time

#: The categories instrumented components emit.
KNOWN_CATEGORIES = ("channel", "epoch", "merge", "window", "custom")


@dataclass(frozen=True)
class TraceEvent:
    """One recorded event."""

    time: float
    category: str
    label: str
    data: dict = field(default_factory=dict)

    def render(self) -> str:
        extras = " ".join(f"{k}={v}" for k, v in self.data.items())
        return f"{fmt_time(self.time):>12}  [{self.category:<7}] {self.label} {extras}".rstrip()


class Tracer:
    """A bounded, filterable event recorder."""

    def __init__(
        self,
        categories: Optional[Iterable[str]] = None,
        capacity: int = 100_000,
    ):
        if capacity <= 0:
            raise ConfigError(f"tracer capacity must be positive, got {capacity}")
        self.categories = set(categories) if categories is not None else None
        self._events: deque[TraceEvent] = deque(maxlen=capacity)
        self.dropped = 0

    def wants(self, category: str) -> bool:
        """Whether this tracer records ``category``."""
        return self.categories is None or category in self.categories

    def emit(self, time: float, category: str, label: str, **data: Any) -> None:
        """Record one event (no-op if the category is filtered out)."""
        if not self.wants(category):
            return
        if len(self._events) == self._events.maxlen:
            self.dropped += 1
        self._events.append(TraceEvent(time, category, label, data))

    def __len__(self) -> int:
        return len(self._events)

    def events(self, category: Optional[str] = None) -> list[TraceEvent]:
        """Recorded events, optionally restricted to one category."""
        if category is None:
            return list(self._events)
        return [event for event in self._events if event.category == category]

    def clear(self) -> None:
        """Drop everything recorded so far."""
        self._events.clear()
        self.dropped = 0

    def render_timeline(self, limit: Optional[int] = None, category: Optional[str] = None) -> str:
        """A human-readable, time-ordered view of (the tail of) the trace."""
        selected = self.events(category)
        if limit is not None:
            selected = selected[-limit:]
        header = f"== trace: {len(selected)} events" + (
            f" (+{self.dropped} dropped)" if self.dropped else ""
        ) + " =="
        return "\n".join([header] + [event.render() for event in selected])


def trace(sim: Any, category: str, label: str, **data: Any) -> None:
    """Emit into ``sim.tracer`` if one is attached (cheap no-op otherwise)."""
    tracer = getattr(sim, "tracer", None)
    if tracer is not None:
        tracer.emit(sim.now, category, label, **data)
