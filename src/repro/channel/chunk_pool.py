"""Free-list pool for delta-chunk pair buffers.

Shipping one epoch delta allocates a fresh staging list per chunk on the
producer side (``_chunk_delta``) and a fresh reassembly list per
``(operator, partition, sender, epoch)`` on the consumer side — tens of
thousands of short-lived lists per run, all the same shape, all handed
straight to the garbage collector.  :class:`ChunkBufferPool` replaces
construct/GC with acquire/release: buffers are cleared and parked on a
free list, so steady-state chunking allocates nothing.

Lifecycle contract (enforced, not advisory):

* a buffer is **owned** by exactly one party between ``acquire`` and
  ``release``; releasing it twice raises :class:`ProtocolError` — the
  pool analogue of the ring's buffer-lifecycle sanitizer invariant
  (a slot must not be rewritten before the consumer released it);
* ``release`` clears the buffer *before* parking it, so pooled reuse can
  never leak pairs between epochs.  Callers must therefore copy the
  contents out (the executor freezes them into the immutable
  ``DeltaChunk.pairs`` / ``EpochDelta.pairs`` tuples) before releasing;
* the free list is bounded (``max_free``); beyond that, released
  buffers are simply dropped to the GC so a burst cannot pin memory
  forever.

The pool is deterministic: it holds plain lists, performs no
time-dependent decisions, and is invisible to simulated results.
"""

from __future__ import annotations

from repro.common.errors import ProtocolError

#: Free-list bound: enough for every in-flight chunk of a large fan-in
#: (credits x peers) without letting a pathological burst pin memory.
DEFAULT_MAX_FREE = 64


class ChunkBufferPool:
    """An arena of reusable list buffers with double-release detection."""

    __slots__ = ("name", "max_free", "_free", "_free_ids",
                 "acquired", "released", "reused")

    def __init__(self, name: str = "chunk-pool", max_free: int = DEFAULT_MAX_FREE):
        if max_free < 0:
            raise ProtocolError(f"{name}: max_free must be non-negative")
        self.name = name
        self.max_free = max_free
        self._free: list[list] = []
        self._free_ids: set[int] = set()
        #: Lifetime counters, exposed for benchmarks and tests.
        self.acquired = 0
        self.released = 0
        self.reused = 0

    def acquire(self) -> list:
        """Take an empty buffer: reuse a parked one, else allocate."""
        self.acquired += 1
        if self._free:
            buffer = self._free.pop()
            self._free_ids.discard(id(buffer))
            self.reused += 1
            return buffer
        return []

    def release(self, buffer: list) -> None:
        """Return a buffer to the pool.  The buffer is cleared here; the
        caller must have copied its contents out already."""
        if id(buffer) in self._free_ids:
            raise ProtocolError(
                f"{self.name}: double release of pooled buffer (lifecycle "
                "violation: a buffer may be released exactly once per acquire)"
            )
        self.released += 1
        buffer.clear()
        if len(self._free) < self.max_free:
            self._free.append(buffer)
            self._free_ids.add(id(buffer))

    @property
    def outstanding(self) -> int:
        """Buffers currently acquired and not yet released."""
        return self.acquired - self.released

    @property
    def free(self) -> int:
        """Buffers parked on the free list."""
        return len(self._free)

    def __repr__(self) -> str:
        return (
            f"ChunkBufferPool({self.name!r}, free={self.free}, "
            f"acquired={self.acquired}, reused={self.reused})"
        )
