"""Credit-based flow-control state machine (paper Sec. 6.1-6.2).

The protocol invariants, verbatim from the paper:

1. a producer decreases its number of credits by one after a write
   request;
2. a consumer transfers a credit to the producer after processing a
   buffer, notifying the producer that the buffer is writable again;
3. a producer with no credit cannot pick buffers from the queue — it
   must wait for new credit from the receiver.

:class:`FlowControl` enforces these mechanically; any violation raises
:class:`~repro.common.errors.ProtocolError`, so a buggy engine cannot
silently corrupt the queue.  :class:`ChannelStats` accumulates the
observables the drill-down experiments report (throughput, per-buffer
latency, credit-stall time).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.errors import ProtocolError


class FlowControl:
    """Producer-side credit account for one channel."""

    def __init__(self, credits: int):
        if credits <= 0:
            raise ProtocolError(f"credit count must be positive, got {credits}")
        self.initial = credits
        self._available = credits

    @property
    def available(self) -> int:
        """Credits the producer may still spend before blocking."""
        return self._available

    @property
    def outstanding(self) -> int:
        """Buffers currently in flight or unprocessed at the consumer."""
        return self.initial - self._available

    def can_send(self) -> bool:
        """Invariant 3: only a positive balance permits a write."""
        return self._available > 0

    def spend(self) -> None:
        """Invariant 1: a write request consumes one credit."""
        if self._available <= 0:
            raise ProtocolError(
                "protocol violation: write posted with zero credits"
            )
        self._available -= 1

    def refill(self, count: int = 1) -> None:
        """Invariant 2: the consumer returned ``count`` credits."""
        if count <= 0:
            raise ProtocolError(f"credit refill must be positive, got {count}")
        if self._available + count > self.initial:
            raise ProtocolError(
                f"protocol violation: refill to {self._available + count} "
                f"exceeds the channel's {self.initial} credits"
            )
        self._available += count

    def __repr__(self) -> str:
        return f"FlowControl({self._available}/{self.initial})"


@dataclass
class ChannelStats:
    """Observable behaviour of one channel endpoint pair."""

    messages: int = 0
    payload_bytes: float = 0.0
    credit_stall_s: float = 0.0
    credit_stalls: int = 0
    # Fault-mode accounting: credit waits that hit the timeout, and sends
    # silently dropped because the peer was declared dead.
    credit_timeouts: int = 0
    blackholed_sends: int = 0
    _latency_sum: float = 0.0
    _latency_count: int = 0
    _latency_max: float = 0.0
    latencies: list[float] = field(default_factory=list)
    _latency_cap: int = 4096

    def record_send(self, nbytes: int) -> None:
        """Count one posted buffer of ``nbytes`` payload."""
        self.messages += 1
        self.payload_bytes += nbytes

    def record_stall(self, seconds: float) -> None:
        """Count time the producer spent blocked waiting for credit."""
        if seconds > 0:
            self.credit_stall_s += seconds
            self.credit_stalls += 1

    def record_latency(self, seconds: float) -> None:
        """Record one buffer's send-to-consume latency."""
        self._latency_sum += seconds
        self._latency_count += 1
        self._latency_max = max(self._latency_max, seconds)
        if len(self.latencies) < self._latency_cap:
            self.latencies.append(seconds)

    @property
    def mean_latency_s(self) -> float:
        """Average per-buffer latency (0 when nothing was measured)."""
        if self._latency_count == 0:
            return 0.0
        return self._latency_sum / self._latency_count

    @property
    def max_latency_s(self) -> float:
        """Worst observed per-buffer latency."""
        return self._latency_max

    def throughput_bytes_per_s(self, elapsed_s: float) -> float:
        """Average payload rate over ``elapsed_s`` simulated seconds."""
        return self.payload_bytes / elapsed_s if elapsed_s > 0 else 0.0
