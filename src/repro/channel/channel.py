"""RDMA channel endpoints (paper Sec. 6).

A channel connects exactly one producer worker to one consumer worker.
The producer's :meth:`ProducerEndpoint.send` follows the transfer phase of
the protocol (Fig. 4 of the paper): acquire the next ring buffer, post an
unsignaled RDMA WRITE, and block (spinning) only when out of credits.  The
consumer's :meth:`ConsumerEndpoint.recv` polls the ring in FIFO order and
:meth:`ConsumerEndpoint.release` returns a credit with a small two-sided
SEND after the buffer has been processed.

End-of-stream is an in-band sentinel (:data:`CHANNEL_EOS`) sent like any
other buffer, so it cannot overtake data.

:class:`LocalChannel` provides identical semantics between two workers on
the same node: payloads move with a memcpy priced through the DRAM pipe
instead of the NIC.
"""

from __future__ import annotations

from typing import Any, Generator, Optional

from repro.channel.circular_queue import FOOTER_BYTES, CircularQueue
from repro.channel.protocol import ChannelStats, FlowControl
from repro.common.config import DEFAULT_BUFFER_BYTES, DEFAULT_CREDITS
from repro.common.errors import ChannelResetError, FaultError, ProtocolError
from repro.rdma.connection import ConnectionManager
from repro.rdma.verbs import QueuePair
from repro.simnet.cluster import Core
from repro.simnet.cost_model import OpCost
from repro.simnet.kernel import FirstOf, Signal, Simulator, Store, Timeout
from repro.simnet.trace import trace


class _Eos:
    """Singleton end-of-stream marker."""

    def __repr__(self) -> str:
        return "CHANNEL_EOS"


CHANNEL_EOS = _Eos()


class _PoisonCredit:
    """Sentinel injected into a producer's credit queue by ``mark_dead``.

    Wakes a sender parked on credit from a peer that will never return
    one, without confusing the flow-control accounting.
    """

    def __repr__(self) -> str:
        return "POISON_CREDIT"


_POISON_CREDIT = _PoisonCredit()


class _ResetToken:
    """Sentinel injected into a consumer's arrival queue by ``force_reset``."""

    def __repr__(self) -> str:
        return "CHANNEL_RESET"


_RESET_TOKEN = _ResetToken()

# Wire size of a credit-return message (an 8-byte counter plus header).
CREDIT_MSG_BYTES = 16

# CPU price of one local-memory footer poll (a cached load + compare).
_POLL_COST = OpCost(instructions=6, retiring=1.5, core=1.0)


class ProducerEndpoint:
    """The sending side of a channel."""

    def __init__(
        self,
        sim: Simulator,
        qp: QueuePair,
        queue: CircularQueue,
        flow: FlowControl,
        stats: ChannelStats,
        name: str,
        signal_writes: bool = False,
    ):
        self.sim = sim
        self.qp = qp
        self.queue = queue
        self.flow = flow
        self.stats = stats
        self.name = name
        #: Selective signaling (paper Sec. 3.2 / C2): data writes are
        #: normally unsignaled; True requests a completion per write and
        #: pays the CQ-poll cost (the ablation knob).
        self.signal_writes = signal_writes
        self._next_slot = 0
        self._closed = False
        # Fault-mode state: a dead peer blackholes sends; the credit
        # ticket persists across timed-out waits so an abandoned wait can
        # never swallow a credit message.
        self._dead = False
        self._credit_ticket: Optional[Signal] = None

    @property
    def closed(self) -> bool:
        """Whether EOS has been sent."""
        return self._closed

    @property
    def dead(self) -> bool:
        """Whether the peer has been declared dead (sends are dropped)."""
        return self._dead

    def mark_dead(self) -> None:
        """Declare the consumer dead: drop future sends, wake credit waits."""
        if self._dead:
            return
        self._dead = True
        self.qp.recv_queue.put((_POISON_CREDIT, 0))

    def send(self, core: Core, payload: Any, nbytes: int) -> Generator[Any, Any, None]:
        """Transfer one buffer; drive with ``yield from``.

        Blocks (spin-waiting, charged as core-bound cycles) when the
        producer holds no credit — the self-adjusting rate of Sec. 6.2.
        """
        if self.sim.faults is not None:
            yield from self._send_fault_tolerant(core, payload, nbytes, cooperative=False)
            return
        if self._closed:
            raise ProtocolError(f"{self.name}: send after EOS")
        self.queue.check_payload(nbytes)
        self._drain_credits()
        while not self.flow.can_send():
            stall_start = self.sim.now
            credit_msg = yield from core.spin_wait(self.qp.recv())
            self._apply_credit(credit_msg[0])
            self.stats.record_stall(self.sim.now - stall_start)
        yield from self._post(core, payload, nbytes)

    def send_cooperative(self, core: Core, payload: Any, nbytes: int) -> Generator[Any, Any, None]:
        """Like :meth:`send`, but **parks** instead of spinning on credit.

        For use inside a :class:`~repro.core.scheduler.CoroScheduler`
        task: while this coroutine waits for credit, the worker's other
        coroutines (e.g. delta-merge pollers) keep running — the paper's
        motivation for coroutine-based scheduling (Sec. 5.3).
        """
        from repro.core.scheduler import Park  # local import: layering

        if self.sim.faults is not None:
            yield from self._send_fault_tolerant(core, payload, nbytes, cooperative=True)
            return
        if self._closed:
            raise ProtocolError(f"{self.name}: send after EOS")
        self.queue.check_payload(nbytes)
        self._drain_credits()
        while not self.flow.can_send():
            stall_start = self.sim.now
            credit_msg = yield Park(self.qp.recv())
            self._apply_credit(credit_msg[0])
            self.stats.record_stall(self.sim.now - stall_start)
        yield from self._post(core, payload, nbytes)

    def _send_fault_tolerant(
        self, core: Core, payload: Any, nbytes: int, cooperative: bool
    ) -> Generator[Any, Any, None]:
        """The fault-mode send path: credit timeouts + reliable transfer.

        Credit waits race against a timeout; on expiry the producer checks
        whether the peer crashed (→ declare it dead and drop the send —
        the recovery protocol re-creates the data elsewhere) and otherwise
        keeps waiting with the *same* ticket, so a credit arriving after a
        timed-out wait is still applied, never lost.
        """
        from repro.core.scheduler import Park  # local import: layering

        if self._closed:
            raise ProtocolError(f"{self.name}: send after EOS")
        faults = self.sim.faults
        if self._dead:
            self._blackhole(nbytes)
            return
        self.queue.check_payload(nbytes)
        self._drain_credits()
        while not self.flow.can_send():
            if self._dead:
                self._blackhole(nbytes)
                return
            stall_start = self.sim.now
            if self._credit_ticket is None:
                self._credit_ticket = self.qp.recv()
            race = FirstOf(
                [self._credit_ticket, Timeout(faults.credit_timeout_s)]
            )
            if cooperative:
                index, value = yield Park(race)
            else:
                index, value = yield from core.spin_wait(race)
            if index == 0:
                self._credit_ticket = None
                if value[0] is _POISON_CREDIT:
                    self._blackhole(nbytes)
                    return
                self._apply_credit(value[0])
                self.stats.record_stall(self.sim.now - stall_start)
            else:
                self.stats.credit_timeouts += 1
                faults.note_credit_timeout(self.name)
                if faults.is_crashed_node(self.qp.remote.index):
                    self.mark_dead()
                    self._blackhole(nbytes)
                    return
        yield from self._post_reliable(core, payload, nbytes, cooperative)

    def _blackhole(self, nbytes: int) -> None:
        self.stats.blackholed_sends += 1
        self.sim.faults.note_blackholed_send(self.name)
        trace(self.sim, "channel", f"{self.name} send to dead peer dropped", bytes=nbytes)

    def _post(self, core: Core, payload: Any, nbytes: int) -> Generator[Any, Any, None]:
        self.flow.spend()
        slot = self._next_slot
        self._next_slot += 1
        san = self.sim.sanitize
        if san is not None:
            san.check_buffer_write(self.name, self.queue, slot)
            san.note_send(id(self.stats), self.name, self.flow.initial)
        stamped = (self.sim.now, payload)
        yield from self.qp.post_write(
            core,
            stamped,
            nbytes + FOOTER_BYTES,
            self.queue.region,
            self.queue.offset_of(slot),
            signaled=self.signal_writes,
        )
        if self.signal_writes:
            yield from self.qp.poll_cq(core)
        self.stats.record_send(nbytes)
        trace(self.sim, "channel", f"{self.name} send", slot=slot % self.queue.credits, bytes=nbytes)

    def _post_reliable(
        self, core: Core, payload: Any, nbytes: int, cooperative: bool
    ) -> Generator[Any, Any, None]:
        """Post a WRITE with ACK tracking and bounded-backoff retransmission.

        One ACK signal and one first-delivery-wins transfer record are
        shared across all attempts of a buffer: a retransmission of a
        merely-slow (not lost) WRITE is discarded at the receiver, and a
        late ACK from an earlier attempt satisfies a later wait.
        """
        from repro.core.scheduler import Park  # local import: layering

        faults = self.sim.faults
        self.flow.spend()
        slot = self._next_slot
        self._next_slot += 1
        # Sanitize once per logical buffer, before the retry loop: a
        # retransmission legitimately targets a possibly-delivered slot
        # (the receiver's first-delivery-wins record discards it).
        san = self.sim.sanitize
        if san is not None:
            san.check_buffer_write(self.name, self.queue, slot)
            san.note_send(id(self.stats), self.name, self.flow.initial)
        stamped = (self.sim.now, payload)
        ack = Signal(name=f"{self.name}.ack.{slot}")
        xfer_state: dict[str, bool] = {"delivered": False}
        rto = faults.rto_s
        attempt = 0
        while True:
            yield from self.qp.post_write(
                core,
                stamped,
                nbytes + FOOTER_BYTES,
                self.queue.region,
                self.queue.offset_of(slot),
                signaled=self.signal_writes,
                ack_signal=ack,
                xfer_state=xfer_state,
            )
            if self.signal_writes:
                yield from self.qp.poll_cq(core)
            race = FirstOf([ack, Timeout(rto)])
            if cooperative:
                index, _value = yield Park(race)
            else:
                index, _value = yield from core.spin_wait(race)
            if index == 0:
                break
            if faults.is_crashed_node(self.qp.remote.index):
                self.mark_dead()
                self._blackhole(nbytes)
                return
            if faults.is_crashed_node(self.qp.local.index):
                # The *sender's* host died mid-send (its worker is only
                # cooperatively halted): a dead host does not retry.
                self.mark_dead()
                self._blackhole(nbytes)
                return
            if faults.link_blocked(self.qp.local.index, self.qp.remote.index):
                # A partition, not a lost WRITE: the transport holds the
                # transfer until the path heals.  Waiting out the cut
                # must not consume retry budget — a long partition is
                # survivable, a truly unreachable peer is not.
                heal = faults.heal_wait(
                    self.qp.local.index, self.qp.remote.index
                )
                trace(
                    self.sim, "channel",
                    f"{self.name} holding for partition heal",
                    slot=slot % self.queue.credits,
                )
                if cooperative:
                    yield Park(heal)
                else:
                    yield from core.spin_wait(heal)
                rto = faults.rto_s
                continue
            attempt += 1
            if attempt >= faults.max_retries:
                raise FaultError(
                    f"{self.name}: transfer for slot {slot} lost "
                    f"{faults.max_retries} times; peer unreachable"
                )
            core.counters.count_retransmit(nbytes)
            trace(
                self.sim, "channel", f"{self.name} retransmit",
                slot=slot % self.queue.credits, attempt=attempt, rto_s=rto,
            )
            rto *= 2
        self.stats.record_send(nbytes)
        trace(self.sim, "channel", f"{self.name} send", slot=slot % self.queue.credits, bytes=nbytes)

    def close(self, core: Core) -> Generator[Any, Any, None]:
        """Send the end-of-stream sentinel (consumes a credit like data).

        Idempotent: a second close (e.g. after a channel reset raced the
        first one) is a no-op, so EOS is delivered at most once.
        """
        if self._closed:
            return
        if self._dead:
            self._closed = True
            return
        yield from self.send(core, CHANNEL_EOS, 0)
        self._closed = True

    def close_cooperative(self, core: Core) -> Generator[Any, Any, None]:
        """Like :meth:`close`, but parks on credit instead of spinning.

        Inside a coroutine scheduler the spinning close can deadlock a
        whole node: with few credits, two peers' shippers spin for
        credit while the merge coroutines that would return it never get
        the core.  Scheduler tasks must use this variant.
        """
        if self._closed:
            return
        if self._dead:
            self._closed = True
            return
        yield from self.send_cooperative(core, CHANNEL_EOS, 0)
        self._closed = True

    def reset_endpoint(self, rearm_eos: bool = False) -> None:
        """Return to the post-setup state after a channel teardown.

        ``rearm_eos`` re-opens a closed producer whose EOS never reached
        the consumer (it died in the torn-down ring), so the caller's
        normal close path delivers it exactly once on the fresh channel.
        """
        san = self.sim.sanitize
        if san is not None:
            san.note_channel_reset(id(self.stats), self.name, self.flow.initial)
        self._next_slot = 0
        self._dead = False
        self._credit_ticket = None
        while True:
            ok, _payload, _nbytes = self.qp.try_recv()
            if not ok:
                break
        self.flow = FlowControl(self.flow.initial)
        if rearm_eos:
            self._closed = False

    def _drain_credits(self) -> None:
        while True:
            ok, credit_payload, _nbytes = self.qp.try_recv()
            if not ok:
                return
            if credit_payload is _POISON_CREDIT:
                continue
            self._apply_credit(credit_payload)

    def _apply_credit(self, credit_payload: Any) -> None:
        if not isinstance(credit_payload, int) or credit_payload <= 0:
            raise ProtocolError(
                f"{self.name}: malformed credit message {credit_payload!r}"
            )
        san = self.sim.sanitize
        if san is not None:
            san.note_credit_apply(
                id(self.stats), self.name, credit_payload, self.flow.initial
            )
        self.flow.refill(credit_payload)


class ConsumerEndpoint:
    """The receiving side of a channel."""

    def __init__(
        self,
        sim: Simulator,
        qp: QueuePair,
        queue: CircularQueue,
        stats: ChannelStats,
        name: str,
    ):
        self.sim = sim
        self.qp = qp
        self.queue = queue
        self.stats = stats
        self.name = name
        self._arrivals: Store = sim.store(name=f"{name}.arrivals")
        self._next_slot = 0
        self._release_slot = 0
        self._eos_seen = False
        # Fault-mode state: credit starvation withholds returns until
        # flushed; ``force_reset`` interrupts a parked receiver.
        self.withhold_credits = False
        self._withheld = 0
        #: Optional fan-in hook: a store that receives one token per
        #: arrival, letting a worker sleep on many channels at once.
        self.notify_store: Optional[Store] = None
        queue.region.on_store = self._on_store

    def _on_store(self, offset: int) -> None:
        self._arrivals.put(offset)
        if self.notify_store is not None:
            self.notify_store.put(self)

    @property
    def eos(self) -> bool:
        """Whether end-of-stream has been received."""
        return self._eos_seen

    @property
    def pending(self) -> int:
        """Buffers delivered but not yet received by the worker."""
        return len(self._arrivals)

    def try_recv(self, core: Core) -> tuple[bool, Any, int]:
        """Non-blocking footer poll: ``(ok, payload, nbytes)``.

        Charges one poll's worth of CPU to ``core`` (counters only — a
        single cached load is far below the simulation's time quantum).
        """
        core.counters.charge(_POLL_COST, 1.0)
        ok, offset = self._arrivals.try_get()
        if not ok:
            return False, None, 0
        if offset is _RESET_TOKEN:
            raise ChannelResetError(f"{self.name}: channel was reset")
        return self._take()

    def recv(self, core: Core) -> Generator[Any, Any, tuple[Any, int]]:
        """Blocking receive; spin-waits (core-bound) until a buffer lands."""
        arrival = yield from core.spin_wait(self._arrivals.get())
        if arrival is _RESET_TOKEN:
            raise ChannelResetError(f"{self.name}: channel was reset")
        ok, payload, nbytes = self._take()
        assert ok
        return payload, nbytes

    def recv_cooperative(self, core: Core) -> Generator[Any, Any, tuple[Any, int]]:
        """Like :meth:`recv`, but parks the coroutine instead of spinning.

        For scheduler tasks: an empty channel parks this poller and lets
        compute coroutines run (the park-on-empty-channel behaviour of
        Fig. 3 in the paper).
        """
        from repro.core.scheduler import Park  # local import: layering

        core.counters.charge(_POLL_COST, 1.0)
        arrival = yield Park(self._arrivals.get())
        if arrival is _RESET_TOKEN:
            raise ChannelResetError(f"{self.name}: channel was reset")
        ok, payload, nbytes = self._take()
        assert ok
        return payload, nbytes

    def _take(self) -> tuple[bool, Any, int]:
        slot = self._next_slot
        if not self.queue.poll_slot(slot):
            raise ProtocolError(
                f"{self.name}: arrival signal for slot {slot} but footer unset "
                "(FIFO order violated)"
            )
        stamped, wire_bytes = self.queue.read_slot(slot)
        send_time, payload = stamped
        self._next_slot += 1
        self.stats.record_latency(self.sim.now - send_time)
        trace(self.sim, "channel", f"{self.name} recv", slot=slot % self.queue.credits)
        if payload is CHANNEL_EOS:
            self._eos_seen = True
        return True, payload, max(0, wire_bytes - FOOTER_BYTES)

    def release(self, core: Core) -> Generator[Any, Any, None]:
        """Mark the oldest unreleased buffer writable and return a credit."""
        if self._release_slot >= self._next_slot:
            raise ProtocolError(f"{self.name}: release without a received buffer")
        self.queue.release_slot(self._release_slot)
        self._release_slot += 1
        if self.withhold_credits:
            self._withheld += 1
            return
        san = self.sim.sanitize
        if san is not None:
            san.note_credit_return(id(self.stats), self.name, 1, self.queue.credits)
        yield from self.qp.post_send(core, 1, CREDIT_MSG_BYTES)

    def flush_withheld(self, core: Core) -> Generator[Any, Any, None]:
        """Return every credit held back during a starvation window."""
        count, self._withheld = self._withheld, 0
        if count:
            san = self.sim.sanitize
            if san is not None:
                san.note_credit_return(
                    id(self.stats), self.name, count, self.queue.credits
                )
            yield from self.qp.post_send(core, count, CREDIT_MSG_BYTES)

    def force_reset(self) -> None:
        """Interrupt the receiver: its next (or current, if parked) receive
        raises :class:`ChannelResetError`.  Queued arrivals ahead of the
        token are still delivered in FIFO order first."""
        self._arrivals.put(_RESET_TOKEN)

    def reset_endpoint(self) -> None:
        """Drop undelivered ring contents and return to the initial state.

        ``_eos_seen`` survives on purpose: if EOS was consumed before the
        reset, re-establishing the channel must not expect (or accept) a
        second one.
        """
        self.queue.reset()
        self._next_slot = 0
        self._release_slot = 0
        self.withhold_credits = False
        self._withheld = 0
        while True:
            ok, _item = self._arrivals.try_get()
            if not ok:
                break


class RdmaChannel:
    """Factory tying together region, queue pair, and the two endpoints."""

    def __init__(self, producer: ProducerEndpoint, consumer: ConsumerEndpoint, stats: ChannelStats):
        self.producer = producer
        self.consumer = consumer
        self.stats = stats

    def reset(self) -> None:
        """Tear down and re-establish the channel after a fault.

        In-flight buffers are dropped (higher layers re-ship from retained
        epoch deltas).  End-of-stream stays exactly-once across the reset:
        the producer is re-armed to resend EOS only if it had closed but
        the consumer never saw the sentinel (it died with the ring).
        """
        rearm = self.producer.closed and not self.consumer.eos
        self.consumer.reset_endpoint()
        self.producer.reset_endpoint(rearm_eos=rearm)

    @classmethod
    def create(
        cls,
        cm: ConnectionManager,
        producer_node: int,
        consumer_node: int,
        credits: int = DEFAULT_CREDITS,
        buffer_bytes: int = DEFAULT_BUFFER_BYTES,
        name: str = "",
        signal_writes: bool = False,
    ) -> "RdmaChannel":
        """Run the setup phase of the protocol (Sec. 6.2) between two nodes."""
        label = name or f"ch:{producer_node}->{consumer_node}"
        region = cm.register_region(
            consumer_node, credits * buffer_bytes, name=f"{label}.ring"
        )
        qp_prod, qp_cons = cm.connect(producer_node, consumer_node, name=label)
        queue = CircularQueue(region, credits, buffer_bytes)
        stats = ChannelStats()
        sim = cm.cluster.sim
        producer = ProducerEndpoint(
            sim, qp_prod, queue, FlowControl(credits), stats, f"{label}.prod",
            signal_writes=signal_writes,
        )
        consumer = ConsumerEndpoint(sim, qp_cons, queue, stats, f"{label}.cons")
        return cls(producer, consumer, stats)


class LocalChannel:
    """A same-node channel with identical semantics but memcpy timing.

    Used for worker-to-worker exchange inside one node (the software
    queues of queue-based partitioning).  A send copies the payload
    through DRAM; a release returns the credit instantly.
    """

    def __init__(self, sim: Simulator, node: "Any", credits: int = DEFAULT_CREDITS,
                 buffer_bytes: int = DEFAULT_BUFFER_BYTES, name: str = "local"):
        self.sim = sim
        self.node = node
        self.buffer_bytes = buffer_bytes
        self.stats = ChannelStats()
        self.name = name
        self._flow = FlowControl(credits)
        self._arrivals: Store = sim.store(name=f"{name}.arrivals")
        self._credit_returns: Store = sim.store(name=f"{name}.credits")
        self._eos_seen = False
        self._closed = False
        self._dead = False
        self.notify_store: Optional[Store] = None
        self.producer = self
        self.consumer = self

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def dead(self) -> bool:
        return self._dead

    def mark_dead(self) -> None:
        """Administratively kill the channel (its owner was fenced).

        Future sends are silently dropped, and a fake credit wakes any
        sender parked on the credit wait so its (halted) body can exit.
        """
        self._dead = True
        self._credit_returns.put(1)

    @property
    def eos(self) -> bool:
        return self._eos_seen

    @property
    def pending(self) -> int:
        return len(self._arrivals)

    def send(self, core: Core, payload: Any, nbytes: int) -> Generator[Any, Any, None]:
        """Copy one buffer to the consumer side, honouring credits."""
        if self._dead:
            return
        if self._closed:
            raise ProtocolError(f"{self.name}: send after EOS")
        if nbytes > self.buffer_bytes:
            raise ProtocolError(
                f"{self.name}: payload {nbytes} exceeds buffer {self.buffer_bytes}"
            )
        while not self._flow.can_send():
            stall_start = self.sim.now
            yield from core.spin_wait(self._credit_returns.get())
            if self._dead:
                return
            self._flow.refill(1)
            self.stats.record_stall(self.sim.now - stall_start)
        self._flow.spend()
        # Price the copy: read + write of nbytes through the cache/DRAM.
        copy_cost = self.node.cost_model.cache.streaming_cost(2 * max(nbytes, 1))
        yield from core.execute(copy_cost, 1.0)
        self._arrivals.put((self.sim.now, payload, nbytes))
        if self.notify_store is not None:
            self.notify_store.put(self)
        self.stats.record_send(nbytes)

    def close(self, core: Core) -> Generator[Any, Any, None]:
        if self._dead:
            return
        yield from self.send(core, CHANNEL_EOS, 0)
        self._closed = True

    def try_recv(self, core: Core) -> tuple[bool, Any, int]:
        core.counters.charge(_POLL_COST, 1.0)
        ok, item = self._arrivals.try_get()
        if not ok:
            return False, None, 0
        return self._take(item)

    def recv(self, core: Core) -> Generator[Any, Any, tuple[Any, int]]:
        item = yield from core.spin_wait(self._arrivals.get())
        _ok, payload, nbytes = self._take(item)
        return payload, nbytes

    def _take(self, item: tuple[float, Any, int]) -> tuple[bool, Any, int]:
        send_time, payload, nbytes = item
        self.stats.record_latency(self.sim.now - send_time)
        if payload is CHANNEL_EOS:
            self._eos_seen = True
        return True, payload, nbytes

    def release(self, core: Core) -> Generator[Any, Any, None]:
        """Return one credit to the producer (no network involved)."""
        core.counters.charge(_POLL_COST, 1.0)
        self._credit_returns.put(1)
        return
        yield  # pragma: no cover - makes this a generator like its RDMA twin
