"""Slash RDMA channels (paper Sec. 6).

An RDMA channel is a point-to-point, FIFO, credit-flow-controlled stream
of fixed-size buffers:

* the **circular queue** (:mod:`repro.channel.circular_queue`) is a flat
  RDMA-registered memory area of ``credits x buffer_bytes`` bytes on the
  consumer; buffers are written by one-sided RDMA WRITEs and detected by
  footer polling;
* the **protocol** (:mod:`repro.channel.protocol`) enforces the three
  invariants of Sec. 6.2: a write consumes a credit, processing a buffer
  returns a credit, and a producer without credit must wait;
* the **channel** (:mod:`repro.channel.channel`) exposes producer /
  consumer endpoints used by Slash (data ingestion, SSB delta shipping)
  and by RDMA UpPar (hash re-partitioning), plus a same-node
  :class:`~repro.channel.channel.LocalChannel` with identical semantics
  but memcpy-over-DRAM timing.
"""

from repro.channel.chunk_pool import ChunkBufferPool
from repro.channel.circular_queue import CircularQueue
from repro.channel.protocol import FlowControl, ChannelStats
from repro.channel.channel import (
    RdmaChannel,
    LocalChannel,
    ProducerEndpoint,
    ConsumerEndpoint,
    CHANNEL_EOS,
)

__all__ = [
    "ChunkBufferPool",
    "CircularQueue",
    "FlowControl",
    "ChannelStats",
    "RdmaChannel",
    "LocalChannel",
    "ProducerEndpoint",
    "ConsumerEndpoint",
    "CHANNEL_EOS",
]
