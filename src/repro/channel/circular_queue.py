"""The RDMA-capable circular queue backing a channel (paper Sec. 6.3).

The queue is a single flat memory region of ``credits x buffer_bytes``
bytes on the consumer node: slot ``i`` occupies offsets
``[i * buffer_bytes, (i+1) * buffer_bytes)``.  The flat layout is what
lets the real system transfer payload and metadata in one RDMA WRITE and
poll the footer byte of a slot; in the simulation, a slot's payload
becomes visible atomically when its transfer completes (see
:mod:`repro.rdma.region`), which preserves the footer-polling guarantee
that a reader never observes a partially-written buffer.

Producer and consumer both walk the ring in the same order, so FIFO
delivery follows from the in-order QP plus the credit protocol.
"""

from __future__ import annotations

from typing import Any

from repro.common.errors import ProtocolError
from repro.rdma.region import MemoryRegion

# Bytes of per-buffer metadata (sequence number + length + footer flag).
FOOTER_BYTES = 16


class CircularQueue:
    """Slot arithmetic and occupancy over one registered region."""

    def __init__(self, region: MemoryRegion, credits: int, buffer_bytes: int):
        if credits <= 0 or buffer_bytes <= FOOTER_BYTES:
            raise ProtocolError(
                f"invalid queue geometry: credits={credits}, "
                f"buffer_bytes={buffer_bytes} (footer needs {FOOTER_BYTES})"
            )
        if region.nbytes < credits * buffer_bytes:
            raise ProtocolError(
                f"region of {region.nbytes} B too small for "
                f"{credits} x {buffer_bytes} B slots"
            )
        self.region = region
        self.credits = credits
        self.buffer_bytes = buffer_bytes

    @property
    def payload_capacity(self) -> int:
        """Usable payload bytes per slot (slot size minus the footer)."""
        return self.buffer_bytes - FOOTER_BYTES

    def offset_of(self, slot: int) -> int:
        """Byte offset of ring slot ``slot`` (wraps modulo the ring)."""
        return (slot % self.credits) * self.buffer_bytes

    def check_payload(self, nbytes: int) -> None:
        """Reject payloads that do not fit a slot."""
        if nbytes < 0:
            raise ProtocolError(f"negative payload size {nbytes}")
        if nbytes > self.payload_capacity:
            raise ProtocolError(
                f"payload of {nbytes} B exceeds slot capacity "
                f"{self.payload_capacity} B"
            )

    def poll_slot(self, slot: int) -> bool:
        """Footer poll: is a fully-delivered buffer present in ``slot``?"""
        return self.region.poll(self.offset_of(slot))

    def read_slot(self, slot: int) -> tuple[Any, int]:
        """Return the ``(payload, nbytes)`` occupying ``slot``."""
        return self.region.load(self.offset_of(slot))

    def release_slot(self, slot: int) -> None:
        """Mark ``slot`` writable again after processing."""
        self.region.clear(self.offset_of(slot))

    def reset(self) -> None:
        """Drop every undelivered buffer (channel teardown after a fault)."""
        for offset in list(self.region.occupied_offsets()):
            self.region.clear(offset)
