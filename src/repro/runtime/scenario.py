"""Declarative scenarios: one spec, one entry point, every engine.

A :class:`Scenario` fully describes a run — engine name, workload name,
topology, engine knobs, cost strategy, seed, and the optional sanitizer
/ fault attachments — as plain picklable data.  :func:`run_scenario`
resolves it against the :data:`~repro.runtime.registry.REGISTRY` and
returns the shared :class:`~repro.core.engine.RunResult` envelope, so
experiment figures, the parallel sweep runner, the sanitizer, and the
chaos harness all execute runs the same way.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from repro.common.errors import CapabilityError, ConfigError
from repro.common.suggest import unknown_name_message
from repro.core.engine import RunResult
from repro.runtime.registry import REGISTRY
from repro.workloads.base import Workload
from repro.workloads.cluster_monitoring import ClusterMonitoringWorkload
from repro.workloads.nexmark import (
    Nexmark7Workload,
    Nexmark8Workload,
    Nexmark11Workload,
)
from repro.workloads.readonly import ReadOnlyWorkload
from repro.workloads.traffic import SessionizedWorkload
from repro.workloads.ysb import YsbWorkload

#: Simulation-scale workload parameter presets (see EXPERIMENTS.md).
#: The paper streams 1 GB per thread; we scale volumes down — simulated
#: rates are volume-independent once the run reaches steady state.
WORKLOADS: dict[str, Callable[..., Workload]] = {
    "ysb": lambda **kw: YsbWorkload(
        **{"records_per_thread": 2500, "key_range": 100_000, "batch_records": 500, **kw}
    ),
    "cm": lambda **kw: ClusterMonitoringWorkload(
        **{"records_per_thread": 2500, "jobs": 50_000, "batch_records": 500, **kw}
    ),
    "nb7": lambda **kw: Nexmark7Workload(
        **{"records_per_thread": 2500, "key_range": 100_000, "batch_records": 500, **kw}
    ),
    "nb8": lambda **kw: Nexmark8Workload(
        **{"records_per_thread": 1000, "sellers": 20_000, "batch_records": 250, **kw}
    ),
    "nb11": lambda **kw: Nexmark11Workload(
        **{"records_per_thread": 1000, "sellers": 10_000, "batch_records": 250, **kw}
    ),
    "ro": lambda **kw: ReadOnlyWorkload(
        **{"records_per_thread": 60_000, "key_range": 100_000, "batch_records": 4000, **kw}
    ),
    "sessions": lambda **kw: SessionizedWorkload(
        **{"records_per_thread": 2500, "users": 50_000, "batch_records": 250, **kw}
    ),
}

#: Named cost strategies for the compiled-vs-interpreted ablation.
STRATEGIES = ("compiled", "interpreted")


def make_workload(name: str, **overrides: Any) -> Workload:
    """Build a registered workload at bench scale, with overrides."""
    try:
        factory = WORKLOADS[name]
    except KeyError:
        raise ConfigError(
            unknown_name_message("workload", name, sorted(WORKLOADS))
        ) from None
    return factory(**overrides)


def resolve_strategy(name: str):
    """Map a strategy name to a cost table."""
    from repro.core.costs import DEFAULT_SLASH_COSTS, interpreted

    if name == "compiled":
        return DEFAULT_SLASH_COSTS
    if name == "interpreted":
        return interpreted()
    raise ConfigError(f"unknown cost strategy {name!r}")


@dataclass
class Scenario:
    """One declarative run: engine + workload + topology + knobs + seed.

    Everything is plain data (strings, ints, dicts, and — for chaos
    scenarios — a picklable FaultPlan), so a Scenario can cross a
    process-pool boundary and be reconstructed from its ``params()``.
    """

    engine: str
    workload: str
    nodes: int = 1
    threads: int = 2
    workload_overrides: dict = field(default_factory=dict)
    engine_overrides: dict = field(default_factory=dict)
    #: Named cost strategy ("compiled"/"interpreted"); ``None`` keeps the
    #: engine's default cost table.
    strategy: Optional[str] = None
    #: Workload generator seed; ``None`` keeps each generator's default.
    seed: Optional[int] = None
    sanitize: bool = False
    fault_plan: Any = None
    fault_overrides: dict = field(default_factory=dict)
    #: How the engine recovers from control-plane faults ("epoch-buddy"
    #: or "async-snapshot"); ``None`` keeps the engine's default.
    recovery_strategy: Optional[str] = None
    #: Simulated instant a live rescale starts; ``None`` means static.
    rescale_at: Optional[float] = None
    #: Live-migration strategy ("all-at-once" or Megaphone-style "fluid").
    migration_strategy: str = "fluid"
    #: Extra ElasticPlan fields (action, add_nodes, drain_node,
    #: fluid_ranges, fluid_spread, autoscale, autoscale_overrides).
    rescale_overrides: dict = field(default_factory=dict)
    #: Declared p99 latency SLO; setting it arms the overload plane.
    slo_p99_ms: Optional[float] = None
    #: Shedding policy ("drop-oldest"/"probabilistic"/"fair"); ``None``
    #: paces and measures without shedding.
    shed_policy: Optional[str] = None
    #: Extra OverloadConfig fields (ingest_rate_records_per_s, tenants,
    #: flash_at_frac, mitigation, ...).
    overload_overrides: dict = field(default_factory=dict)

    def params(self) -> dict:
        """The picklable dict form used by parallel sweep cells."""
        return {
            "engine": self.engine,
            "workload": self.workload,
            "nodes": self.nodes,
            "threads": self.threads,
            "workload_overrides": dict(self.workload_overrides),
            "engine_overrides": dict(self.engine_overrides),
            "strategy": self.strategy,
            "seed": self.seed,
            "sanitize": self.sanitize,
            "fault_plan": self.fault_plan,
            "fault_overrides": dict(self.fault_overrides),
            "recovery_strategy": self.recovery_strategy,
            "rescale_at": self.rescale_at,
            "migration_strategy": self.migration_strategy,
            "rescale_overrides": dict(self.rescale_overrides),
            "slo_p99_ms": self.slo_p99_ms,
            "shed_policy": self.shed_policy,
            "overload_overrides": dict(self.overload_overrides),
        }

    @property
    def is_elastic(self) -> bool:
        """Whether this scenario schedules a live rescale."""
        return self.rescale_at is not None or bool(
            self.rescale_overrides.get("autoscale")
        )

    @property
    def is_overload(self) -> bool:
        """Whether this scenario arms source-level admission control."""
        return (
            self.slo_p99_ms is not None
            or self.shed_policy is not None
            or bool(self.overload_overrides)
        )


def run_scenario(spec: Scenario) -> RunResult:
    """Execute one scenario through the registry and generic hooks."""
    workload_overrides = dict(spec.workload_overrides)
    if spec.seed is not None:
        workload_overrides.setdefault("seed", spec.seed)
    workload = make_workload(spec.workload, **workload_overrides)

    engine_overrides = dict(spec.engine_overrides)
    if spec.strategy is not None:
        engine_overrides["costs"] = resolve_strategy(spec.strategy)
    engine = REGISTRY.create(spec.engine, spec.nodes, **engine_overrides)
    if spec.sanitize:
        engine.attach_sanitizer()
    if spec.fault_plan is not None:
        engine.attach_faults(
            spec.fault_plan, spec.fault_overrides,
            strategy=spec.recovery_strategy,
        )
    if spec.is_elastic:
        from repro.core.system import CAP_ELASTIC
        from repro.elastic.plan import ElasticPlan

        elastic_capable = sorted(
            name
            for name in REGISTRY.names()
            if CAP_ELASTIC in REGISTRY.spec(name).capabilities
        )
        if CAP_ELASTIC not in REGISTRY.spec(spec.engine).capabilities:
            raise CapabilityError(
                f"engine {spec.engine!r} cannot rescale live "
                f"(rescale_at={spec.rescale_at!r}); elastic-capable "
                f"engines: {elastic_capable}"
            )
        engine.attach_elastic(
            ElasticPlan(
                rescale_at=spec.rescale_at,
                strategy=spec.migration_strategy,
                **spec.rescale_overrides,
            )
        )
    if spec.is_overload:
        from repro.core.system import CAP_OVERLOAD
        from repro.overload.config import OverloadConfig

        overload_capable = sorted(
            name
            for name in REGISTRY.names()
            if CAP_OVERLOAD in REGISTRY.spec(name).capabilities
        )
        if CAP_OVERLOAD not in REGISTRY.spec(spec.engine).capabilities:
            raise CapabilityError(
                f"engine {spec.engine!r} has no overload plane "
                f"(slo_p99_ms={spec.slo_p99_ms!r}, "
                f"shed_policy={spec.shed_policy!r}); overload-capable "
                f"engines: {overload_capable}"
            )
        overload_fields = dict(spec.overload_overrides)
        if spec.slo_p99_ms is not None:
            overload_fields.setdefault("slo_p99_ms", spec.slo_p99_ms)
        if spec.shed_policy is not None:
            overload_fields.setdefault("shed_policy", spec.shed_policy)
        if spec.seed is not None:
            overload_fields.setdefault("seed", spec.seed)
        engine.attach_overload(OverloadConfig(**overload_fields))

    flows = workload.flows(spec.nodes, spec.threads)
    return engine.run(workload.build_query(), flows)
