"""One result differ for every comparison path in the repo.

Three callers used to hand-roll result comparison — the experiment
harness (``_compare_aggregates``), the sanitizer's differential oracle,
and the chaos zero-lost-results check.  They all go through here now:
:func:`diff_aggregates` for the raw key-level comparison and
:func:`diff_results` for whole :class:`~repro.core.engine.RunResult`
envelopes (aggregation *or* join queries).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field


def diff_aggregates(expected: dict, actual: dict) -> tuple[list, list, list]:
    """``(missing, extra, mismatched)`` keys between two result sets.

    Integer aggregates (YSB counts) must match exactly; float aggregates
    tolerate ULP-level drift, because recovery replays merges in a
    different order and float addition is not associative.
    """
    missing = [key for key in expected if key not in actual]
    extra = [key for key in actual if key not in expected]
    mismatched = []
    for key, want in expected.items():
        if key not in actual:
            continue
        got = actual[key]
        if isinstance(want, float) or isinstance(got, float):
            ok = math.isclose(want, got, rel_tol=1e-9, abs_tol=1e-12)
        else:
            ok = want == got
        if not ok:
            mismatched.append(key)
    return missing, extra, mismatched


@dataclass
class ResultDiff:
    """The outcome of comparing one run's output against another's."""

    #: Which output the comparison inspected: "aggregates" or "join_pairs".
    kind: str
    missing: list = field(default_factory=list)
    extra: list = field(default_factory=list)
    mismatched: list = field(default_factory=list)
    expected_pairs: int = 0
    got_pairs: int = 0
    pairs_equal: bool = True

    @property
    def ok(self) -> bool:
        if self.kind == "join_pairs":
            return self.pairs_equal
        return not (self.missing or self.extra or self.mismatched)

    def describe(self) -> str:
        """A one-line human summary of the divergence (empty when ok)."""
        if self.ok:
            return ""
        if self.kind == "join_pairs":
            return (
                f"join outputs differ — expected {self.expected_pairs} "
                f"pairs, got {self.got_pairs}"
            )
        examples = (self.missing + self.extra + self.mismatched)[:3]
        return (
            f"aggregates differ — {len(self.missing)} missing, "
            f"{len(self.extra)} extra, {len(self.mismatched)} mismatched "
            f"(e.g. {examples})"
        )


def diff_results(expected, actual) -> ResultDiff:
    """Compare two result envelopes (RunResult / ReferenceOutput).

    Aggregation queries compare the ``(window, key) → value`` dict;
    join queries compare the canonically sorted pair lists.
    """
    if expected.aggregates:
        missing, extra, mismatched = diff_aggregates(
            expected.aggregates, actual.aggregates
        )
        return ResultDiff(
            kind="aggregates",
            missing=missing,
            extra=extra,
            mismatched=mismatched,
        )
    want = expected.sorted_join_pairs()
    got = actual.sorted_join_pairs()
    return ResultDiff(
        kind="join_pairs",
        expected_pairs=len(want),
        got_pairs=len(got),
        pairs_equal=want == got,
    )
