"""The unified StreamSystem runtime.

One layer between the engines and the harness:

* :mod:`repro.runtime.registry` — name → engine factory with capability
  flags (:data:`REGISTRY` holds Slash, UpPar, Flink, LightSaber, and the
  sequential reference oracle);
* :mod:`repro.runtime.scenario` — the declarative :class:`Scenario` spec
  and the single :func:`run_scenario` entry point;
* :mod:`repro.runtime.oracle` — the one result differ shared by the
  experiment figures, the sanitizer, and the chaos harness;
* :mod:`repro.runtime.system` — the :class:`StreamSystem` protocol and
  the capability vocabulary.
"""

from repro.runtime.oracle import ResultDiff, diff_aggregates, diff_results
from repro.runtime.registry import (
    BENCH_EPOCH_BYTES,
    EngineRegistry,
    EngineSpec,
    REGISTRY,
)
from repro.runtime.scenario import (
    Scenario,
    STRATEGIES,
    WORKLOADS,
    make_workload,
    resolve_strategy,
    run_scenario,
)
from repro.runtime.system import (
    ALL_CAPABILITIES,
    CAP_CRASH_RECOVERY,
    CAP_ELASTIC,
    CAP_FAULT_INJECTION,
    CAP_JOINS,
    CAP_OVERLOAD,
    CAP_SANITIZE,
    CAP_SCALE_OUT,
    CAP_SESSION_WINDOWS,
    CAP_TRANSFER_BENCH,
    MIGRATION_STRATEGIES,
    RECOVERY_STRATEGIES,
    SHED_POLICIES,
    STRATEGY_ASYNC_SNAPSHOT,
    STRATEGY_EPOCH_BUDDY,
    StreamSystem,
    SystemHooks,
)

__all__ = [
    "ALL_CAPABILITIES",
    "BENCH_EPOCH_BYTES",
    "CAP_CRASH_RECOVERY",
    "CAP_ELASTIC",
    "CAP_FAULT_INJECTION",
    "CAP_JOINS",
    "CAP_OVERLOAD",
    "CAP_SANITIZE",
    "CAP_SCALE_OUT",
    "CAP_SESSION_WINDOWS",
    "CAP_TRANSFER_BENCH",
    "EngineRegistry",
    "EngineSpec",
    "MIGRATION_STRATEGIES",
    "RECOVERY_STRATEGIES",
    "REGISTRY",
    "ResultDiff",
    "Scenario",
    "SHED_POLICIES",
    "STRATEGIES",
    "STRATEGY_ASYNC_SNAPSHOT",
    "STRATEGY_EPOCH_BUDDY",
    "StreamSystem",
    "SystemHooks",
    "WORKLOADS",
    "diff_aggregates",
    "diff_results",
    "make_workload",
    "resolve_strategy",
    "run_scenario",
]
