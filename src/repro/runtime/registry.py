"""The engine registry: one name → factory table for every system.

Replaces the if/elif chains that used to live in ``harness/runner.py``
and ``harness/parallel.py``.  Each entry carries the engine's capability
flags, so sweeps and the chaos/sanitize harnesses can gate features
(`fault injection on LightSaber`) *before* a run starts, and the CLI can
suggest close names on typos.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Optional

from repro.baselines.flink import FlinkEngine
from repro.baselines.lightsaber import LightSaberEngine
from repro.baselines.reference import SequentialReference
from repro.baselines.uppar import UpParEngine
from repro.common.config import paper_cluster
from repro.common.errors import CapabilityError, ConfigError
from repro.common.suggest import unknown_name_message
from repro.core.engine import SlashEngine
from repro.core.system import CAP_TRANSFER_BENCH

# Epoch length for simulation-scale end-to-end runs; keeps the paper's
# roughly 1/16-of-per-thread-input proportion at scaled volumes.
BENCH_EPOCH_BYTES = 128 * 1024


@dataclass(frozen=True)
class EngineSpec:
    """One registry entry: how to build an engine, and what it can do."""

    name: str
    factory: Callable[..., Any]
    capabilities: frozenset
    description: str
    #: Optional raw-transfer micro-bench constructor (Fig. 8/9 drill-downs).
    transfer_factory: Optional[Callable[..., Any]] = None


class EngineRegistry:
    """Name → :class:`EngineSpec`, with capability gating and suggestions."""

    def __init__(self):
        self._specs: dict[str, EngineSpec] = {}

    def register(self, spec: EngineSpec) -> EngineSpec:
        if spec.name in self._specs:
            raise ConfigError(f"engine {spec.name!r} registered twice")
        self._specs[spec.name] = spec
        return spec

    def names(self) -> tuple[str, ...]:
        """Registered engine names, in registration order."""
        return tuple(self._specs)

    def spec(self, name: str) -> EngineSpec:
        """Look up one entry; unknown names get a did-you-mean error."""
        try:
            return self._specs[name]
        except KeyError:
            raise ConfigError(
                unknown_name_message("system", name, self.names())
            ) from None

    def require(self, name: str, *capabilities: str) -> EngineSpec:
        """Like :meth:`spec`, but also demand capability flags up front."""
        spec = self.spec(name)
        missing = set(capabilities) - spec.capabilities
        if missing:
            raise CapabilityError(
                f"engine {name!r} lacks required capability "
                f"{sorted(missing)}; has: {sorted(spec.capabilities)}"
            )
        return spec

    def create(self, name: str, nodes: int = 1, **overrides: Any):
        """Construct engine ``name`` for an ``nodes``-node deployment."""
        return self.spec(name).factory(nodes, **overrides)

    def transfer_bench(self, name: str, **bench_kwargs: Any):
        """Construct the engine's raw-transfer micro-benchmark."""
        spec = self.require(name, CAP_TRANSFER_BENCH)
        if spec.transfer_factory is None:
            raise CapabilityError(
                f"engine {name!r} has no transfer benchmark registered"
            )
        return spec.transfer_factory(**bench_kwargs)


def _make_slash(nodes: int, **overrides: Any) -> SlashEngine:
    return SlashEngine(
        cluster_config=paper_cluster(max(nodes, 1)),
        epoch_bytes=overrides.pop("epoch_bytes", BENCH_EPOCH_BYTES),
        **overrides,
    )


def _make_uppar(nodes: int, **overrides: Any) -> UpParEngine:
    return UpParEngine(cluster_config=paper_cluster(max(nodes, 1)), **overrides)


def _make_flink(nodes: int, **overrides: Any) -> FlinkEngine:
    return FlinkEngine(cluster_config=paper_cluster(max(nodes, 1)), **overrides)


def _make_lightsaber(nodes: int, **overrides: Any) -> LightSaberEngine:
    # Scale-up engine: always one (big) node, whatever the sweep asks.
    return LightSaberEngine(cluster_config=paper_cluster(1), **overrides)


def _make_reference(nodes: int, **overrides: Any) -> SequentialReference:
    return SequentialReference(**overrides)


def _slash_transfer(**kwargs: Any):
    from repro.baselines.transfer import SlashTransferBench

    return SlashTransferBench(**kwargs)


def _uppar_transfer(**kwargs: Any):
    from repro.baselines.transfer import UpParTransferBench

    return UpParTransferBench(**kwargs)


#: The process-wide registry.  Registration order fixes the display
#: order of ``SYSTEMS`` sweeps (benchmark systems first, oracle last).
REGISTRY = EngineRegistry()
REGISTRY.register(
    EngineSpec(
        name="flink",
        factory=_make_flink,
        capabilities=FlinkEngine.capabilities,
        description="scale-out baseline over IPoIB (TCP-shaped) channels",
    )
)
REGISTRY.register(
    EngineSpec(
        name="uppar",
        factory=_make_uppar,
        capabilities=UpParEngine.capabilities,
        description="upfront-partitioning baseline over RDMA channels",
        transfer_factory=_uppar_transfer,
    )
)
REGISTRY.register(
    EngineSpec(
        name="slash",
        factory=_make_slash,
        capabilities=SlashEngine.capabilities,
        description="the paper's engine: shared state over one-sided RDMA",
        transfer_factory=_slash_transfer,
    )
)
REGISTRY.register(
    EngineSpec(
        name="lightsaber",
        factory=_make_lightsaber,
        capabilities=LightSaberEngine.capabilities,
        description="single-node scale-up SPE (NUMA-aware, no network)",
    )
)
REGISTRY.register(
    EngineSpec(
        name="reference",
        factory=_make_reference,
        capabilities=SequentialReference.capabilities,
        description="sequential ground-truth oracle (property P2)",
    )
)
