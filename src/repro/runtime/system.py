"""The ``StreamSystem`` protocol — the contract every engine satisfies.

An engine is anything the registry can construct that runs a query over
a set of flows and returns a :class:`~repro.core.engine.RunResult`.  The
attach hooks come from :class:`~repro.core.system.SystemHooks`; this
module re-exports the capability vocabulary so runtime callers never
need to import from ``core`` directly.
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

from repro.core.system import (  # noqa: F401  (re-exported vocabulary)
    ALL_CAPABILITIES,
    CAP_CRASH_RECOVERY,
    CAP_ELASTIC,
    CAP_FAULT_INJECTION,
    CAP_JOINS,
    CAP_OVERLOAD,
    CAP_SANITIZE,
    CAP_SCALE_OUT,
    CAP_SESSION_WINDOWS,
    CAP_TRANSFER_BENCH,
    MIGRATION_STRATEGIES,
    RECOVERY_STRATEGIES,
    SHED_POLICIES,
    SHED_POLICY_DROP_OLDEST,
    SHED_POLICY_FAIR,
    SHED_POLICY_PROBABILISTIC,
    STRATEGY_ASYNC_SNAPSHOT,
    STRATEGY_EPOCH_BUDDY,
    SystemHooks,
)


@runtime_checkable
class StreamSystem(Protocol):
    """What every registered engine exposes to the runtime."""

    name: str
    capabilities: frozenset
    supported_fault_kinds: frozenset

    def run(self, query, flows):
        """Execute ``query`` over ``flows``; return a RunResult."""

    def attach_sanitizer(self):
        """Arm runtime invariant checking; raises CapabilityError."""

    def attach_faults(self, plan, overrides=None):
        """Arm a chaos schedule; raises CapabilityError."""
