"""Every Sec. 8 table/figure of the paper as a registered sweep grid.

Each grid here replaces one hand-rolled function from
``harness/experiments.py``: the axes spell out the sweep the function's
nested loops used to encode, the cell template routes every point
through :class:`~repro.runtime.Scenario` (so sanitizer/fault/elastic/
overload hooks attach uniformly — no more per-figure cell builders
bypassing the scenario layer), and the report function reproduces the
original rendering byte for byte from the in-order results.

The ``harness.experiments`` figure functions survive as thin wrappers
over :func:`repro.grid.run_grid` on these grids, keeping their
signatures for tests and notebooks.
"""

from __future__ import annotations

from repro.common.units import fmt_rate, fmt_rate_records, fmt_time
from repro.core.system import CAP_SCALE_OUT, CAP_TRANSFER_BENCH
from repro.grid.cells import end_to_end_scenario_cell, transfer_cell
from repro.grid.registry import register_grid
from repro.grid.spec import EngineSet, GridRun, SweepGrid
from repro.metrics.breakdown import breakdown_table, table1_row
from repro.metrics.reporting import Report, TextTable, format_si
from repro.runtime.registry import BENCH_EPOCH_BYTES

# The measured link ceiling the paper draws as the red line in Fig. 8.
LINK_BANDWIDTH = 11.8e9

#: The scale-out engine axis of the weak-scaling figures; resolves to
#: (flink, uppar, slash) in registry order.
SCALE_OUT_ENGINES = EngineSet(capabilities=(CAP_SCALE_OUT,))

#: The RDMA transfer-bench pair of the Fig. 8/9 drill-downs, in the
#: paper's display order (Slash first).
TRANSFER_ENGINES = EngineSet(
    include=("slash", "uppar"), capabilities=(CAP_TRANSFER_BENCH,)
)


# ---------------------------------------------------------------------------
# Fig. 6: end-to-end weak scaling
# ---------------------------------------------------------------------------

def _fig6_cell(point: dict, fixed: dict):
    return end_to_end_scenario_cell(
        point["system"], point["workload"], point["nodes"], fixed["threads"],
        workload_overrides=fixed["workload_overrides"],
    )


def _fig6_report(run: GridRun) -> Report:
    name = run.grid.title
    systems = run.axis("system")
    report = Report(name)
    results = run.iter_results()
    for workload_name in run.axis("workload"):
        table = TextTable(
            f"{name}: {workload_name} throughput (records/s), weak scaling",
            ["nodes"] + [f"{s}" for s in systems] + ["slash/uppar", "slash/flink"],
        )
        for nodes in run.axis("nodes"):
            throughputs = {}
            for system in systems:
                row = next(results)
                throughputs[system] = row.throughput_records_per_s
                report.rows.append(
                    {
                        "figure": name,
                        "workload": workload_name,
                        "system": system,
                        "nodes": nodes,
                        "throughput": row.throughput_records_per_s,
                    }
                )
            cells = [format_si(throughputs[s], "rec/s") for s in systems]
            ratio_uppar = (
                f"{throughputs.get('slash', 0) / throughputs['uppar']:.1f}x"
                if "uppar" in throughputs and throughputs["uppar"]
                else "-"
            )
            ratio_flink = (
                f"{throughputs.get('slash', 0) / throughputs['flink']:.1f}x"
                if "flink" in throughputs and throughputs["flink"]
                else "-"
            )
            table.add_row(nodes, *cells, ratio_uppar, ratio_flink)
        report.tables.append(table)
    return report


register_grid(SweepGrid(
    name="fig6a-c",
    title="fig6a-c (aggregations)",
    description="YSB/CM/NB7 windowed aggregations, weak scaling",
    aliases=("fig6a", "fig6b", "fig6c"),
    axes=(
        ("workload", ("ysb", "cm", "nb7")),
        ("nodes", (2, 4, 8, 16)),
        ("system", SCALE_OUT_ENGINES),
    ),
    fixed={"threads": 10, "workload_overrides": None},
    cell=_fig6_cell,
    report=_fig6_report,
))

register_grid(SweepGrid(
    name="fig6d-e",
    title="fig6d-e (joins)",
    description="NB8/NB11 windowed joins, weak scaling",
    aliases=("fig6d", "fig6e"),
    axes=(
        ("workload", ("nb8", "nb11")),
        ("nodes", (2, 4, 8, 16)),
        ("system", SCALE_OUT_ENGINES),
    ),
    fixed={"threads": 10, "workload_overrides": None},
    cell=_fig6_cell,
    report=_fig6_report,
))


# ---------------------------------------------------------------------------
# Fig. 7: COST analysis against LightSaber
# ---------------------------------------------------------------------------

def _fig7_cell(point: dict, fixed: dict):
    # "L" is the scale-up baseline point: LightSaber on one (big) node.
    if point["nodes"] == "L":
        return end_to_end_scenario_cell(
            "lightsaber", point["workload"], 1, fixed["threads"],
            workload_overrides=fixed["workload_overrides"],
        )
    return end_to_end_scenario_cell(
        "slash", point["workload"], point["nodes"], fixed["threads"],
        workload_overrides=fixed["workload_overrides"],
    )


def _fig7_report(run: GridRun) -> Report:
    report = Report("fig7 (COST vs LightSaber)")
    node_counts = [n for n in run.axis("nodes") if n != "L"]
    results = run.iter_results()
    for workload_name in run.axis("workload"):
        table = TextTable(
            f"fig7: {workload_name} (L = LightSaber, 1 node)",
            ["config", "throughput", "vs L"],
        )
        baseline = next(results)
        table.add_row("L", format_si(baseline.throughput_records_per_s, "rec/s"), "1.0x")
        report.rows.append(
            {"figure": "fig7", "workload": workload_name, "system": "lightsaber",
             "nodes": 1, "throughput": baseline.throughput_records_per_s}
        )
        for nodes in node_counts:
            row = next(results)
            speedup = row.throughput_records_per_s / baseline.throughput_records_per_s
            table.add_row(
                f"slash x{nodes}",
                format_si(row.throughput_records_per_s, "rec/s"),
                f"{speedup:.1f}x",
            )
            report.rows.append(
                {"figure": "fig7", "workload": workload_name, "system": "slash",
                 "nodes": nodes, "throughput": row.throughput_records_per_s,
                 "speedup_vs_lightsaber": speedup}
            )
        report.tables.append(table)
    return report


register_grid(SweepGrid(
    name="fig7",
    description="COST analysis vs LightSaber",
    axes=(
        ("workload", ("ysb", "cm", "nb7")),
        ("nodes", ("L", 2, 4, 8, 16)),
    ),
    fixed={"threads": 10, "workload_overrides": None},
    cell=_fig7_cell,
    report=_fig7_report,
))


# ---------------------------------------------------------------------------
# Fig. 8: drill-down on the data plane
# ---------------------------------------------------------------------------

def _fig8ab_cell(point: dict, fixed: dict):
    return transfer_cell(
        point["system"],
        workload_overrides={"records_per_thread": fixed["records_per_thread"]},
        threads=fixed["threads"], buffer_bytes=point["buffer"],
    )


def _fig8ab_report(run: GridRun) -> Report:
    threads = run.fixed["threads"]
    report = Report("fig8a-b (buffer size)")
    table = TextTable(
        f"fig8a/b: RO over 1 NIC, {threads} threads "
        f"(red line = {fmt_rate(LINK_BANDWIDTH)})",
        ["buffer", "system", "throughput", "% of link", "latency"],
    )
    results = run.iter_results()
    for buffer_bytes in run.axis("buffer"):
        for system in run.axis("system"):
            result = next(results)
            table.add_row(
                format_si(buffer_bytes, "B", digits=0),
                system,
                fmt_rate(result.throughput_bytes_per_s),
                f"{result.throughput_bytes_per_s / LINK_BANDWIDTH * 100:.1f}%",
                fmt_time(result.mean_latency_s),
            )
            report.rows.append(
                {"figure": "fig8ab", "system": system, "buffer_bytes": buffer_bytes,
                 "throughput_bytes_per_s": result.throughput_bytes_per_s,
                 "mean_latency_s": result.mean_latency_s}
            )
    report.tables.append(table)
    return report


register_grid(SweepGrid(
    name="fig8ab",
    description="RO throughput/latency vs channel buffer size",
    aliases=("fig8a", "fig8b"),
    axes=(
        ("buffer", (4096, 16384, 32768, 65536, 131072, 262144, 524288, 1048576)),
        ("system", TRANSFER_ENGINES),
    ),
    fixed={"threads": 2, "records_per_thread": 150_000},
    cell=_fig8ab_cell,
    report=_fig8ab_report,
))


def _fig8c_cell(point: dict, fixed: dict):
    return transfer_cell(
        point["system"],
        workload_overrides={"records_per_thread": fixed["records_per_thread"]},
        threads=point["threads"], buffer_bytes=fixed["buffer_bytes"],
    )


def _fig8c_report(run: GridRun) -> Report:
    report = Report("fig8c (parallelism)")
    table = TextTable(
        f"fig8c: RO over 1 NIC, 64 KiB buffers (link = {fmt_rate(LINK_BANDWIDTH)})",
        ["threads", "system", "throughput", "% of link"],
    )
    results = run.iter_results()
    for threads in run.axis("threads"):
        for system in run.axis("system"):
            result = next(results)
            table.add_row(
                threads,
                system,
                fmt_rate(result.throughput_bytes_per_s),
                f"{result.throughput_bytes_per_s / LINK_BANDWIDTH * 100:.1f}%",
            )
            report.rows.append(
                {"figure": "fig8c", "system": system, "threads": threads,
                 "throughput_bytes_per_s": result.throughput_bytes_per_s}
            )
    report.tables.append(table)
    return report


register_grid(SweepGrid(
    name="fig8c",
    description="RO throughput vs thread count",
    axes=(
        ("threads", (1, 2, 4, 6, 8, 10)),
        ("system", TRANSFER_ENGINES),
    ),
    fixed={"buffer_bytes": 65536, "records_per_thread": 120_000},
    cell=_fig8c_cell,
    report=_fig8c_report,
))


def _fig8d_cell(point: dict, fixed: dict):
    if point["workload"] == "ro":
        return transfer_cell(
            point["system"],
            workload_overrides={
                "zipf_z": point["z"],
                "records_per_thread": fixed["records_per_thread"],
            },
            threads=fixed["threads"], buffer_bytes=fixed["buffer_bytes"],
        )
    # The stateful-query half of Fig. 8d: skew helps Slash (smaller
    # state to keep hot and to merge) and starves the hash-partitioned
    # shape (one hot consumer).
    return end_to_end_scenario_cell(
        point["system"], "ysb", 2, fixed["threads"],
        workload_overrides={
            "zipf_z": point["z"],
            "key_range": 1_000_000,
            "records_per_thread": max(4_000, fixed["records_per_thread"] // 10),
            "batch_records": 800,
        },
    )


def _fig8d_report(run: GridRun) -> Report:
    report = Report("fig8d (data skewness)")
    table = TextTable(
        "fig8d: throughput vs Zipf z (RO transfer in GB/s; YSB end-to-end "
        "on 2 nodes in records/s)",
        ["workload", "z", "system", "throughput"],
    )
    results = run.iter_results()
    for workload_name in run.axis("workload"):
        for z in run.axis("z"):
            for system in run.axis("system"):
                if workload_name == "ro":
                    result = next(results)
                    bytes_per_s = result.throughput_bytes_per_s
                    records_per_s = result.throughput_records_per_s
                    value = fmt_rate(bytes_per_s)
                else:
                    row = next(results)
                    bytes_per_s = row.throughput_records_per_s * 78
                    records_per_s = row.throughput_records_per_s
                    value = fmt_rate_records(records_per_s)
                table.add_row(workload_name, z, system, value)
                report.rows.append(
                    {"figure": "fig8d", "workload": workload_name, "system": system,
                     "z": z,
                     "throughput_bytes_per_s": bytes_per_s,
                     "throughput_records_per_s": records_per_s}
                )
    report.tables.append(table)
    return report


register_grid(SweepGrid(
    name="fig8d",
    description="throughput vs Zipf key skew (RO + YSB)",
    axes=(
        ("workload", ("ro", "ysb")),
        ("z", (0.2, 0.6, 1.0, 1.4, 1.8, 2.0)),
        ("system", EngineSet(
            include=("slash", "uppar"),
            capabilities=(CAP_TRANSFER_BENCH, CAP_SCALE_OUT),
        )),
    ),
    fixed={"threads": 10, "buffer_bytes": 65536, "records_per_thread": 60_000},
    cell=_fig8d_cell,
    report=_fig8d_report,
))


# ---------------------------------------------------------------------------
# Figs. 9-10 and Table 1: micro-architecture analysis
# ---------------------------------------------------------------------------

def _fig9_cell(point: dict, fixed: dict):
    return transfer_cell(
        point["system"],
        workload_overrides={"records_per_thread": fixed["records_per_thread"]},
        threads=point["threads"], buffer_bytes=fixed["buffer_bytes"],
    )


def _fig9_report(run: GridRun) -> Report:
    report = Report("fig9 (execution breakdown, RO)")
    results = run.iter_results()
    for threads in run.axis("threads"):
        rows = {}
        for system in run.axis("system"):
            result = next(results)
            rows[f"{system} sender ({threads}T)"] = result.sender_counters
            rows[f"{system} receiver ({threads}T)"] = result.receiver_counters
            report.rows.append(
                {"figure": "fig9", "system": system, "threads": threads,
                 "sender": result.sender_counters.breakdown(),
                 "receiver": result.receiver_counters.breakdown()}
            )
        report.tables.append(
            breakdown_table(f"fig9: RO top-down breakdown, {threads} threads", rows)
        )
    return report


register_grid(SweepGrid(
    name="fig9",
    description="top-down breakdown of RO (senders/receivers)",
    axes=(
        ("threads", (2, 10)),
        ("system", EngineSet(
            include=("uppar", "slash"), capabilities=(CAP_TRANSFER_BENCH,)
        )),
    ),
    fixed={"buffer_bytes": 65536, "records_per_thread": 120_000},
    cell=_fig9_cell,
    report=_fig9_report,
))


def _ysb_two_node_cell(point: dict, fixed: dict):
    """The shared Fig. 10 / Table 1 cell: end-to-end YSB on two nodes.

    Routed through :class:`~repro.runtime.Scenario` like every other
    grid cell, so the sanitizer/fault hooks attach uniformly here too.
    """
    return end_to_end_scenario_cell(
        point["system"], "ysb", 2, fixed["threads"],
        workload_overrides={
            "records_per_thread": fixed["records_per_thread"],
            "batch_records": 800,
        },
    )


def _fig10_report(run: GridRun) -> Report:
    report = Report("fig10 (execution breakdown, YSB)")
    busy_rows = {}
    full_rows = {}
    results = run.iter_results()
    for system in run.axis("system"):
        result = next(results)
        counters = {
            f"{system} ({role})" if role == "whole" else f"{system} {role}": c
            for role, c in result.counter_roles().items()
        }
        for label, c in counters.items():
            busy_rows[label] = c
            full_rows[label] = c
        report.rows.append(
            {
                "figure": "fig10",
                "system": system,
                "busy": {
                    label: c.breakdown(exclude_wait=True)
                    for label, c in counters.items()
                },
                "full": {label: c.breakdown() for label, c in counters.items()},
            }
        )
    busy_table = TextTable(
        "fig10: YSB busy-cycle breakdown (spin waits excluded)",
        ["who", "Retiring%", "FeB%", "BadS%", "MemB%", "CoreB%"],
    )
    for label, c in busy_rows.items():
        shares = c.breakdown(exclude_wait=True)
        busy_table.add_row(
            label,
            *(f"{shares[cat] * 100:.1f}" for cat in list(shares)),
        )
    report.tables.append(busy_table)
    report.tables.append(
        breakdown_table("fig10: YSB full breakdown (waits as core-bound)", full_rows)
    )
    return report


register_grid(SweepGrid(
    name="fig10",
    description="top-down breakdown of end-to-end YSB",
    axes=(
        ("system", EngineSet(
            include=("uppar", "slash"), capabilities=(CAP_SCALE_OUT,)
        )),
    ),
    fixed={"threads": 10, "records_per_thread": 6_000},
    cell=_ysb_two_node_cell,
    report=_fig10_report,
))


def _table1_report(run: GridRun) -> Report:
    report = Report("table1 (resource utilisation, YSB, 2 nodes)")
    table = TextTable(
        "table1: YSB, 2 nodes (busy cycles; Wait% = spin share of total)",
        ["who", "IPC", "Instr/Rec", "Cyc/Rec", "L1d/Rec", "L2d/Rec", "LLC/Rec",
         "Aggr.MemBw", "Wait%"],
    )

    def add(label: str, counters, elapsed: float) -> None:
        row = table1_row(counters, elapsed)
        wait_share = (
            counters.wait_cycles / counters.total_cycles * 100
            if counters.total_cycles
            else 0.0
        )
        table.add_row(
            label,
            f"{row['ipc']:.2f}",
            f"{row['instr_per_rec']:.0f}",
            f"{row['cyc_per_rec']:.0f}",
            f"{row['l1d_miss_per_rec']:.2f}",
            f"{row['l2d_miss_per_rec']:.2f}",
            f"{row['llc_miss_per_rec']:.2f}",
            fmt_rate(row["mem_bw_bytes_per_s"]),
            f"{wait_share:.0f}",
        )
        report.rows.append({"figure": "table1", "who": label, **row})

    results = run.iter_results()
    for system in run.axis("system"):
        result = next(results)
        for role, counters in result.counter_roles().items():
            label = system if role == "whole" else f"{system} {role}"
            add(label, counters, result.sim_seconds)
    report.tables.append(table)
    return report


register_grid(SweepGrid(
    name="table1",
    description="resource utilisation counters, YSB on 2 nodes",
    axes=(
        ("system", EngineSet(
            include=("uppar", "slash"), capabilities=(CAP_SCALE_OUT,)
        )),
    ),
    fixed={"threads": 10, "records_per_thread": 6_000},
    cell=_ysb_two_node_cell,
    report=_table1_report,
))


# ---------------------------------------------------------------------------
# Ablations (claims from the paper's text)
# ---------------------------------------------------------------------------

def _abl_credits_cell(point: dict, fixed: dict):
    return transfer_cell(
        "slash",
        workload_overrides={"records_per_thread": fixed["records_per_thread"]},
        threads=fixed["threads"], buffer_bytes=fixed["buffer_bytes"],
        credits=point["credits"],
    )


def _abl_credits_report(run: GridRun) -> Report:
    report = Report("ablation: channel credits")
    table = TextTable(
        "RO throughput vs credit count (Slash channels)",
        ["credits", "throughput", "vs c=8"],
    )
    cell_results = run.iter_results()
    results = {}
    for credits in run.axis("credits"):
        results[credits] = next(cell_results).throughput_bytes_per_s
    base = results.get(8) or max(results.values())
    for credits in run.axis("credits"):
        table.add_row(
            credits,
            fmt_rate(results[credits]),
            f"{results[credits] / base * 100:.1f}%",
        )
        report.rows.append(
            {"figure": "abl-credits", "credits": credits,
             "throughput_bytes_per_s": results[credits]}
        )
    report.tables.append(table)
    return report


register_grid(SweepGrid(
    name="abl-credits",
    description="ablation: channel credit count",
    axes=(("credits", (4, 8, 16, 64)),),
    fixed={"threads": 2, "buffer_bytes": 65536, "records_per_thread": 120_000},
    cell=_abl_credits_cell,
    report=_abl_credits_report,
))


def _abl_epoch_cell(point: dict, fixed: dict):
    return end_to_end_scenario_cell(
        "slash", "ysb", fixed["nodes"], fixed["threads"],
        engine_overrides={"epoch_bytes": point["epoch_bytes"]},
    )


def _abl_epoch_report(run: GridRun) -> Report:
    report = Report("ablation: SSB epoch length")
    table = TextTable(
        "YSB throughput and trigger lag vs epoch length (Slash end-to-end)",
        ["epoch bytes", "throughput", "sim time", "mean trigger lag"],
    )
    results = run.iter_results()
    for epoch_bytes in run.axis("epoch_bytes"):
        row = next(results)
        lag = row.extra.get("trigger_lag_mean_s", 0.0)
        table.add_row(
            format_si(epoch_bytes, "B", digits=0),
            format_si(row.throughput_records_per_s, "rec/s"),
            fmt_time(row.sim_seconds),
            fmt_time(lag),
        )
        report.rows.append(
            {"figure": "abl-epoch", "epoch_bytes": epoch_bytes,
             "throughput": row.throughput_records_per_s,
             "trigger_lag_mean_s": lag}
        )
    report.tables.append(table)
    return report


register_grid(SweepGrid(
    name="abl-epoch",
    description="ablation: SSB epoch length",
    axes=(("epoch_bytes", (16 * 1024, 64 * 1024, BENCH_EPOCH_BYTES, 1024 * 1024)),),
    fixed={"nodes": 4, "threads": 4},
    cell=_abl_epoch_cell,
    report=_abl_epoch_report,
))


def _abl_exec_cell(point: dict, fixed: dict):
    return end_to_end_scenario_cell(
        "slash", "ysb", fixed["nodes"], fixed["threads"],
        workload_overrides={"records_per_thread": fixed["records_per_thread"]},
        strategy=point["strategy"],
    )


def _abl_exec_report(run: GridRun) -> Report:
    report = Report("ablation: execution strategy")
    table = TextTable(
        "YSB throughput, compiled vs interpreted pipelines (Slash)",
        ["strategy", "throughput", "vs compiled"],
    )
    cell_results = run.iter_results()
    results = {}
    for strategy in run.axis("strategy"):
        results[strategy] = next(cell_results).throughput_records_per_s
    for strategy, throughput in results.items():
        table.add_row(
            strategy,
            format_si(throughput, "rec/s"),
            f"{throughput / results['compiled'] * 100:.0f}%",
        )
        report.rows.append(
            {"figure": "abl-exec", "strategy": strategy, "throughput": throughput}
        )
    report.tables.append(table)
    return report


register_grid(SweepGrid(
    name="abl-exec",
    description="ablation: compiled vs interpreted execution",
    axes=(("strategy", ("compiled", "interpreted")),),
    fixed={"nodes": 4, "threads": 4, "records_per_thread": 2500},
    cell=_abl_exec_cell,
    report=_abl_exec_report,
))


def _extra_latency_cell(point: dict, fixed: dict):
    return end_to_end_scenario_cell(
        point["system"], "ysb", fixed["nodes"], fixed["threads"],
        workload_overrides={
            "records_per_thread": fixed["records_per_thread"],
            "batch_records": 800,
        },
    )


def _extra_latency_report(run: GridRun) -> Report:
    report = Report("extra: window trigger lag (YSB, 2 nodes)")
    table = TextTable(
        "mean / max trigger lag per system",
        ["system", "mean lag", "max lag", "throughput"],
    )
    results = run.iter_results()
    for system in run.axis("system"):
        row = next(results)
        mean_lag = row.extra.get("trigger_lag_mean_s", 0.0)
        max_lag = row.extra.get("trigger_lag_max_s", 0.0)
        table.add_row(
            system,
            fmt_time(mean_lag),
            fmt_time(max_lag),
            format_si(row.throughput_records_per_s, "rec/s"),
        )
        report.rows.append(
            {"figure": "extra-latency", "system": system,
             "trigger_lag_mean_s": mean_lag, "trigger_lag_max_s": max_lag}
        )
    report.tables.append(table)
    report.notes.append(
        "Slash's lag is the price of epoch-lazy merging (tunable via "
        "epoch_bytes, see the epoch ablation); the re-partitioning engines "
        "trigger eagerly per record, and Flink's lag exceeds UpPar's "
        "through IPoIB latency and buffer timeouts."
    )
    return report


register_grid(SweepGrid(
    name="extra-latency",
    description="extra: window trigger lag per system",
    axes=(
        ("system", EngineSet(
            include=("slash", "uppar", "flink"), capabilities=(CAP_SCALE_OUT,)
        )),
    ),
    fixed={"nodes": 2, "threads": 10, "records_per_thread": 6_000},
    cell=_extra_latency_cell,
    report=_extra_latency_report,
))


def _abl_signal_cell(point: dict, fixed: dict):
    return transfer_cell(
        "slash",
        workload_overrides={"records_per_thread": fixed["records_per_thread"]},
        threads=fixed["threads"], buffer_bytes=fixed["buffer_bytes"],
        signal_writes=point["signal_writes"],
    )


def _abl_signal_report(run: GridRun) -> Report:
    report = Report("ablation: selective signaling")
    table = TextTable(
        "RO throughput, unsignaled vs signaled WRITEs (16 KiB buffers)",
        ["write completions", "throughput", "sender cyc/rec"],
    )
    results = run.iter_results()
    for signal_writes in run.axis("signal_writes"):
        result = next(results)
        table.add_row(
            "signaled" if signal_writes else "selective (unsignaled)",
            fmt_rate(result.throughput_bytes_per_s),
            f"{result.sender_counters.cycles_per_record:.1f}",
        )
        report.rows.append(
            {"figure": "abl-signaling", "signaled": signal_writes,
             "throughput_bytes_per_s": result.throughput_bytes_per_s}
        )
    report.tables.append(table)
    return report


register_grid(SweepGrid(
    name="abl-signal",
    description="ablation: selective signaling",
    axes=(("signal_writes", (False, True)),),
    fixed={"threads": 2, "buffer_bytes": 16384, "records_per_thread": 120_000},
    cell=_abl_signal_cell,
    report=_abl_signal_report,
))
