"""Picklable sweep cells and the runners that execute them.

Every point of a paper figure is one **cell**: an independent,
seed-deterministic simulation fully described by a picklable
``(kind, params)`` spec.  Grids (and the hand-rolled experiments before
them) build their cell list in *declaration order*, hand it to a
:class:`CellRunner`, and consume the results in that same order — so the
rendered tables are byte-identical whether the cells ran serially or
fanned out over a process pool.

That is the determinism contract (see ``docs/performance.md``):

* cells never share mutable state (each builds its own workload, engine,
  and simulator from the spec);
* the runner returns results positionally, never by completion order;
* all formatting happens in the parent process.

Four cell kinds cover every experiment:

* ``scenario``    — one :func:`repro.runtime.run_scenario` call from a
  declarative :class:`~repro.runtime.Scenario` spec (the general form —
  sanitizer/fault/elastic/overload hooks all attach through it);
* ``end_to_end``  — one :func:`repro.harness.runner.run_end_to_end` call
  (a scenario plus the figure-friendly ``EndToEndRow`` wrapper);
* ``transfer``    — one RO transfer benchmark, resolved through the
  engine registry's ``transfer_bench`` capability;
* ``engine_run``  — one raw engine run with a named cost strategy
  (the compiled-vs-interpreted ablation), a scenario under the hood.

This module used to live at ``repro.harness.parallel``; it moved below
the grid layer so declarative grids can expand into cells without an
upward import, and ``harness.parallel`` re-exports everything for
back-compat.
"""

from __future__ import annotations

from concurrent.futures import Executor, ProcessPoolExecutor
from typing import Any, Optional, Sequence

from repro.common.errors import ConfigError

#: A picklable sweep cell: ``(kind, params)``.
Cell = tuple[str, dict]

#: Per-process memo of transfer workloads keyed by (name, overrides).
#: Sweeps over channel parameters (buffer size, credits, signaling) reuse
#: the same generated flows instead of re-deriving them per cell; flow
#: generation is RngTree-deterministic, so sharing cannot change results.
_WORKLOAD_MEMO: dict = {}


def _transfer_workload(name: str, overrides: Optional[dict]):
    from repro.runtime import make_workload

    try:
        key = (name, tuple(sorted((overrides or {}).items())))
        workload = _WORKLOAD_MEMO.get(key)
    except TypeError:  # unhashable override value: skip the memo
        return make_workload(name, **(overrides or {}))
    if workload is None:
        workload = _WORKLOAD_MEMO[key] = make_workload(name, **(overrides or {}))
    return workload


# -- cell constructors -------------------------------------------------------

def scenario_cell(spec: Any) -> Cell:
    """One declarative run: a :class:`repro.runtime.Scenario` as a cell."""
    return ("scenario", spec.params())


def end_to_end_scenario_cell(
    system: str,
    workload_name: str,
    nodes: int,
    threads: int,
    workload_overrides: Optional[dict] = None,
    engine_overrides: Optional[dict] = None,
    **scenario_fields: Any,
) -> Cell:
    """One weak-scaling point as a *scenario* cell.

    Unlike :func:`end_to_end_cell` (which routes through the legacy
    ``EndToEndRow`` wrapper), this builds a plain
    :class:`~repro.runtime.Scenario`, so every generic hook —
    sanitizer, fault plan, rescale, overload — attaches uniformly via
    ``scenario_fields``.  The grid-ported figures all use this form.
    """
    from repro.runtime import Scenario

    return scenario_cell(
        Scenario(
            engine=system,
            workload=workload_name,
            nodes=nodes,
            threads=threads,
            workload_overrides=dict(workload_overrides or {}),
            engine_overrides=dict(engine_overrides or {}),
            **scenario_fields,
        )
    )


def end_to_end_cell(
    system: str,
    workload_name: str,
    nodes: int,
    threads: int,
    workload_overrides: Optional[dict] = None,
    engine_overrides: Optional[dict] = None,
) -> Cell:
    """One weak-scaling point: (system, workload, nodes, threads)."""
    return (
        "end_to_end",
        {
            "system": system,
            "workload_name": workload_name,
            "nodes": nodes,
            "threads": threads,
            "workload_overrides": workload_overrides,
            "engine_overrides": engine_overrides,
        },
    )


def transfer_cell(
    system: str,
    workload_name: str = "ro",
    workload_overrides: Optional[dict] = None,
    **bench_kwargs: Any,
) -> Cell:
    """One transfer-benchmark point (Fig. 8/9 and channel ablations).

    ``bench_kwargs`` go to the bench constructor (``threads``,
    ``buffer_bytes``, ``credits``, ``signal_writes``).
    """
    return (
        "transfer",
        {
            "system": system,
            "workload_name": workload_name,
            "workload_overrides": workload_overrides,
            "bench_kwargs": bench_kwargs,
        },
    )


def engine_run_cell(
    system: str,
    nodes: int,
    threads: int,
    workload_name: str,
    strategy: str = "compiled",
    workload_overrides: Optional[dict] = None,
) -> Cell:
    """One raw engine run with a named cost strategy."""
    return (
        "engine_run",
        {
            "system": system,
            "nodes": nodes,
            "threads": threads,
            "workload_name": workload_name,
            "strategy": strategy,
            "workload_overrides": workload_overrides,
        },
    )


# -- cell execution ----------------------------------------------------------

def run_cell(cell: Cell) -> Any:
    """Execute one cell (possibly in a worker process) and return its result.

    Imports are deferred so pool workers only pay for what their cell
    actually touches.
    """
    kind, params = cell
    if kind == "scenario":
        from repro.runtime import Scenario, run_scenario

        return run_scenario(Scenario(**params))
    if kind == "end_to_end":
        from repro.harness.runner import run_end_to_end

        return run_end_to_end(
            params["system"],
            params["workload_name"],
            params["nodes"],
            params["threads"],
            workload_overrides=params["workload_overrides"],
            engine_overrides=params["engine_overrides"],
        )
    if kind == "transfer":
        from repro.runtime import REGISTRY

        workload = _transfer_workload(
            params["workload_name"], params["workload_overrides"]
        )
        bench = REGISTRY.transfer_bench(params["system"], **params["bench_kwargs"])
        return bench.run(workload)
    if kind == "engine_run":
        from repro.runtime import Scenario, run_scenario

        return run_scenario(
            Scenario(
                engine=params["system"],
                workload=params["workload_name"],
                nodes=params["nodes"],
                threads=params["threads"],
                workload_overrides=dict(params["workload_overrides"] or {}),
                strategy=params["strategy"],
            )
        )
    raise ConfigError(f"unknown cell kind {kind!r}")


# -- runners -----------------------------------------------------------------

class SerialRunner:
    """Run cells in the calling process, one after another."""

    jobs = 1

    def map(self, cells: Sequence[Cell]) -> list:
        return [run_cell(cell) for cell in cells]


class PoolRunner:
    """Fan cells out over a process pool; results come back in cell order.

    The executor is shared and thread-safe, so ``run all`` can drive one
    pool from several experiment threads and keep it saturated across
    experiment boundaries.
    """

    def __init__(self, executor: Executor, jobs: int):
        self._executor = executor
        self.jobs = jobs

    def map(self, cells: Sequence[Cell]) -> list:
        futures = [self._executor.submit(run_cell, cell) for cell in cells]
        # Collect positionally — completion order must never leak into
        # the report.
        return [future.result() for future in futures]


def make_pool(jobs: int) -> ProcessPoolExecutor:
    """The process pool backing ``-j N`` (caller owns shutdown)."""
    return ProcessPoolExecutor(max_workers=jobs)
