"""Declarative sweep grids — experiments as data, not functions.

The grid layer sits above ``runtime`` and below ``harness``: a
:class:`SweepGrid` names the axes (engine set, workload, node count,
buffer size, skew, shed policy, ...), the fixed knobs, a cell template,
and a report function; :func:`run_grid` expands the cartesian product in
declaration order, executes the cells through the shared serial/pool
runners, and renders the figure.  Importing this package registers every
built-in grid (the 14 paper figures/ablations plus the production
traffic suite) into :data:`~repro.grid.registry.GRIDS`.
"""

from repro.grid.cells import (
    Cell,
    PoolRunner,
    SerialRunner,
    end_to_end_cell,
    end_to_end_scenario_cell,
    engine_run_cell,
    make_pool,
    run_cell,
    scenario_cell,
    transfer_cell,
)
from repro.grid.spec import (
    EngineSet,
    GridRun,
    SweepGrid,
    expand_grid,
    parse_axis_spec,
    parse_axis_value,
    parse_set_spec,
    resolve_axes,
    resolve_fixed,
    run_grid,
)
from repro.grid.registry import (
    GRID_ALIASES,
    GRIDS,
    grid_names,
    known_grid_names,
    register_grid,
    resolve_grid,
)

# Importing the suites registers their grids (declaration order is the
# --list order: the paper figures first, then the traffic suites).
from repro.grid import figures as _figures  # noqa: F401
from repro.grid import traffic as _traffic  # noqa: F401

from repro.grid.figures import LINK_BANDWIDTH
from repro.grid.traffic import slo_report

__all__ = [
    "Cell",
    "EngineSet",
    "GRID_ALIASES",
    "GRIDS",
    "GridRun",
    "LINK_BANDWIDTH",
    "PoolRunner",
    "SerialRunner",
    "SweepGrid",
    "end_to_end_cell",
    "end_to_end_scenario_cell",
    "engine_run_cell",
    "expand_grid",
    "grid_names",
    "known_grid_names",
    "make_pool",
    "parse_axis_spec",
    "parse_axis_value",
    "parse_set_spec",
    "register_grid",
    "resolve_axes",
    "resolve_fixed",
    "resolve_grid",
    "run_cell",
    "run_grid",
    "scenario_cell",
    "slo_report",
    "transfer_cell",
]
