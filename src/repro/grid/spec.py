"""Declarative sweep grids: a figure as data instead of a function.

A :class:`SweepGrid` names what used to be hand-rolled per figure:

* ordered **axes** — the swept dimensions (workload, node count, engine
  set, buffer size, Zipf skew, shed policy, ...), each a plain tuple of
  values or an :class:`EngineSet` resolved against the engine registry
  with capability filtering;
* **fixed** knobs — the non-swept sizes (threads, records per thread),
  overridable per invocation;
* a **cell** function — one sweep point (a dict of axis values) plus the
  fixed knobs to one picklable :mod:`repro.grid.cells` cell;
* a **report** function — the in-order cell results back to the figure's
  :class:`~repro.metrics.reporting.Report`.

:func:`run_grid` expands the cartesian product of the axes in
declaration order (first axis outermost, exactly the nested-loop order
the hand-rolled experiments used), feeds the cells to a
``SerialRunner``/``PoolRunner``, and hands the positionally-ordered
results to the report function — so a grid's render is byte-identical
serial or ``-j N``, and byte-identical to the function it replaced.

Axis and fixed-knob overrides are validated with did-you-mean
suggestions, the same convention as engine and workload lookup.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Optional, Sequence

from repro.common.errors import ConfigError
from repro.common.suggest import unknown_name_message
from repro.grid.cells import Cell, SerialRunner


@dataclass(frozen=True)
class EngineSet:
    """An engine axis resolved against the registry, capability-gated.

    With ``include`` empty, the set is every registered engine carrying
    all the required ``capabilities``, in registration order (the
    display order of the paper's figures).  With ``include`` given, the
    listed engines are kept in *that* order but still validated against
    the capabilities — asking a transfer figure to sweep ``lightsaber``
    fails before any cell runs, with the capability named.
    """

    capabilities: tuple = ()
    include: tuple = ()
    exclude: tuple = ()

    def resolve(self) -> tuple:
        from repro.runtime import REGISTRY

        if self.include:
            names = [
                REGISTRY.require(name, *self.capabilities).name
                for name in self.include
            ]
        else:
            names = [
                name
                for name in REGISTRY.names()
                if set(self.capabilities) <= REGISTRY.spec(name).capabilities
            ]
        return tuple(name for name in names if name not in self.exclude)

    def narrowed(self, names: Sequence) -> "EngineSet":
        """The same capability gate over an explicit engine list."""
        return EngineSet(
            capabilities=self.capabilities,
            include=tuple(names),
            exclude=self.exclude,
        )


@dataclass
class SweepGrid:
    """One declarative experiment: axes × cell template → report."""

    name: str
    description: str
    #: Ordered ``(axis_name, values)`` pairs; ``values`` is a tuple or an
    #: :class:`EngineSet`.  First axis is the outermost sweep loop.
    axes: tuple
    #: ``cell(point, fixed) -> Cell`` — one sweep point to one cell.
    cell: Callable[[dict, dict], Cell]
    #: ``report(run) -> Report`` — in-order results to the rendered figure.
    report: Callable[["GridRun"], Any]
    #: Non-swept knobs, overridable per invocation (``--set k=v``).
    fixed: dict = field(default_factory=dict)
    #: Per-panel names resolving to this grid (``fig6a`` → ``fig6a-c``).
    aliases: tuple = ()
    #: Report headline; defaults to ``name``.
    title: str = ""

    def __post_init__(self):
        if not self.title:
            self.title = self.name

    def axis_names(self) -> tuple:
        return tuple(name for name, _values in self.axes)


@dataclass
class GridRun:
    """One expanded-and-executed grid, handed to the report function."""

    grid: SweepGrid
    #: Resolved axis values (EngineSets already flattened to names).
    axes: dict
    fixed: dict
    #: Sweep points in declaration order, one dict per cell.
    points: list
    cells: list
    #: Cell results, positionally aligned with ``points``.
    results: list

    def axis(self, name: str) -> tuple:
        return self.axes[name]

    def iter_results(self):
        """The results as an in-order iterator (one ``next()`` per point)."""
        return iter(self.results)


def resolve_axes(grid: SweepGrid, axis_overrides: Optional[dict] = None) -> dict:
    """Apply ``--axis``-style overrides and flatten EngineSets to names."""
    overrides = dict(axis_overrides or {})
    known = grid.axis_names()
    for key in overrides:
        if key not in known:
            raise ConfigError(unknown_name_message("axis", key, known))
    resolved = {}
    for name, default in grid.axes:
        values = overrides.get(name, default)
        if isinstance(default, EngineSet) and not isinstance(values, EngineSet):
            # Overriding an engine axis keeps the grid's capability gate:
            # the names are explicit, the validation is not optional.
            values = default.narrowed(values)
        if isinstance(values, EngineSet):
            values = values.resolve()
        values = tuple(values)
        if not values:
            raise ConfigError(f"axis {name!r} of grid {grid.name!r} is empty")
        resolved[name] = values
    return resolved


def resolve_fixed(grid: SweepGrid, fixed_overrides: Optional[dict] = None) -> dict:
    """Apply ``--set``-style overrides to the grid's fixed knobs."""
    fixed = dict(grid.fixed)
    for key, value in (fixed_overrides or {}).items():
        if key not in fixed:
            raise ConfigError(
                unknown_name_message("fixed knob", key, tuple(fixed))
            )
        fixed[key] = value
    return fixed


def expand_grid(
    grid: SweepGrid,
    axis_overrides: Optional[dict] = None,
    fixed_overrides: Optional[dict] = None,
) -> GridRun:
    """Expand a grid to its cells without running them (dry-run form).

    Building the cells resolves the engine set (capability check) and
    constructs every Scenario, so a dry-run catches unknown engines,
    missing capabilities, and malformed cell templates — the CI
    ``grid-smoke`` gate — at zero simulation cost.
    """
    axes = resolve_axes(grid, axis_overrides)
    fixed = resolve_fixed(grid, fixed_overrides)
    names = grid.axis_names()
    points = [
        dict(zip(names, combo))
        for combo in itertools.product(*(axes[name] for name in names))
    ]
    cells = [grid.cell(point, fixed) for point in points]
    return GridRun(
        grid=grid, axes=axes, fixed=fixed, points=points, cells=cells,
        results=[],
    )


def run_grid(
    grid: SweepGrid,
    axis_overrides: Optional[dict] = None,
    fixed_overrides: Optional[dict] = None,
    runner=None,
):
    """Expand, execute, and report one grid; returns the Report."""
    run = expand_grid(grid, axis_overrides, fixed_overrides)
    run.results = list((runner or SerialRunner()).map(run.cells))
    return grid.report(run)


# -- CLI-facing parsing ------------------------------------------------------

def parse_axis_value(text: str):
    """``--axis``/``--set`` value literal: bool, int, float, else str."""
    lowered = text.lower()
    if lowered in ("true", "false"):
        return lowered == "true"
    if lowered in ("none", "null"):
        return None
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        pass
    return text


def parse_axis_spec(spec: str) -> tuple:
    """One ``name=v1,v2,...`` override → ``(name, (v1, v2, ...))``."""
    name, sep, rest = spec.partition("=")
    if not sep or not name or not rest:
        raise ConfigError(
            f"malformed axis override {spec!r} (expected name=v1,v2,...)"
        )
    return name, tuple(parse_axis_value(part) for part in rest.split(","))


def parse_set_spec(spec: str) -> tuple:
    """One ``name=value`` fixed-knob override → ``(name, value)``."""
    name, sep, rest = spec.partition("=")
    if not sep or not name:
        raise ConfigError(
            f"malformed knob override {spec!r} (expected name=value)"
        )
    return name, parse_axis_value(rest)
