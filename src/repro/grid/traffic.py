"""The production-traffic SLO suite, as a plain grid.

``traffic-slo`` sweeps shedding policy × user skew over the sessionized
multi-tenant workload (:mod:`repro.workloads.traffic`) under a paced
flash-crowd ingest, on every overload-capable engine (the engine axis is
a capability-filtered :class:`~repro.grid.spec.EngineSet` — today that
resolves to Slash alone, and any engine that grows an overload plane
joins the sweep automatically).

There is no per-figure reporting code here: :func:`slo_report` is a
generic report model that works for *any* grid whose cells are overload
scenarios — it labels each row with the grid's own axis values, computes
the p50/p99/p999 **window-lag** quantiles from the run's trigger
timeline (via the shared :mod:`repro.metrics.slo` helpers), reads the
coordinator's record-delay percentiles and shed accounting, and renders
the per-tenant fairness table from the same
:func:`~repro.metrics.slo.fairness_shares` arithmetic the overload
harness uses.
"""

from __future__ import annotations

from repro.core.system import CAP_OVERLOAD, SHED_POLICIES
from repro.grid.cells import end_to_end_scenario_cell
from repro.grid.registry import register_grid
from repro.grid.spec import EngineSet, GridRun, SweepGrid
from repro.metrics.reporting import Report, TextTable
from repro.metrics.slo import fairness_shares, lag_quantiles, window_lags

#: Offered ingest rate (records/s of simulated time, per worker thread)
#: for the default suite size.  Calibrated to roughly 2x the sustainable
#: rate of the sessions workload on a 3x2 Slash cluster at 1500
#: records/thread (~4.6e7/s per thread unpaced), so the flash crowd
#: genuinely overloads admission; scale it along with
#: ``records_per_thread`` when resizing the grid.
DEFAULT_INGEST_RATE = 9.0e7


def _point_label(point: dict) -> list:
    return [str(point[name]) for name in point]


def slo_report(run: GridRun) -> Report:
    """Generic SLO report: axis labels × lag quantiles × fairness."""
    axis_names = list(run.grid.axis_names())
    slo_ms = run.fixed.get("slo_p99_ms")
    report = Report(run.grid.title)
    lag_table = TextTable(
        f"window lag + record delay per cell (SLO p99 {slo_ms:g} ms)"
        if slo_ms is not None else "window lag + record delay per cell",
        axis_names
        + ["lag p50", "lag p99", "lag p999", "delay p99", "shed %", "SLO"],
    )
    fairness = TextTable(
        "per-tenant fairness (traffic share vs shed share)",
        axis_names + ["tenant", "offered", "shed", "traffic share", "shed share"],
    )
    any_tenants = False
    for point, result in zip(run.points, run.results):
        overload = result.extra.get("overload", {})
        lags = lag_quantiles(window_lags(result))
        shed = overload.get("shed", 0)
        offered = overload.get("offered", 0)
        shed_pct = 100.0 * shed / offered if offered else 0.0
        delay_p99 = overload.get("delay_p99_ms", 0.0)
        verdict = "-"
        if slo_ms is not None:
            verdict = "MET" if delay_p99 <= slo_ms else "VIOLATED"
        lag_table.add_row(
            *_point_label(point),
            f"{lags['p50'] * 1e3:.4g} ms",
            f"{lags['p99'] * 1e3:.4g} ms",
            f"{lags['p999'] * 1e3:.4g} ms",
            f"{delay_p99:.4g} ms",
            f"{shed_pct:.1f}%",
            verdict,
        )
        report.rows.append({
            "figure": run.grid.name,
            **point,
            "window_lag_p50_s": lags["p50"],
            "window_lag_p99_s": lags["p99"],
            "window_lag_p999_s": lags["p999"],
            "delay_p50_ms": overload.get("delay_p50_ms"),
            "delay_p99_ms": overload.get("delay_p99_ms"),
            "delay_p999_ms": overload.get("delay_p999_ms"),
            "offered": offered,
            "admitted": overload.get("admitted"),
            "shed": shed,
            "slo_p99_ms": slo_ms,
            "slo_met": (delay_p99 <= slo_ms) if slo_ms is not None else None,
            "tenants": fairness_shares(
                overload.get("tenant_offered", ()),
                overload.get("tenant_shed", ()),
            ),
        })
        for share in fairness_shares(
            overload.get("tenant_offered", ()), overload.get("tenant_shed", ())
        ):
            any_tenants = True
            fairness.add_row(
                *_point_label(point),
                share["tenant"],
                share["offered"],
                share["shed"],
                f"{share['traffic_share'] * 100:.1f}%",
                f"{share['shed_share'] * 100:.1f}%",
            )
    report.tables.append(lag_table)
    if any_tenants:
        report.tables.append(fairness)
    report.notes.append(
        "lag quantiles are window-trigger lags (simulated s) over the whole "
        "run; delay p99 is the coordinator's record queueing-delay "
        "percentile the SLO verdict is judged on; a fair shedder keeps "
        "each tenant's shed share near its traffic share."
    )
    return report


def _traffic_cell(point: dict, fixed: dict):
    return end_to_end_scenario_cell(
        point["engine"], "sessions", fixed["nodes"], fixed["threads"],
        workload_overrides={
            "records_per_thread": fixed["records_per_thread"],
            "batch_records": fixed["batch_records"],
            "zipf_z": point["zipf"],
            "mean_session_records": fixed["mean_session_records"],
            "late_frac": fixed["late_frac"],
            "late_by_ms": fixed["late_by_ms"],
            "dup_frac": fixed["dup_frac"],
        },
        seed=fixed["seed"],
        slo_p99_ms=fixed["slo_p99_ms"],
        shed_policy=point["policy"],
        overload_overrides={
            "ingest_rate_records_per_s": fixed["ingest_rate_records_per_s"],
            "tenants": fixed["tenants"],
            "flash_at_frac": fixed["flash_at_frac"],
            "flash_magnitude": fixed["flash_magnitude"],
        },
    )


register_grid(SweepGrid(
    name="traffic-slo",
    title="traffic-slo (sessionized flash crowd)",
    description="production traffic: sessionized multi-tenant streams, "
                "SLO shedding sweep with window-lag percentiles",
    axes=(
        ("engine", EngineSet(capabilities=(CAP_OVERLOAD,))),
        ("zipf", (0.6, 1.4)),
        ("policy", tuple(SHED_POLICIES)),
    ),
    fixed={
        "nodes": 3,
        "threads": 2,
        "records_per_thread": 1500,
        "batch_records": 75,
        "mean_session_records": 8.0,
        "late_frac": 0.05,
        "late_by_ms": 2000,
        "dup_frac": 0.02,
        "seed": 11,
        "tenants": 4,
        # Half the no-shed delay p99 at this rate (the run_overload
        # calibration convention, pinned so the grid stays declarative):
        # the overload is real without shedding, meetable with it.
        "slo_p99_ms": 0.0045,
        "ingest_rate_records_per_s": DEFAULT_INGEST_RATE,
        "flash_at_frac": 0.5,
        "flash_magnitude": 3.0,
    },
    cell=_traffic_cell,
    report=slo_report,
))


register_grid(SweepGrid(
    name="traffic-storm",
    title="traffic-storm (late + duplicate arrivals)",
    description="production traffic: late/duplicate arrival storms over "
                "sessionized streams, unshedded window-lag profile",
    axes=(
        ("engine", EngineSet(capabilities=(CAP_OVERLOAD,))),
        ("late_frac", (0.0, 0.1)),
        ("dup_frac", (0.0, 0.05)),
    ),
    fixed={
        "nodes": 2,
        "threads": 2,
        "records_per_thread": 1500,
        "batch_records": 75,
        "mean_session_records": 8.0,
        "zipf": 0.8,
        "late_by_ms": 2000,
        "seed": 11,
        "tenants": 4,
        "slo_p99_ms": None,
    },
    cell=lambda point, fixed: end_to_end_scenario_cell(
        point["engine"], "sessions", fixed["nodes"], fixed["threads"],
        workload_overrides={
            "records_per_thread": fixed["records_per_thread"],
            "batch_records": fixed["batch_records"],
            "zipf_z": fixed["zipf"],
            "mean_session_records": fixed["mean_session_records"],
            "late_frac": point["late_frac"],
            "late_by_ms": fixed["late_by_ms"],
            "dup_frac": point["dup_frac"],
        },
        seed=fixed["seed"],
        overload_overrides={"tenants": fixed["tenants"]},
    ),
    report=slo_report,
))
