"""The grid registry: one name → :class:`SweepGrid` table.

Replaces the per-panel ``ALIASES`` dict that used to live in
``harness/cli.py``: each grid carries its own panel aliases
(``fig6a``/``fig6b``/``fig6c`` → ``fig6a-c``), and lookup resolves them
with the repo-wide did-you-mean convention.
"""

from __future__ import annotations

from repro.common.errors import ConfigError
from repro.common.suggest import unknown_name_message
from repro.grid.spec import SweepGrid

#: name -> SweepGrid, in registration order (the ``--list`` order).
GRIDS: dict = {}

#: alias -> canonical grid name.
GRID_ALIASES: dict = {}


def register_grid(grid: SweepGrid) -> SweepGrid:
    if grid.name in GRIDS or grid.name in GRID_ALIASES:
        raise ConfigError(f"grid {grid.name!r} registered twice")
    for alias in grid.aliases:
        if alias in GRIDS or alias in GRID_ALIASES:
            raise ConfigError(
                f"grid alias {alias!r} (of {grid.name!r}) already taken"
            )
    GRIDS[grid.name] = grid
    for alias in grid.aliases:
        GRID_ALIASES[alias] = grid.name
    return grid


def grid_names() -> tuple:
    """Registered grid names, in registration order (aliases excluded)."""
    return tuple(GRIDS)


def known_grid_names() -> tuple:
    """Every resolvable name: canonical names first, then aliases."""
    return tuple(GRIDS) + tuple(GRID_ALIASES)


def resolve_grid(name: str) -> SweepGrid:
    """Look up a grid by name or alias; unknown names get did-you-mean."""
    canonical = GRID_ALIASES.get(name, name)
    try:
        return GRIDS[canonical]
    except KeyError:
        raise ConfigError(
            unknown_name_message("grid", name, known_grid_names())
        ) from None
