"""Experiment harness: one entry point per paper table/figure.

:mod:`repro.harness.runner` knows how to build each system under test
and run it on a workload; :mod:`repro.harness.experiments` defines the
figures (fig6a..fig6e, fig7, fig8a..fig8d, fig9, fig10, table1) plus the
ablation studies, each returning a report whose ``render()`` prints the
same rows/series the paper plots.
"""

from repro.harness.runner import (
    SYSTEMS,
    build_engine,
    make_workload,
    run_end_to_end,
    EndToEndRow,
)
from repro.harness.experiments import (
    fig6_aggregations,
    fig6_joins,
    fig7_cost,
    fig8_buffer_sweep,
    fig8_parallelism,
    fig8_skew,
    fig9_breakdown_ro,
    fig10_breakdown_ysb,
    table1_counters,
    ablation_credits,
    ablation_epoch_bytes,
    ablation_execution_strategy,
    ablation_selective_signaling,
    extra_trigger_latency,
    Report,
)

__all__ = [
    "SYSTEMS",
    "build_engine",
    "make_workload",
    "run_end_to_end",
    "EndToEndRow",
    "fig6_aggregations",
    "fig6_joins",
    "fig7_cost",
    "fig8_buffer_sweep",
    "fig8_parallelism",
    "fig8_skew",
    "fig9_breakdown_ro",
    "fig10_breakdown_ysb",
    "table1_counters",
    "ablation_credits",
    "ablation_epoch_bytes",
    "ablation_execution_strategy",
    "ablation_selective_signaling",
    "extra_trigger_latency",
    "Report",
]
