"""Command-line interface to the experiment harness.

Usage (after ``python setup.py develop``)::

    python -m repro list
    python -m repro run fig6a --nodes 2 4 --threads 4 --records 1500
    python -m repro run fig8d --out results/
    python -m repro run all --quick
    python -m repro grid --list
    python -m repro grid traffic-slo --axis zipf=0.8,1.6 --set seed=3 -j 4
    python -m repro chaos --seed 7 --fault leader-crash
    python -m repro elastic --strategy both --action join
    python -m repro overload --rate-factor 2 --policy all

``run`` executes one experiment (or ``all``), prints the rendered report,
and optionally writes it (plus a machine-readable JSON of the raw rows)
into an output directory.  ``chaos`` injects a seeded fault plan into a
Slash run and verifies the recovery invariants (see
``docs/fault_tolerance.md``); it exits non-zero if any window result is
lost or two same-seed runs diverge.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time
from typing import Callable, Optional, Sequence

from repro.common.suggest import did_you_mean, unknown_name_message
from repro.harness import experiments as exp

#: Experiment registry: id -> (description, factory(args) -> Report).
EXPERIMENTS: dict[str, tuple[str, Callable]] = {
    "fig6a-c": (
        "YSB/CM/NB7 windowed aggregations, weak scaling",
        lambda a: exp.fig6_aggregations(
            node_counts=a.nodes, threads=a.threads,
            workload_overrides=_size(a), runner=_runner(a),
        ),
    ),
    "fig6d-e": (
        "NB8/NB11 windowed joins, weak scaling",
        lambda a: exp.fig6_joins(
            node_counts=a.nodes, threads=a.threads,
            workload_overrides=_size(a, default_records=1000), runner=_runner(a),
        ),
    ),
    "fig7": (
        "COST analysis vs LightSaber",
        lambda a: exp.fig7_cost(
            node_counts=a.nodes, threads=a.threads,
            workload_overrides=_size(a), runner=_runner(a),
        ),
    ),
    "fig8ab": (
        "RO throughput/latency vs channel buffer size",
        lambda a: exp.fig8_buffer_sweep(
            threads=min(a.threads, 10),
            records_per_thread=a.records or 150_000, runner=_runner(a),
        ),
    ),
    "fig8c": (
        "RO throughput vs thread count",
        lambda a: exp.fig8_parallelism(
            records_per_thread=a.records or 120_000, runner=_runner(a),
        ),
    ),
    "fig8d": (
        "throughput vs Zipf key skew (RO + YSB)",
        lambda a: exp.fig8_skew(
            threads=min(a.threads, 10),
            records_per_thread=a.records or 60_000, runner=_runner(a),
        ),
    ),
    "fig9": (
        "top-down breakdown of RO (senders/receivers)",
        lambda a: exp.fig9_breakdown_ro(
            records_per_thread=a.records or 120_000, runner=_runner(a),
        ),
    ),
    "fig10": (
        "top-down breakdown of end-to-end YSB",
        lambda a: exp.fig10_breakdown_ysb(
            threads=min(a.threads, 10), records_per_thread=a.records or 6_000,
            runner=_runner(a),
        ),
    ),
    "table1": (
        "resource utilisation counters, YSB on 2 nodes",
        lambda a: exp.table1_counters(
            threads=min(a.threads, 10), records_per_thread=a.records or 6_000,
            runner=_runner(a),
        ),
    ),
    "abl-credits": (
        "ablation: channel credit count",
        lambda a: exp.ablation_credits(
            records_per_thread=a.records or 120_000, runner=_runner(a),
        ),
    ),
    "abl-epoch": (
        "ablation: SSB epoch length",
        lambda a: exp.ablation_epoch_bytes(runner=_runner(a)),
    ),
    "abl-exec": (
        "ablation: compiled vs interpreted execution",
        lambda a: exp.ablation_execution_strategy(runner=_runner(a)),
    ),
    "extra-latency": (
        "extra: window trigger lag per system",
        lambda a: exp.extra_trigger_latency(
            threads=min(a.threads, 10), records_per_thread=a.records or 6_000,
            runner=_runner(a),
        ),
    ),
    "abl-signal": (
        "ablation: selective signaling",
        lambda a: exp.ablation_selective_signaling(
            records_per_thread=a.records or 120_000, runner=_runner(a),
        ),
    ),
}

#: Per-panel figure ids (fig6a -> fig6a-c, ...): no longer a hand-kept
#: table — each grid declares its own panel aliases, and the registry
#: aggregates them (see ``repro.grid.registry.GRID_ALIASES``).
from repro.grid import GRID_ALIASES as ALIASES  # noqa: E402


def _runner(args):
    """The CellRunner attached by ``main`` (None -> serial)."""
    return getattr(args, "runner", None)

#: Reduced knobs used by --quick (and by the CLI tests).
QUICK = {"nodes": (2, 4), "threads": 4, "records": 1200}


def _size(args, default_records: int = 2500) -> dict:
    records = args.records or default_records
    return {"records_per_thread": records, "batch_records": max(64, records // 5)}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce the tables and figures of 'Rethinking "
        "Stateful Stream Processing with RDMA' (SIGMOD 2022).",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list available experiments")
    run = sub.add_parser("run", help="run one experiment (or 'all')")
    run.add_argument("experiment", help="experiment id from 'list', or 'all'")
    run.add_argument("--nodes", type=int, nargs="+", default=[2, 4, 8, 16],
                     help="node counts for weak-scaling experiments")
    run.add_argument("--threads", type=int, default=10,
                     help="worker threads per node")
    run.add_argument("--records", type=int, default=None,
                     help="records per thread (default: per-experiment)")
    run.add_argument("--quick", action="store_true",
                     help="small sizes for a fast smoke run")
    run.add_argument("-j", "--jobs", type=int, default=1,
                     help="fan independent sweep cells over N worker "
                          "processes (output stays byte-identical to -j 1)")
    run.add_argument("--profile", action="store_true",
                     help="profile the run with cProfile and print the "
                          "hottest functions (forces -j 1)")
    run.add_argument("--out", type=pathlib.Path, default=None,
                     help="directory to write <id>.txt and <id>.json into")

    grid = sub.add_parser(
        "grid",
        help="run a declarative sweep grid by name (axes x cell template; "
             "see 'grid --list')",
    )
    grid.add_argument("name", nargs="?", default=None,
                      help="grid name or panel alias from 'grid --list'")
    grid.add_argument("--list", action="store_true", dest="list_grids",
                      help="list registered grids with their axes")
    grid.add_argument("--axis", action="append", default=[],
                      metavar="NAME=V1,V2,...",
                      help="override one axis's swept values (repeatable); "
                           "engine axes keep their capability gate")
    grid.add_argument("--set", action="append", default=[], dest="set_knobs",
                      metavar="NAME=VALUE",
                      help="override one fixed knob (repeatable)")
    grid.add_argument("--dry-run", action="store_true",
                      help="expand the grid and print its cells without "
                           "running any simulation")
    grid.add_argument("-j", "--jobs", type=int, default=1,
                      help="fan grid cells over N worker processes "
                           "(output stays byte-identical to -j 1)")
    grid.add_argument("--out", type=pathlib.Path, default=None,
                      help="directory to write <name>.txt and <name>.json into")

    from repro.faults.plan import PRESETS

    chaos = sub.add_parser(
        "chaos",
        help="fault-injection run: inject a fault preset, verify recovery",
    )
    chaos.add_argument("--fault", default="leader-crash", metavar="PRESET",
                       help="named fault preset to inject (one of: "
                            + ", ".join(PRESETS) + ")")
    chaos.add_argument("--system", default="slash",
                       help="fault-injectable engine to run under chaos "
                            "(registry name; default: slash)")
    from repro.core.system import RECOVERY_STRATEGIES

    chaos.add_argument("--strategy", default="both", metavar="STRATEGY",
                       help="recovery strategy for control-plane faults "
                            "(one of: " + ", ".join(RECOVERY_STRATEGIES)
                            + "; default: 'both' runs every strategy the "
                              "engine supports and compares them)")
    chaos.add_argument("--seed", type=int, default=7,
                       help="seed deriving fault time and victim")
    chaos.add_argument("--nodes", type=int, default=3,
                       help="cluster size")
    chaos.add_argument("--threads", type=int, default=2,
                       help="worker threads per node")
    chaos.add_argument("--records", type=int, default=1500,
                       help="records per thread")
    chaos.add_argument("--workload", default="ysb",
                       help="workload to run under fault injection")
    chaos.add_argument("--no-determinism-check", action="store_true",
                       help="skip the second same-seed faulted run")
    from repro.core.system import MIGRATION_STRATEGIES

    chaos.add_argument("--elastic", default=None, metavar="STRATEGY",
                       choices=sorted(MIGRATION_STRATEGIES),
                       help="additionally perform a live join-rescale with "
                            "this migration strategy (one of: "
                            + ", ".join(sorted(MIGRATION_STRATEGIES))
                            + ") during every faulted run")
    chaos.add_argument("--out", type=pathlib.Path, default=None,
                       help="directory to write chaos.txt and chaos.json into")

    elastic = sub.add_parser(
        "elastic",
        help="live-rescale run: migrate partitions mid-run under both "
             "strategies, diff against the static baseline, report the "
             "migration-window latency spike",
    )
    elastic.add_argument("--system", default="slash",
                         help="elastic-capable engine (registry name; "
                              "default: slash)")
    elastic.add_argument("--strategy", default="both", metavar="STRATEGY",
                         help="migration strategy (one of: "
                              + ", ".join(sorted(MIGRATION_STRATEGIES))
                              + "; default: 'both' runs and compares them)")
    elastic.add_argument("--action", default="join",
                         choices=("join", "leave", "rebalance"),
                         help="rescale action (default: join)")
    elastic.add_argument("--nodes", type=int, default=2,
                         help="cluster size before the rescale")
    elastic.add_argument("--threads", type=int, default=4,
                         help="worker threads per node")
    elastic.add_argument("--records", type=int, default=20_000,
                         help="records per thread (state must dwarf the "
                              "fixed per-move latency floor)")
    elastic.add_argument("--workload", default="ysb",
                         help="workload to rescale under")
    elastic.add_argument("--seed", type=int, default=11,
                         help="workload generator seed")
    elastic.add_argument("--rescale-frac", type=float, default=0.35,
                         help="when to rescale, as a fraction of the "
                              "static run's horizon")
    elastic.add_argument("--ranges", type=int, default=None,
                         help="fluid key-range sub-moves (ElasticPlan "
                              "default when omitted)")
    elastic.add_argument("--spread", type=float, default=None,
                         help="fluid catch-up gap between sub-moves, as a "
                              "multiple of each round's stall")
    elastic.add_argument("--add-nodes", type=int, default=1,
                         help="spare nodes a join brings up")
    elastic.add_argument("--drain-node", type=int, default=None,
                         help="node a leave drains (default: last node)")
    elastic.add_argument("--quick", action="store_true",
                         help="small sizes for a fast smoke run")
    elastic.add_argument("--out", type=pathlib.Path, default=None,
                         help="directory to write elastic.txt and "
                              "elastic.json into")

    from repro.core.system import SHED_POLICIES

    overload = sub.add_parser(
        "overload",
        help="flash-crowd run: pace ingest past the sustainable rate, "
             "shed to the declared p99 SLO under every policy, verify "
             "exact shed accounting against the reference oracle, and "
             "measure straggler mitigation under a gray fault",
    )
    overload.add_argument("--system", default="slash",
                          help="overload-capable engine (registry name; "
                               "default: slash)")
    overload.add_argument("--workload", default="ysb",
                          help="workload to overload")
    overload.add_argument("--nodes", type=int, default=3,
                          help="cluster size (>= 3 gives the straggler "
                               "detector a median to drift from)")
    overload.add_argument("--threads", type=int, default=2,
                          help="worker threads per node")
    overload.add_argument("--records", type=int, default=4000,
                          help="records per thread")
    overload.add_argument("--seed", type=int, default=11,
                          help="workload generator + shedder seed")
    overload.add_argument("--slo-ms", type=float, default=None,
                          help="declared p99 SLO in simulated ms "
                               "(default: half the no-shed p99)")
    overload.add_argument("--rate-factor", type=float, default=2.0,
                          help="offered rate as a multiple of the "
                               "measured sustainable rate")
    overload.add_argument("--policy", default="all",
                          help="shedding policy (one of: "
                               + ", ".join(SHED_POLICIES)
                               + "; 'all' compares every policy, 'none' "
                                 "skips shedding runs)")
    overload.add_argument("--tenants", type=int, default=4,
                          help="tenants for the per-tenant fairness table")
    overload.add_argument("--zipf", type=float, default=0.0,
                          help="Zipf skew for the workload's keys "
                               "(hot-key flash crowds; 0 = uniform)")
    overload.add_argument("--fault", default="slow-node",
                          choices=("slow-node", "jitter", "none"),
                          help="gray fault for the straggler-mitigation "
                               "section ('none' skips it)")
    overload.add_argument("--quick", action="store_true",
                          help="small sizes for a fast smoke run")
    overload.add_argument("--out", type=pathlib.Path, default=None,
                          help="directory to write overload.txt and "
                               "overload.json into")

    sanitize = sub.add_parser(
        "sanitize",
        help="differential oracle harness: random scenarios with runtime "
             "invariant checkers on, compared against the sequential "
             "reference and the partitioned baseline",
    )
    sanitize.add_argument("--scenarios", type=int, default=25,
                          help="number of random scenarios to generate")
    sanitize.add_argument("--seed", type=int, default=1,
                          help="seed deriving every scenario")
    sanitize.add_argument("--replay", default=None,
                          help="re-run one exact scenario from its JSON "
                               "description (as printed by a failure's "
                               "repro command) instead of generating")
    sanitize.add_argument("--no-shrink", action="store_true",
                          help="skip minimizing failing scenarios")
    sanitize.add_argument("--out", type=pathlib.Path, default=None,
                          help="directory to write sanitize.txt and "
                               "sanitize.json into")
    return parser


def _build_report(name: str, args):
    """Run one experiment; returns ``(report, description, elapsed_s)``."""
    description, factory = EXPERIMENTS[name]
    started = time.time()
    report = factory(args)
    return report, description, time.time() - started


def _emit(name: str, report, description: str, elapsed: float,
          out: Optional[pathlib.Path]) -> None:
    print(report.render())
    print(f"\n[{name}: {description} — {elapsed:.1f}s wall]")
    if out is not None:
        out.mkdir(parents=True, exist_ok=True)
        (out / f"{name}.txt").write_text(report.render() + "\n")
        (out / f"{name}.json").write_text(
            json.dumps(_jsonable(report.rows), indent=2) + "\n"
        )


def _run_one(name: str, args, out: Optional[pathlib.Path]) -> None:
    report, description, elapsed = _build_report(name, args)
    _emit(name, report, description, elapsed, out)


def _jsonable(rows: list) -> list:
    def convert(value):
        if isinstance(value, dict):
            return {str(k): convert(v) for k, v in value.items()}
        if isinstance(value, (list, tuple)):
            return [convert(v) for v in value]
        if isinstance(value, float) and value in (float("inf"), float("-inf")):
            return str(value)
        if isinstance(value, (int, float, str, bool)) or value is None:
            return value
        return str(value)

    return [convert(row) for row in rows]


def _run_chaos(args) -> int:
    from repro.common.errors import ConfigError, FaultError
    from repro.core.system import RECOVERY_STRATEGIES
    from repro.faults.plan import PRESETS

    if args.fault not in PRESETS:
        message = unknown_name_message("fault preset", args.fault, PRESETS)
        print(f"CHAOS FAILED: {message}", file=sys.stderr)
        return 1
    if args.strategy != "both" and args.strategy not in RECOVERY_STRATEGIES:
        message = unknown_name_message(
            "recovery strategy", args.strategy, RECOVERY_STRATEGIES + ("both",)
        )
        print(f"CHAOS FAILED: {message}", file=sys.stderr)
        return 1

    started = time.time()
    try:
        report = exp.run_chaos(
            fault=args.fault,
            seed=args.seed,
            nodes=args.nodes,
            threads=args.threads,
            workload_name=args.workload,
            records_per_thread=args.records,
            verify_determinism=not args.no_determinism_check,
            system=args.system,
            strategy=args.strategy,
            elastic=args.elastic,
        )
    except (ConfigError, FaultError) as exc:
        # ConfigError covers unknown engine names (with a did-you-mean
        # suggestion from the registry) and capability errors — an engine
        # that cannot absorb the requested fault kinds fails here, fast.
        print(f"CHAOS FAILED: {exc}", file=sys.stderr)
        return 1
    elapsed = time.time() - started
    print(report.render())
    print(f"\n[chaos {args.fault} seed {args.seed} — {elapsed:.1f}s wall]")
    if args.out is not None:
        args.out.mkdir(parents=True, exist_ok=True)
        (args.out / "chaos.txt").write_text(report.render() + "\n")
        (args.out / "chaos.json").write_text(
            json.dumps(_jsonable(report.rows), indent=2) + "\n"
        )
    return 0


def _run_elastic(args) -> int:
    from repro.common.errors import (
        CapabilityError,
        ConfigError,
        StateError,
    )
    from repro.core.system import MIGRATION_STRATEGIES

    if args.strategy != "both" and args.strategy not in MIGRATION_STRATEGIES:
        message = unknown_name_message(
            "migration strategy", args.strategy,
            tuple(sorted(MIGRATION_STRATEGIES)) + ("both",),
        )
        print(f"ELASTIC FAILED: {message}", file=sys.stderr)
        return 1
    if args.quick:
        args.records = min(args.records, 2500)

    started = time.time()
    try:
        report = exp.run_elastic(
            system=args.system,
            workload_name=args.workload,
            nodes=args.nodes,
            threads=args.threads,
            records_per_thread=args.records,
            seed=args.seed,
            strategy=args.strategy,
            action=args.action,
            rescale_frac=args.rescale_frac,
            add_nodes=args.add_nodes,
            drain_node=args.drain_node,
            fluid_ranges=args.ranges,
            fluid_spread=args.spread,
        )
    except (CapabilityError, ConfigError, StateError) as exc:
        # CapabilityError: a non-elastic engine (with the elastic-capable
        # set in the message); ConfigError: a rescale_at past the horizon
        # or a malformed plan; StateError: the oracle caught a divergence.
        print(f"ELASTIC FAILED: {exc}", file=sys.stderr)
        return 1
    elapsed = time.time() - started
    print(report.render())
    print(f"\n[elastic {args.action} seed {args.seed} — "
          f"{elapsed:.1f}s wall]")
    if args.out is not None:
        args.out.mkdir(parents=True, exist_ok=True)
        (args.out / "elastic.txt").write_text(report.render() + "\n")
        (args.out / "elastic.json").write_text(
            json.dumps(_jsonable(report.rows), indent=2) + "\n"
        )
    return 0


def _run_overload(args) -> int:
    from repro.common.errors import (
        CapabilityError,
        ConfigError,
        StateError,
    )

    if args.quick:
        args.records = min(args.records, 1000)
    started = time.time()
    try:
        report = exp.run_overload(
            system=args.system,
            workload_name=args.workload,
            nodes=args.nodes,
            threads=args.threads,
            records_per_thread=args.records,
            seed=args.seed,
            slo_ms=args.slo_ms,
            rate_factor=args.rate_factor,
            policy=args.policy,
            tenants=args.tenants,
            zipf=args.zipf,
            fault=None if args.fault == "none" else args.fault,
        )
    except (CapabilityError, ConfigError, StateError) as exc:
        # CapabilityError: an engine with no overload plane (with the
        # overload-capable set in the message) or an unsupported policy;
        # ConfigError: a malformed OverloadConfig (with did-you-mean for
        # policy typos); StateError: the acceptance gates failed — the
        # no-shed run met the SLO, a shedding run violated it, or the
        # differential oracle found a silently-lost record.
        print(f"OVERLOAD FAILED: {exc}", file=sys.stderr)
        return 1
    elapsed = time.time() - started
    print(report.render())
    print(f"\n[overload {args.policy} at {args.rate_factor:g}x seed "
          f"{args.seed} — {elapsed:.1f}s wall]")
    if args.out is not None:
        args.out.mkdir(parents=True, exist_ok=True)
        (args.out / "overload.txt").write_text(report.render() + "\n")
        (args.out / "overload.json").write_text(
            json.dumps(_jsonable(report.rows), indent=2) + "\n"
        )
    return 0


def _list_grids() -> int:
    from repro.grid import GRIDS

    width = max(len(name) for name in GRIDS)
    for name, grid in GRIDS.items():
        axes = ", ".join(grid.axis_names())
        alias = f" (aliases: {', '.join(grid.aliases)})" if grid.aliases else ""
        print(f"{name:<{width}}  {grid.description} [axes: {axes}]{alias}")
    return 0


def _run_grid(args) -> int:
    from repro.common.errors import ConfigError
    from repro.grid import (
        expand_grid,
        parse_axis_spec,
        parse_set_spec,
        resolve_grid,
        run_grid,
    )

    if args.list_grids or args.name is None:
        return _list_grids()
    try:
        grid = resolve_grid(args.name)
        axis_overrides = dict(parse_axis_spec(spec) for spec in args.axis)
        fixed_overrides = dict(parse_set_spec(spec) for spec in args.set_knobs)
        if args.dry_run:
            run = expand_grid(grid, axis_overrides, fixed_overrides)
            print(f"grid {grid.name}: {len(run.cells)} cells")
            for name in grid.axis_names():
                values = ", ".join(str(v) for v in run.axis(name))
                print(f"  axis {name}: {values}")
            for point, (kind, _params) in zip(run.points, run.cells):
                label = ", ".join(f"{k}={v}" for k, v in point.items())
                print(f"  [{kind}] {label}")
            return 0
        started = time.time()
        jobs = max(1, args.jobs)
        if jobs == 1:
            report = run_grid(grid, axis_overrides, fixed_overrides)
        else:
            from repro.grid import PoolRunner, make_pool

            with make_pool(jobs) as pool:
                report = run_grid(
                    grid, axis_overrides, fixed_overrides,
                    runner=PoolRunner(pool, jobs),
                )
    except ConfigError as exc:
        # Unknown grid / axis / knob names (each with a did-you-mean
        # suggestion), malformed override specs, empty axes, and engines
        # failing a grid's capability gate all land here.
        print(f"GRID FAILED: {exc}", file=sys.stderr)
        return 2
    _emit(grid.name, report, grid.description, time.time() - started, args.out)
    return 0


def _run_sanitize(args) -> int:
    from repro.sanitizer.harness import report_failed, run_sanitize

    started = time.time()
    report = run_sanitize(
        scenarios=args.scenarios,
        seed=args.seed,
        replay=args.replay,
        shrink_failures=not args.no_shrink,
    )
    elapsed = time.time() - started
    print()
    print(report.render())
    print(f"\n[sanitize seed {args.seed} — {elapsed:.1f}s wall]")
    if args.out is not None:
        args.out.mkdir(parents=True, exist_ok=True)
        (args.out / "sanitize.txt").write_text(report.render() + "\n")
        (args.out / "sanitize.json").write_text(
            json.dumps(_jsonable(report.rows), indent=2) + "\n"
        )
    if report_failed(report):
        print("SANITIZE FAILED: see repro commands above", file=sys.stderr)
        return 1
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "list":
        width = max(len(name) for name in EXPERIMENTS)
        for name, (description, _factory) in EXPERIMENTS.items():
            print(f"{name:<{width}}  {description}")
        return 0
    if args.command == "grid":
        return _run_grid(args)
    if args.command == "chaos":
        return _run_chaos(args)
    if args.command == "elastic":
        return _run_elastic(args)
    if args.command == "overload":
        return _run_overload(args)
    if args.command == "sanitize":
        return _run_sanitize(args)
    if args.quick:
        args.nodes = list(QUICK["nodes"])
        args.threads = QUICK["threads"]
        args.records = args.records or QUICK["records"]
    args.nodes = tuple(args.nodes)
    targets = list(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    targets = [ALIASES.get(t, t) for t in targets]
    unknown = [t for t in targets if t not in EXPERIMENTS]
    if unknown:
        known = list(EXPERIMENTS) + list(ALIASES)
        hints = []
        for miss in unknown:
            close = did_you_mean(miss, known)
            if close:
                hints.append(f"did you mean {ALIASES.get(close, close)!r}?")
        hint = (" " + " ".join(hints)) if hints else ""
        print(
            f"unknown experiment(s): {unknown}; see 'repro list'.{hint}",
            file=sys.stderr,
        )
        return 2
    jobs = max(1, args.jobs)
    if args.profile:
        return _run_profiled(targets, args)
    if jobs == 1:
        args.runner = None
        for name in targets:
            _run_one(name, args, args.out)
        return 0
    return _run_parallel(targets, args, jobs)


def _run_parallel(targets: list, args, jobs: int) -> int:
    """Fan sweep cells (and, for several targets, whole experiments) out
    over one shared process pool of ``jobs`` workers.

    Each experiment gets its own driver thread so cells from different
    experiments interleave in the pool; reports are still printed in
    declaration order, so stdout is byte-identical to a serial run.
    """
    from concurrent.futures import ThreadPoolExecutor

    from repro.harness.parallel import PoolRunner, make_pool

    with make_pool(jobs) as pool:
        args.runner = PoolRunner(pool, jobs)
        if len(targets) == 1:
            _run_one(targets[0], args, args.out)
            return 0
        with ThreadPoolExecutor(max_workers=len(targets)) as drivers:
            futures = [
                drivers.submit(_build_report, name, args) for name in targets
            ]
            for name, future in zip(targets, futures):
                report, description, elapsed = future.result()
                _emit(name, report, description, elapsed, args.out)
    return 0


def _run_profiled(targets: list, args) -> int:
    """Serial run under cProfile; prints the hottest functions per target."""
    import cProfile
    import pstats

    args.runner = None  # profiling a pool of workers profiles only the parent
    for name in targets:
        profiler = cProfile.Profile()
        profiler.enable()
        report, description, elapsed = _build_report(name, args)
        profiler.disable()
        _emit(name, report, description, elapsed, args.out)
        print(f"\n--- profile: {name} (top 25 by cumulative time) ---")
        stats = pstats.Stats(profiler, stream=sys.stdout)
        stats.sort_stats("cumulative").print_stats(25)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
