"""Multi-run acceptance suites: elastic, chaos, and overload batteries.

Unlike the declarative figure grids (one independent cell per sweep
point, see :mod:`repro.grid`), these suites are inherently *sequential*
protocols: a baseline run pins the ground truth and the simulated
horizon, later runs are parameterised by what the baseline measured
(fault plans placed on the horizon, migration instants, calibrated SLOs
and ingest rates), and hard acceptance checks — zero lost results,
same-seed determinism, differential oracles — raise on violation rather
than merely reporting.  They moved here from ``harness/experiments.py``
when the figures collapsed into grid specs; the latency statistics they
report come from the shared :mod:`repro.metrics.slo` helpers.
"""

from __future__ import annotations

from typing import Optional

from repro.common.units import fmt_rate_records, fmt_time
from repro.harness.runner import make_workload
from repro.metrics.reporting import (
    Report,
    TextTable,
    fault_timeline_table,
    format_si,
)
from repro.metrics.slo import percentile, window_lags
from repro.runtime.oracle import diff_aggregates as _compare_aggregates


# ---------------------------------------------------------------------------
# Elastic: live partition migration + the oracle that keeps it honest
# ---------------------------------------------------------------------------

def run_elastic(
    system: str = "slash",
    workload_name: str = "ysb",
    nodes: int = 2,
    threads: int = 4,
    records_per_thread: int = 2500,
    seed: int = 11,
    strategy: str = "both",
    action: str = "join",
    rescale_frac: float = 0.35,
    add_nodes: int = 1,
    drain_node: Optional[int] = None,
    fluid_ranges: Optional[int] = None,
    fluid_spread: Optional[float] = None,
) -> Report:
    """Live-rescale experiment: migrate mid-run, diff against static.

    One static baseline pins the ground truth and the horizon; each
    requested migration strategy then reruns the *same* seeded scenario
    with a rescale scheduled at ``rescale_frac`` of the horizon and the
    runtime sanitizer on.  Every migrated run must reproduce the static
    aggregates exactly (the migration-correctness oracle); a divergence
    raises :class:`StateError` and fails the CLI run.

    The headline metric is the **migration-window latency spike**: the
    p50/p99 of window-trigger lag from the first migration stall onward,
    against the static run's p99.  All-at-once pays one bulk stall;
    Megaphone-style fluid splits it into per-key-range sub-moves, so its
    p99 spike stays a fraction of the bulk one.
    """
    from repro.common.errors import StateError
    from repro.core.system import MIGRATION_STRATEGIES
    from repro.runtime import REGISTRY, Scenario, run_scenario
    from repro.runtime.oracle import diff_results

    if strategy == "both":
        strategies = list(MIGRATION_STRATEGIES)
    else:
        # Unknown names flow into attach_elastic for the did-you-mean.
        strategies = [strategy]
    if not 0.0 < rescale_frac < 1.0:
        raise StateError(
            f"rescale_frac must be inside (0, 1), got {rescale_frac}"
        )
    REGISTRY.spec(system)  # unknown engine: fail fast with did-you-mean

    report = Report(f"elastic: {action} rescale ({system}, {workload_name})")
    workload_overrides = {"records_per_thread": records_per_thread}
    rescale_overrides: dict = {"action": action, "add_nodes": add_nodes}
    if drain_node is not None:
        rescale_overrides["drain_node"] = drain_node
    elif action == "leave":
        rescale_overrides["drain_node"] = nodes - 1
    if fluid_ranges is not None:
        rescale_overrides["fluid_ranges"] = fluid_ranges
    if fluid_spread is not None:
        rescale_overrides["fluid_spread"] = fluid_spread

    def scenario(**elastic_kwargs) -> Scenario:
        return Scenario(
            engine=system,
            workload=workload_name,
            nodes=nodes,
            threads=threads,
            workload_overrides=workload_overrides,
            seed=seed,
            **elastic_kwargs,
        )

    static = run_scenario(scenario())
    horizon = static.sim_seconds
    static_lags = window_lags(static)
    static_p99 = percentile(static_lags, 0.99)

    table = TextTable(
        f"migration-window latency (baseline p99 {fmt_time(static_p99)}, "
        f"rescale at {rescale_frac:.0%} of {fmt_time(horizon)})",
        ["strategy", "moved", "stalls", "window p50", "window p99",
         "p99 spike", "oracle"],
    )
    spikes: dict[str, float] = {}
    failures: list[str] = []
    for migration_strategy in strategies:
        migrated = run_scenario(scenario(
            rescale_at=horizon * rescale_frac,
            migration_strategy=migration_strategy,
            rescale_overrides=dict(rescale_overrides),
            sanitize=True,
        ))
        diff = diff_results(static, migrated)
        info = migrated.extra.get("elastic", {})
        lags = window_lags(migrated, info.get("started_at_s"))
        p50 = percentile(lags, 0.50)
        p99 = percentile(lags, 0.99)
        spike = p99 / static_p99 if static_p99 else float("inf")
        spikes[migration_strategy] = p99
        if not diff.ok:
            failures.append(f"{migration_strategy}: {diff.describe()}")
        table.add_row(
            migration_strategy,
            format_si(info.get("moved_bytes", 0), "B"),
            len(info.get("events", [])),
            fmt_time(p50),
            fmt_time(p99),
            f"{spike:.1f}x",
            "PASS" if diff.ok else "FAIL",
        )
        report.rows.append({
            "figure": "elastic",
            "system": system,
            "workload": workload_name,
            "nodes": nodes,
            "threads": threads,
            "seed": seed,
            "action": action,
            "strategy": migration_strategy,
            "rescale_at_s": horizon * rescale_frac,
            "moved_bytes": info.get("moved_bytes", 0),
            "moves_completed": info.get("moves_completed"),
            "rounds": len(info.get("events", [])),
            "window_p50_s": p50,
            "window_p99_s": p99,
            "static_p99_s": static_p99,
            "p99_spike": spike,
            "oracle_ok": diff.ok,
            "ownership_checks": migrated.extra.get(
                "sanitizer_checks", {}
            ).get("ownership-exactness", 0),
            "autoscale": info.get("autoscale"),
        })
    report.tables.append(table)
    if "fluid" in spikes and "all-at-once" in spikes:
        fluid_wins = spikes["fluid"] < spikes["all-at-once"]
        report.notes.append(
            "fluid p99 "
            + ("<" if fluid_wins else ">=")
            + " all-at-once p99 at equal state size: "
            + ("the Megaphone effect — sub-moves amortise the stall."
               if fluid_wins else
               "NOT the expected ordering; state too small for the "
               "per-round floor — grow --records.")
        )
    report.notes.append(
        "oracle: every migrated run's (window, key) aggregates must equal "
        "the static run's exactly; the sanitizer's ownership-exactness "
        "invariant (single leader per range, no delta applied twice) is "
        "live during every migrated run."
    )
    if failures:
        raise StateError(
            "elastic oracle failed — migrated run diverged from the "
            "static baseline: " + "; ".join(failures) + "\n" + report.render()
        )
    return report


# ---------------------------------------------------------------------------
# Chaos: fault injection + epoch-based recovery
# ---------------------------------------------------------------------------

def run_chaos(
    fault: str = "leader-crash",
    seed: int = 7,
    nodes: int = 3,
    threads: int = 2,
    workload_name: str = "ysb",
    records_per_thread: int = 1500,
    verify_determinism: bool = True,
    system: str = "slash",
    strategy: str = "both",
    elastic: Optional[str] = None,
) -> Report:
    """One chaos cell: fail-free baseline, faulted runs, invariant checks.

    The baseline run sets the simulated horizon the fault plan is placed
    on and provides the ground-truth output.  Each faulted run must (a)
    finish, (b) produce *exactly* the baseline's window results — the
    zero-lost-results invariant — and (c) when ``verify_determinism`` is
    set, reproduce itself byte-identically from the same seed and plan.
    A violation raises :class:`FaultError`, failing the CLI run.

    ``strategy`` names the recovery strategy ("epoch-buddy" or
    "async-snapshot") or "both" (the default): every strategy the engine
    supports runs against the *same* plan and baseline, and the report
    grows a side-by-side comparison of detection/MTTR latencies,
    snapshot overhead, and recovered records.  An engine with no
    recovery plane (Flink) runs its data-plane faults once, unstrategized.

    ``elastic`` names a migration strategy ("all-at-once" or "fluid"):
    every *faulted* run additionally performs a live join-rescale mid
    horizon, so faults land during or around an active migration — the
    hardest cell of the matrix.  The baseline stays fail-free *and*
    static, so zero-lost-results then asserts that chaos plus migration
    together still reproduce the untouched run exactly.
    """
    from repro.common.errors import FaultError
    from repro.faults.plan import FaultPlan
    from repro.runtime import (
        CAP_FAULT_INJECTION,
        RECOVERY_STRATEGIES,
        REGISTRY,
        STRATEGY_ASYNC_SNAPSHOT,
        Scenario,
        run_scenario,
    )

    # Fail fast on engines with no fault-injection plane (capability
    # error before any simulation runs, not a mid-run crash).
    REGISTRY.require(system, CAP_FAULT_INJECTION)
    supported = REGISTRY.create(system, nodes).supported_recovery_strategies
    if strategy == "both":
        strategies = [s for s in RECOVERY_STRATEGIES if s in supported] or [None]
    else:
        # An unknown or unsupported name flows into attach_faults, which
        # raises the CapabilityError naming what the engine *can* do.
        strategies = [strategy]

    tag = f" + {elastic} rescale" if elastic else ""
    report = Report(f"chaos: {fault}{tag} (seed {seed})")
    workload_overrides = {"records_per_thread": records_per_thread}

    def scenario(plan=None, overrides=None, recovery=None,
                 rescale_at=None) -> Scenario:
        elastic_kwargs = {}
        if rescale_at is not None:
            elastic_kwargs = dict(
                rescale_at=rescale_at,
                migration_strategy=elastic,
                rescale_overrides={"action": "join", "add_nodes": 1},
            )
        return Scenario(
            engine=system,
            workload=workload_name,
            nodes=nodes,
            threads=threads,
            workload_overrides=workload_overrides,
            fault_plan=plan,
            fault_overrides=dict(overrides or {}),
            recovery_strategy=recovery,
            **elastic_kwargs,
        )

    baseline = run_scenario(scenario())
    horizon = baseline.sim_seconds
    rescale_at = horizon * 0.3 if elastic else None
    plan = FaultPlan.preset(fault, seed, nodes, horizon)
    plan.validate(nodes, horizon_s=horizon)
    # Scale the fault-handling tunables to this workload's horizon, so
    # detection/retransmission behave sensibly at simulation scale.
    base_overrides = dict(
        detect_s=horizon * 0.02,
        watchdog_period_s=horizon * 0.01,
        rto_s=max(5e-6, horizon * 0.001),
        credit_timeout_s=max(2e-5, horizon * 0.005),
    )

    events_table = TextTable(
        f"injected faults (seed {seed}, horizon {fmt_time(horizon)})",
        ["kind", "at", "target", "duration"],
    )
    for event in plan:
        events_table.add_row(
            event.kind.value, fmt_time(event.at_s), event.target,
            fmt_time(event.duration_s) if event.duration_s else "-",
        )
    report.tables.append(events_table)

    per_strategy: list[dict] = []
    for recovery in strategies:
        overrides = dict(base_overrides)
        if recovery == STRATEGY_ASYNC_SNAPSHOT:
            # A handful of marker rounds across the horizon: enough to
            # restore from, cheap enough to measure overhead against
            # epoch-buddy's per-cut checkpoints.
            overrides["snapshot_interval_s"] = horizon * 0.04

        def faulted_run():
            return run_scenario(
                scenario(plan, overrides, recovery, rescale_at=rescale_at)
            )

        faulted = faulted_run()
        missing, extra, mismatched = _compare_aggregates(
            baseline.aggregates, faulted.aggregates
        )
        zero_lost = not (missing or extra or mismatched)

        deterministic = None
        if verify_determinism:
            repeat = faulted_run()
            deterministic = (
                repeat.aggregates == faulted.aggregates
                and repeat.sim_seconds == faulted.sim_seconds
                and repeat.emitted == faulted.emitted
            )

        faults_info = faulted.extra.get("faults", {})
        label = recovery or "n/a (data-plane only)"
        suffix = f" [{label}]" if len(strategies) > 1 or recovery else ""
        outcome = TextTable(
            f"recovery outcome{suffix}",
            ["metric", "value"],
        )
        outcome.add_row("recovery strategy", label)
        outcome.add_row("baseline windows", len(baseline.aggregates))
        outcome.add_row("faulted windows", len(faulted.aggregates))
        outcome.add_row("lost / extra / mismatched",
                        f"{len(missing)} / {len(extra)} / {len(mismatched)}")
        outcome.add_row("zero-lost-results", "PASS" if zero_lost else "FAIL")
        if deterministic is not None:
            outcome.add_row("same-seed determinism",
                            "PASS" if deterministic else "FAIL")
        outcome.add_row("sim time (baseline)", fmt_time(baseline.sim_seconds))
        outcome.add_row("sim time (faulted)", fmt_time(faulted.sim_seconds))
        outcome.add_row("retransmits", faulted.counters.retransmits)
        outcome.add_row("retransmitted bytes", format_si(
            faulted.counters.retransmitted_bytes, "B"))
        outcome.add_row("checkpoints taken/committed",
                        f"{faults_info.get('checkpoints_taken', 0)}/"
                        f"{faults_info.get('checkpoints_committed', 0)}")
        if faults_info.get("snapshot_rounds_started"):
            outcome.add_row(
                "snapshot rounds started/complete",
                f"{faults_info.get('snapshot_rounds_started', 0)}/"
                f"{faults_info.get('snapshot_rounds_complete', 0)}",
            )
        membership = faults_info.get("membership", {})
        if membership:
            outcome.add_row(
                "heartbeats sent/delivered/lost",
                f"{membership.get('heartbeats_sent', 0)}/"
                f"{membership.get('heartbeats_delivered', 0)}/"
                f"{membership.get('heartbeats_lost', 0)}",
            )
            outcome.add_row(
                "fence proposals (rejected/aborted)",
                f"{membership.get('fence_proposals', 0)} "
                f"({membership.get('fences_rejected', 0)}/"
                f"{membership.get('fences_aborted', 0)})",
            )
        split_brain = faults_info.get("terms", {}).get("split_brain", [])
        outcome.add_row(
            "split-brain commits",
            "NONE" if not split_brain else f"{split_brain!r}",
        )
        migration = faulted.extra.get("elastic")
        if migration is not None:
            outcome.add_row(
                "migration moves (done/rolled back)",
                f"{migration.get('moves_completed', 0)}/"
                f"{migration.get('moves_rolled_back', 0)}",
            )
            outcome.add_row(
                "migrated bytes",
                format_si(migration.get("moved_bytes", 0), "B"),
            )
        for victim, info in sorted(faults_info.get("crashes", {}).items()):
            outcome.add_row(f"exec {victim} recovery time",
                            fmt_time(info.get("recovery_s", 0.0)))
            outcome.add_row(f"exec {victim} promoted to",
                            info.get("promoted", "-"))
            outcome.add_row(f"exec {victim} replayed batches",
                            info.get("replayed_batches", 0))
        report.tables.append(outcome)
        if faults_info.get("crashes"):
            report.tables.append(fault_timeline_table(faults_info))

        crashes = faults_info.get("crashes", {})
        recovered_records = sum(
            info.get("replayed_records", 0) for info in crashes.values()
        )
        mttr = max(
            (info["mttr_s"] for info in crashes.values() if "mttr_s" in info),
            default=None,
        )
        detection = max(
            (info["detection_s"] for info in crashes.values()
             if "detection_s" in info),
            default=None,
        )
        per_strategy.append({
            "strategy": recovery,
            "label": label,
            "zero_lost": zero_lost,
            "deterministic": deterministic,
            "missing": missing,
            "extra": extra,
            "mismatched": mismatched,
            "split_brain": split_brain,
            "faulted": faulted,
            "faults_info": faults_info,
            "detection_s": detection,
            "mttr_s": mttr,
            "recovered_records": recovered_records,
        })

        report.rows.append({
            "figure": "chaos",
            "fault": fault,
            "system": system,
            "seed": seed,
            "nodes": nodes,
            "threads": threads,
            "workload": workload_name,
            "recovery_strategy": recovery,
            "zero_lost": zero_lost,
            "deterministic": deterministic,
            "missing": len(missing),
            "extra": len(extra),
            "mismatched": len(mismatched),
            "baseline_sim_seconds": baseline.sim_seconds,
            "faulted_sim_seconds": faulted.sim_seconds,
            "retransmits": faulted.counters.retransmits,
            "retransmitted_bytes": faulted.counters.retransmitted_bytes,
            "snapshot_overhead_bytes":
                faults_info.get("checkpoint_bytes_replicated", 0),
            "recovered_records": recovered_records,
            "detection_s": detection,
            "mttr_s": mttr,
            "faults": faults_info,
            "elastic": elastic,
            "migration": migration,
        })

    if len(per_strategy) > 1:
        comparison = TextTable(
            "recovery strategy comparison (same plan, same seed)",
            ["strategy", "detection", "mttr", "ckpts", "snapshot overhead",
             "recovered records", "sim time"],
        )
        for entry in per_strategy:
            info = entry["faults_info"]
            comparison.add_row(
                entry["label"],
                fmt_time(entry["detection_s"]) if entry["detection_s"]
                is not None else "-",
                fmt_time(entry["mttr_s"]) if entry["mttr_s"] is not None
                else "-",
                f"{info.get('checkpoints_taken', 0)}/"
                f"{info.get('checkpoints_committed', 0)}",
                format_si(info.get("checkpoint_bytes_replicated", 0), "B"),
                entry["recovered_records"],
                fmt_time(entry["faulted"].sim_seconds),
            )
        report.tables.append(comparison)

    report.notes.append(
        "zero-lost-results compares every (window, key) aggregate of the "
        "faulted run against the fail-free baseline (exact for ints, "
        "1e-9 relative for floats)."
    )

    for entry in per_strategy:
        tag = f" [{entry['label']}]" if entry["strategy"] else ""
        if not entry["zero_lost"]:
            raise FaultError(
                f"chaos {fault!r} (seed {seed}){tag} lost results: "
                f"{len(entry['missing'])} missing, {len(entry['extra'])} "
                f"extra, {len(entry['mismatched'])} mismatched\n"
                + report.render()
            )
        if entry["deterministic"] is False:
            raise FaultError(
                f"chaos {fault!r} (seed {seed}){tag} is not reproducible: "
                "two runs with the same seed and plan diverged\n"
                + report.render()
            )
        if entry["split_brain"]:
            raise FaultError(
                f"chaos {fault!r} (seed {seed}){tag} committed deltas for "
                f"the same partition under the same term: "
                f"{entry['split_brain']!r}\n" + report.render()
            )
    return report


# ---------------------------------------------------------------------------
# Overload: flash-crowd backpressure, SLO-aware shedding, gray failures
# ---------------------------------------------------------------------------

def run_overload(
    system: str = "slash",
    workload_name: str = "ysb",
    nodes: int = 3,
    threads: int = 2,
    records_per_thread: int = 1000,
    batch_records: Optional[int] = None,
    seed: int = 11,
    slo_ms: Optional[float] = None,
    rate_factor: float = 2.0,
    policy: str = "all",
    tenants: int = 4,
    zipf: float = 0.0,
    fault: Optional[str] = "slow-node",
    flash_at_frac: float = 0.5,
    flash_magnitude: float = 3.0,
) -> Report:
    """Flash-crowd experiment: shed to the SLO, account for every record.

    An unpaced baseline run measures the sustainable per-thread ingest
    rate and pins the ground-truth aggregates.  The offered load is then
    paced at ``rate_factor``x that rate with a flash-crowd envelope — a
    no-shed run must *violate* the declared p99 SLO (the overload is
    real), and every shedding policy must bring p99 back under it.  When
    ``slo_ms`` is not given it is declared as half the no-shed p99, the
    midpoint between "trivially met" and "unmeetable".

    Every shedding run records its per-batch keep masks; the harness
    rebuilds the admitted-only flows, runs the sequential reference
    oracle over them, and requires exact agreement — zero lost results
    among non-shed records, on top of the coordinator's exact
    ``offered = admitted + shed`` accounting.  A per-tenant table shows
    each policy's shed share against the tenant's traffic share.

    ``fault`` ("slow-node" or "jitter") adds the gray-failure section:
    the same paced scenario under the fault preset, with straggler
    mitigation on vs off — the mitigated run must not be slower at p99.
    """
    from repro.common.errors import StateError
    from repro.core.system import CAP_OVERLOAD, SHED_POLICIES
    from repro.runtime import REGISTRY, Scenario, run_scenario
    from repro.runtime.oracle import diff_results

    REGISTRY.require(system, CAP_OVERLOAD)
    if policy == "all":
        policies = list(SHED_POLICIES)
    elif policy == "none":
        policies = []
    else:
        # Unknown names flow into attach_overload for the did-you-mean.
        policies = [policy]

    report = Report(
        f"overload: flash crowd at {rate_factor:g}x sustainable "
        f"({system}, {workload_name})"
    )
    if batch_records is None:
        # Admission (and therefore shedding) is per batch: keep enough
        # batches per thread that partial-pressure shedding has texture
        # and the straggler EWMA has samples to converge on.
        batch_records = max(25, records_per_thread // 20)
    workload_overrides: dict = {
        "records_per_thread": records_per_thread,
        "batch_records": batch_records,
    }
    if zipf > 0:
        workload_overrides["zipf_z"] = zipf

    def scenario(shed_policy=None, fault_plan=None, **overload_fields) -> Scenario:
        overload_fields.setdefault("tenants", tenants)
        return Scenario(
            engine=system,
            workload=workload_name,
            nodes=nodes,
            threads=threads,
            workload_overrides=workload_overrides,
            seed=seed,
            shed_policy=shed_policy,
            fault_plan=fault_plan,
            overload_overrides=overload_fields,
        )

    baseline = run_scenario(Scenario(
        engine=system, workload=workload_name, nodes=nodes, threads=threads,
        workload_overrides=workload_overrides, seed=seed,
    ))
    horizon = baseline.sim_seconds
    sustainable = records_per_thread / horizon
    rate = sustainable * rate_factor
    envelope = dict(
        ingest_rate_records_per_s=rate,
        flash_at_frac=flash_at_frac,
        flash_magnitude=flash_magnitude,
    )

    # The overload must be real: without shedding, the declared SLO is
    # violated.  slo_p99_ms only affects the verdict, not the dynamics,
    # so the no-shed run doubles as the SLO calibration run.
    noshed = run_scenario(scenario(slo_p99_ms=1.0, **envelope))
    no = noshed.extra["overload"]
    if slo_ms is None:
        slo_ms = no["delay_p99_ms"] * 0.5
    if slo_ms <= 0:
        raise StateError(
            f"no-shed p99 is {no['delay_p99_ms']:.6f} ms at "
            f"{rate_factor:g}x the sustainable rate — the workload is "
            "not overloaded; raise --rate-factor"
        )

    table = TextTable(
        f"flash crowd at {rate_factor:g}x sustainable "
        f"(SLO p99 {slo_ms:.4g} ms, sustainable "
        f"{fmt_rate_records(sustainable)})",
        ["policy", "p50", "p99", "p99.9", "shed", "shed %", "backlog",
         "SLO", "oracle"],
    )

    def delay_row(label, info, oracle_ok):
        shed_pct = 100.0 * info["shed"] / info["offered"] if info["offered"] else 0.0
        table.add_row(
            label,
            f"{info['delay_p50_ms']:.4g} ms",
            f"{info['delay_p99_ms']:.4g} ms",
            f"{info['delay_p999_ms']:.4g} ms",
            info["shed"],
            f"{shed_pct:.1f}%",
            info["max_backlog_records"],
            "MET" if info["delay_p99_ms"] <= slo_ms else "VIOLATED",
            oracle_ok,
        )

    delay_row("no-shed", no, "n/a")
    failures: list[str] = []
    if no["delay_p99_ms"] <= slo_ms:
        failures.append(
            f"no-shed baseline met the {slo_ms:.4g} ms SLO "
            f"(p99 {no['delay_p99_ms']:.4g} ms) — the overload is not real"
        )

    tenant_table = TextTable(
        f"per-tenant fairness ({tenants} tenants, key-space striping)",
        ["policy", "tenant", "offered", "shed", "traffic share", "shed share"],
    )
    policy_infos: dict[str, dict] = {}
    for shed_policy in policies:
        shedded = run_scenario(scenario(
            shed_policy=shed_policy, slo_p99_ms=slo_ms,
            record_masks=True, **envelope,
        ))
        info = shedded.extra["overload"]
        policy_infos[shed_policy] = info

        # Differential oracle: the reference engine over the admitted-only
        # flows must reproduce the shedding run exactly — nothing besides
        # the logged shed records went missing.
        masks = shedded.extra.get("overload_keep_masks", {})
        workload = make_workload(workload_name, seed=seed, **workload_overrides)
        flows = workload.flows(nodes, threads)
        admitted_flows = {}
        for (node, thread), flow in flows.items():
            admitted_flows[(node, thread)] = [
                (stream, batch.select(masks[(node, thread, i)])
                 if (node, thread, i) in masks else batch)
                for i, (stream, batch) in enumerate(flow)
            ]
        oracle = REGISTRY.create("reference").run(
            workload.build_query(), admitted_flows
        )
        diff = diff_results(oracle, shedded)
        if not diff.ok:
            failures.append(f"{shed_policy}: {diff.describe()}")
        total = sum(len(b) for f in flows.values() for _s, b in f)
        if info["offered"] != total:
            failures.append(
                f"{shed_policy}: offered {info['offered']} != "
                f"{total} records generated"
            )
        if info["offered"] != info["admitted"] + info["shed"]:
            failures.append(
                f"{shed_policy}: offered {info['offered']} != admitted "
                f"{info['admitted']} + shed {info['shed']}"
            )
        if info["delay_p99_ms"] > slo_ms:
            failures.append(
                f"{shed_policy}: p99 {info['delay_p99_ms']:.4g} ms "
                f"violates the {slo_ms:.4g} ms SLO"
            )
        delay_row(shed_policy, info, "PASS" if diff.ok else "FAIL")

        offered_total = sum(info["tenant_offered"]) or 1
        shed_total = sum(info["tenant_shed"]) or 1
        for tenant in range(tenants):
            tenant_offered = info["tenant_offered"][tenant]
            tenant_shed = info["tenant_shed"][tenant]
            tenant_table.add_row(
                shed_policy, tenant, tenant_offered, tenant_shed,
                f"{100.0 * tenant_offered / offered_total:.1f}%",
                f"{100.0 * tenant_shed / shed_total:.1f}%",
            )
        report.rows.append({
            "figure": "overload",
            "system": system,
            "workload": workload_name,
            "nodes": nodes,
            "threads": threads,
            "seed": seed,
            "policy": shed_policy,
            "rate_factor": rate_factor,
            "slo_p99_ms": slo_ms,
            "offered": info["offered"],
            "admitted": info["admitted"],
            "shed": info["shed"],
            "delay_p50_ms": info["delay_p50_ms"],
            "delay_p99_ms": info["delay_p99_ms"],
            "delay_p999_ms": info["delay_p999_ms"],
            "slo_met": info["delay_p99_ms"] <= slo_ms,
            "noshed_p99_ms": no["delay_p99_ms"],
            "tenant_offered": info["tenant_offered"],
            "tenant_shed": info["tenant_shed"],
            "oracle_ok": diff.ok,
        })
    report.tables.append(table)
    if policies:
        report.tables.append(tenant_table)

    if fault is not None:
        from repro.faults.plan import FaultEvent, FaultKind, FaultPlan

        mitigation_policy = policies[0] if policies else "drop-oldest"
        from repro.common.suggest import unknown_name_message

        if fault not in ("slow-node", "jitter"):
            raise StateError(unknown_name_message(
                "gray fault", fault, ("slow-node", "jitter")
            ))
        # Pin the gray-fault window over the whole processing phase
        # (the randomized presets stay the chaos matrix's concern): the
        # victim runs degraded for essentially the entire run, so the
        # straggler detector has a signal to converge on.
        kind = FaultKind(fault)
        plan = FaultPlan([FaultEvent(
            kind, at_s=horizon * 0.02, target=0,
            duration_s=horizon * 0.95,
            factor=0.25 if kind is FaultKind.SLOW_NODE else 8.0,
        )], seed=seed)
        plan.validate(nodes, horizon_s=horizon)
        # The gray section measures *degradation*, not general overload:
        # its SLO sits above the healthy cluster's no-shed p99, so an
        # unfaulted run would sail through without shedding a record —
        # only the straggler pushes the tail out, and only shedding
        # harder at the straggler (mitigation) can pull it back.
        gray_slo_ms = no["delay_p99_ms"] * 2.0
        gray = TextTable(
            f"gray failure: {fault}, {mitigation_policy} shedding "
            f"(SLO p99 {gray_slo_ms:.4g} ms)",
            ["mitigation", "p99", "shed", "stragglers flagged", "SLO"],
        )
        gray_p99: dict[bool, float] = {}
        for mitigation in (False, True):
            faulted = run_scenario(scenario(
                shed_policy=mitigation_policy, fault_plan=plan,
                slo_p99_ms=gray_slo_ms, mitigation=mitigation,
                straggler_min_samples=3, **envelope,
            ))
            info = faulted.extra["overload"]
            gray_p99[mitigation] = info["delay_p99_ms"]
            gray.add_row(
                "on" if mitigation else "off",
                f"{info['delay_p99_ms']:.4g} ms",
                info["shed"],
                info["straggler"]["ever_flagged"],
                "MET" if info["delay_p99_ms"] <= gray_slo_ms else "VIOLATED",
            )
            report.rows.append({
                "figure": "overload-gray",
                "system": system,
                "fault": fault,
                "seed": seed,
                "policy": mitigation_policy,
                "mitigation": mitigation,
                "delay_p99_ms": info["delay_p99_ms"],
                "shed": info["shed"],
                "stragglers": info["straggler"]["ever_flagged"],
            })
        report.tables.append(gray)
        if gray_p99[True] > gray_p99[False]:
            failures.append(
                f"straggler mitigation made p99 worse under {fault}: "
                f"{gray_p99[True]:.4g} ms on vs {gray_p99[False]:.4g} ms off"
            )
        else:
            reduction = (
                (gray_p99[False] - gray_p99[True]) / gray_p99[False]
                if gray_p99[False] else 0.0
            )
            report.notes.append(
                f"straggler mitigation under {fault}: p99 "
                f"{gray_p99[False]:.4g} ms -> {gray_p99[True]:.4g} ms "
                f"({reduction:.1%} reduction)"
            )

    report.notes.append(
        "oracle: the sequential reference engine over the admitted-only "
        "flows (rebuilt from the recorded keep masks) must reproduce each "
        "shedding run's (window, key) aggregates exactly — zero lost "
        "results among non-shed records, offered = admitted + shed "
        "accounted per record."
    )
    if failures:
        raise StateError(
            "overload acceptance failed: " + "; ".join(failures)
            + "\n" + report.render()
        )
    return report
