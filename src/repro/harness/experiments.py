"""One experiment entry point per table/figure of the paper's Sec. 8.

Every figure is now a *declarative grid* (see :mod:`repro.grid.figures`):
axes, fixed knobs, a cell template, and a report function, registered
under the figure's name.  The functions here are thin wrappers that map
the historical keyword signatures onto grid axis/fixed overrides and
call :func:`repro.grid.run_grid` — the rendered reports are
byte-identical to the hand-rolled loops they replaced, serial or
``-j N`` parallel.

The sequential acceptance suites (elastic, chaos, overload) live in
:mod:`repro.harness.suites` and are re-exported here for back-compat.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.grid import resolve_grid, run_grid
from repro.grid.figures import LINK_BANDWIDTH  # noqa: F401  (re-export)
from repro.harness.suites import (  # noqa: F401  (re-export)
    _compare_aggregates,
    run_chaos,
    run_elastic,
    run_overload,
)
from repro.metrics.reporting import Report
from repro.runtime.registry import BENCH_EPOCH_BYTES


def _grid(name: str, runner, axes: Optional[dict] = None,
          fixed: Optional[dict] = None) -> Report:
    return run_grid(
        resolve_grid(name), axis_overrides=axes, fixed_overrides=fixed,
        runner=runner,
    )


# ---------------------------------------------------------------------------
# Fig. 6: end-to-end weak scaling
# ---------------------------------------------------------------------------

def fig6_aggregations(
    node_counts: Sequence[int] = (2, 4, 8, 16),
    threads: int = 10,
    systems: Sequence[str] = ("flink", "uppar", "slash"),
    workload_overrides: Optional[dict] = None,
    runner=None,
) -> Report:
    """Figs. 6a-6c: YSB, CM, NB7 windowed aggregations."""
    return _grid(
        "fig6a-c", runner,
        axes={"nodes": tuple(node_counts), "system": tuple(systems)},
        fixed={"threads": threads, "workload_overrides": workload_overrides},
    )


def fig6_joins(
    node_counts: Sequence[int] = (2, 4, 8, 16),
    threads: int = 10,
    systems: Sequence[str] = ("flink", "uppar", "slash"),
    workload_overrides: Optional[dict] = None,
    runner=None,
) -> Report:
    """Figs. 6d-6e: NB8 and NB11 windowed joins."""
    return _grid(
        "fig6d-e", runner,
        axes={"nodes": tuple(node_counts), "system": tuple(systems)},
        fixed={"threads": threads, "workload_overrides": workload_overrides},
    )


# ---------------------------------------------------------------------------
# Fig. 7: COST analysis against LightSaber
# ---------------------------------------------------------------------------

def fig7_cost(
    node_counts: Sequence[int] = (2, 4, 8, 16),
    threads: int = 10,
    workloads: Sequence[str] = ("ysb", "cm", "nb7"),
    workload_overrides: Optional[dict] = None,
    runner=None,
) -> Report:
    """Fig. 7: LightSaber (one node) vs Slash on 2..16 nodes."""
    return _grid(
        "fig7", runner,
        axes={
            "workload": tuple(workloads),
            # "L" is the scale-up baseline point (LightSaber, one node).
            "nodes": ("L",) + tuple(node_counts),
        },
        fixed={"threads": threads, "workload_overrides": workload_overrides},
    )


# ---------------------------------------------------------------------------
# Fig. 8: drill-down on the data plane
# ---------------------------------------------------------------------------

def fig8_buffer_sweep(
    buffer_sizes: Sequence[int] = (4096, 16384, 32768, 65536, 131072, 262144, 524288, 1048576),
    threads: int = 2,
    records_per_thread: int = 150_000,
    runner=None,
) -> Report:
    """Figs. 8a-8b: RO throughput and latency vs channel buffer size."""
    return _grid(
        "fig8ab", runner,
        axes={"buffer": tuple(buffer_sizes)},
        fixed={"threads": threads, "records_per_thread": records_per_thread},
    )


def fig8_parallelism(
    thread_counts: Sequence[int] = (1, 2, 4, 6, 8, 10),
    buffer_bytes: int = 65536,
    records_per_thread: int = 120_000,
    runner=None,
) -> Report:
    """Fig. 8c: RO throughput vs number of threads."""
    return _grid(
        "fig8c", runner,
        axes={"threads": tuple(thread_counts)},
        fixed={
            "buffer_bytes": buffer_bytes,
            "records_per_thread": records_per_thread,
        },
    )


def fig8_skew(
    zipf_zs: Sequence[float] = (0.2, 0.6, 1.0, 1.4, 1.8, 2.0),
    threads: int = 10,
    buffer_bytes: int = 65536,
    records_per_thread: int = 60_000,
    runner=None,
) -> Report:
    """Fig. 8d: throughput vs Zipf skew of the partitioning key (RO, YSB)."""
    return _grid(
        "fig8d", runner,
        axes={"z": tuple(zipf_zs)},
        fixed={
            "threads": threads,
            "buffer_bytes": buffer_bytes,
            "records_per_thread": records_per_thread,
        },
    )


# ---------------------------------------------------------------------------
# Figs. 9-10 and Table 1: micro-architecture analysis
# ---------------------------------------------------------------------------

def fig9_breakdown_ro(
    thread_counts: Sequence[int] = (2, 10),
    buffer_bytes: int = 65536,
    records_per_thread: int = 120_000,
    runner=None,
) -> Report:
    """Fig. 9: top-down execution breakdown of RO, senders and receivers."""
    return _grid(
        "fig9", runner,
        axes={"threads": tuple(thread_counts)},
        fixed={
            "buffer_bytes": buffer_bytes,
            "records_per_thread": records_per_thread,
        },
    )


def fig10_breakdown_ysb(
    threads: int = 10,
    records_per_thread: int = 6_000,
    runner=None,
) -> Report:
    """Fig. 10: top-down breakdown of end-to-end YSB on two nodes."""
    return _grid(
        "fig10", runner,
        fixed={"threads": threads, "records_per_thread": records_per_thread},
    )


def table1_counters(
    threads: int = 10,
    records_per_thread: int = 6_000,
    runner=None,
) -> Report:
    """Table 1: resource utilisation, end-to-end YSB on two nodes."""
    return _grid(
        "table1", runner,
        fixed={"threads": threads, "records_per_thread": records_per_thread},
    )


# ---------------------------------------------------------------------------
# Ablations (claims from the paper's text)
# ---------------------------------------------------------------------------

def ablation_credits(
    credit_counts: Sequence[int] = (4, 8, 16, 64),
    threads: int = 2,
    buffer_bytes: int = 65536,
    records_per_thread: int = 120_000,
    runner=None,
) -> Report:
    """Sec. 8.3.2 text: c=8 is best; c=64 regresses by up to ~10 %."""
    return _grid(
        "abl-credits", runner,
        axes={"credits": tuple(credit_counts)},
        fixed={
            "threads": threads,
            "buffer_bytes": buffer_bytes,
            "records_per_thread": records_per_thread,
        },
    )


def ablation_epoch_bytes(
    epoch_sizes: Sequence[int] = (16 * 1024, 64 * 1024, BENCH_EPOCH_BYTES, 1024 * 1024),
    nodes: int = 4,
    threads: int = 4,
    runner=None,
) -> Report:
    """Epoch-length sweep around the (scaled) 64 MB default of Sec. 8.1.1."""
    return _grid(
        "abl-epoch", runner,
        axes={"epoch_bytes": tuple(epoch_sizes)},
        fixed={"nodes": nodes, "threads": threads},
    )


def ablation_execution_strategy(
    nodes: int = 4,
    threads: int = 4,
    records_per_thread: int = 2500,
    runner=None,
) -> Report:
    """Sec. 5.3: Slash supports compiled and interpreted execution."""
    return _grid(
        "abl-exec", runner,
        fixed={
            "nodes": nodes,
            "threads": threads,
            "records_per_thread": records_per_thread,
        },
    )


def ablation_selective_signaling(
    threads: int = 2,
    buffer_bytes: int = 16384,
    records_per_thread: int = 120_000,
    runner=None,
) -> Report:
    """Sec. 3.2 / C2: selective signaling saves per-message CPU work."""
    return _grid(
        "abl-signal", runner,
        fixed={
            "threads": threads,
            "buffer_bytes": buffer_bytes,
            "records_per_thread": records_per_thread,
        },
    )


def extra_trigger_latency(
    nodes: int = 2,
    threads: int = 10,
    records_per_thread: int = 6_000,
    runner=None,
) -> Report:
    """Result latency comparison (paper Sec. 8.3.2 text)."""
    return _grid(
        "extra-latency", runner,
        fixed={
            "nodes": nodes,
            "threads": threads,
            "records_per_thread": records_per_thread,
        },
    )
