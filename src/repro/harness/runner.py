"""System and workload construction for the experiment harness.

Centralises three things:

* the **system registry** (Slash, RDMA UpPar, Flink, LightSaber) with
  engine construction per system;
* the **workload registry** with simulation-scale default parameters
  (the paper streams 1 GB per thread; we scale volumes down and note in
  EXPERIMENTS.md that simulated rates are volume-independent once the
  run reaches steady state);
* the generic weak-scaling **end-to-end run** used by every Fig. 6/7
  experiment.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Optional

from repro.baselines.flink import FlinkEngine
from repro.baselines.lightsaber import LightSaberEngine
from repro.baselines.uppar import UpParEngine
from repro.common.config import paper_cluster
from repro.common.errors import ConfigError
from repro.core.engine import RunResult, SlashEngine
from repro.workloads.base import Workload
from repro.workloads.cluster_monitoring import ClusterMonitoringWorkload
from repro.workloads.nexmark import (
    Nexmark7Workload,
    Nexmark8Workload,
    Nexmark11Workload,
)
from repro.workloads.readonly import ReadOnlyWorkload
from repro.workloads.ysb import YsbWorkload

SYSTEMS = ("flink", "uppar", "slash", "lightsaber")

# Epoch length for simulation-scale end-to-end runs; keeps the paper's
# roughly 1/16-of-per-thread-input proportion at scaled volumes.
BENCH_EPOCH_BYTES = 128 * 1024

#: Simulation-scale workload parameter presets (see EXPERIMENTS.md).
WORKLOADS: dict[str, Callable[..., Workload]] = {
    "ysb": lambda **kw: YsbWorkload(
        **{"records_per_thread": 2500, "key_range": 100_000, "batch_records": 500, **kw}
    ),
    "cm": lambda **kw: ClusterMonitoringWorkload(
        **{"records_per_thread": 2500, "jobs": 50_000, "batch_records": 500, **kw}
    ),
    "nb7": lambda **kw: Nexmark7Workload(
        **{"records_per_thread": 2500, "key_range": 100_000, "batch_records": 500, **kw}
    ),
    "nb8": lambda **kw: Nexmark8Workload(
        **{"records_per_thread": 1000, "sellers": 20_000, "batch_records": 250, **kw}
    ),
    "nb11": lambda **kw: Nexmark11Workload(
        **{"records_per_thread": 1000, "sellers": 10_000, "batch_records": 250, **kw}
    ),
    "ro": lambda **kw: ReadOnlyWorkload(
        **{"records_per_thread": 60_000, "key_range": 100_000, "batch_records": 4000, **kw}
    ),
}


def make_workload(name: str, **overrides: Any) -> Workload:
    """Build a registered workload at bench scale, with overrides."""
    try:
        factory = WORKLOADS[name]
    except KeyError:
        raise ConfigError(f"unknown workload {name!r}; known: {sorted(WORKLOADS)}") from None
    return factory(**overrides)


def build_engine(system: str, nodes: int, **overrides: Any):
    """Construct one system under test for an ``nodes``-node deployment."""
    config = paper_cluster(max(nodes, 1))
    if system == "slash":
        return SlashEngine(
            cluster_config=config,
            epoch_bytes=overrides.pop("epoch_bytes", BENCH_EPOCH_BYTES),
            **overrides,
        )
    if system == "uppar":
        return UpParEngine(cluster_config=config, **overrides)
    if system == "flink":
        return FlinkEngine(cluster_config=config, **overrides)
    if system == "lightsaber":
        return LightSaberEngine(cluster_config=paper_cluster(1), **overrides)
    raise ConfigError(f"unknown system {system!r}; known: {SYSTEMS}")


@dataclass
class EndToEndRow:
    """One point of a weak-scaling figure."""

    system: str
    workload: str
    nodes: int
    threads: int
    records: int
    sim_seconds: float
    throughput_records_per_s: float
    result: RunResult

    @property
    def per_node_throughput(self) -> float:
        return self.throughput_records_per_s / self.nodes


def run_end_to_end(
    system: str,
    workload_name: str,
    nodes: int,
    threads_per_node: int,
    workload_overrides: Optional[dict] = None,
    engine_overrides: Optional[dict] = None,
) -> EndToEndRow:
    """Run one (system, workload, scale) cell of a Fig. 6/7 experiment."""
    workload = make_workload(workload_name, **(workload_overrides or {}))
    engine = build_engine(system, nodes, **(engine_overrides or {}))
    flows = workload.flows(nodes, threads_per_node)
    result = engine.run(workload.build_query(), flows)
    return EndToEndRow(
        system=system,
        workload=workload_name,
        nodes=nodes,
        threads=threads_per_node,
        records=result.input_records,
        sim_seconds=result.sim_seconds,
        throughput_records_per_s=result.throughput_records_per_s,
        result=result,
    )
