"""Back-compat construction helpers for the experiment harness.

Everything here is now a thin veneer over :mod:`repro.runtime` — the
engine registry owns system construction (including capability flags and
did-you-mean suggestions), and the scenario module owns the workload
presets.  This module keeps the established harness names (``SYSTEMS``,
``build_engine``, ``make_workload``, ``run_end_to_end``) stable for the
CLI, tests, and notebooks while the registry is the single source of
truth underneath.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

from repro.core.engine import RunResult
from repro.runtime import (
    BENCH_EPOCH_BYTES,
    REGISTRY,
    Scenario,
    WORKLOADS,
    make_workload,
    run_scenario,
)

#: The four systems under test in the paper's figures ("reference" is
#: registered too but is an oracle, not a measured system).
SYSTEMS = ("flink", "uppar", "slash", "lightsaber")

__all__ = [
    "BENCH_EPOCH_BYTES",
    "EndToEndRow",
    "SYSTEMS",
    "WORKLOADS",
    "build_engine",
    "make_workload",
    "run_end_to_end",
]


def build_engine(system: str, nodes: int, **overrides: Any):
    """Construct one system under test for an ``nodes``-node deployment."""
    return REGISTRY.create(system, nodes=nodes, **overrides)


@dataclass
class EndToEndRow:
    """One point of a weak-scaling figure."""

    system: str
    workload: str
    nodes: int
    threads: int
    records: int
    sim_seconds: float
    throughput_records_per_s: float
    result: RunResult

    @property
    def per_node_throughput(self) -> float:
        return self.throughput_records_per_s / self.nodes


def run_end_to_end(
    system: str,
    workload_name: str,
    nodes: int,
    threads_per_node: int,
    workload_overrides: Optional[dict] = None,
    engine_overrides: Optional[dict] = None,
) -> EndToEndRow:
    """Run one (system, workload, scale) cell of a Fig. 6/7 experiment."""
    result = run_scenario(
        Scenario(
            engine=system,
            workload=workload_name,
            nodes=nodes,
            threads=threads_per_node,
            workload_overrides=dict(workload_overrides or {}),
            engine_overrides=dict(engine_overrides or {}),
        )
    )
    return EndToEndRow(
        system=system,
        workload=workload_name,
        nodes=nodes,
        threads=threads_per_node,
        records=result.input_records,
        sim_seconds=result.sim_seconds,
        throughput_records_per_s=result.throughput_records_per_s,
        result=result,
    )
