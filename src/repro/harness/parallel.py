"""Back-compat veneer over :mod:`repro.grid.cells`.

The picklable sweep cells and the ``-j N`` runners moved below the
harness into the grid layer (so declarative grids can expand into cells
without importing upward); this module re-exports them under their
historical names.  Import from :mod:`repro.grid.cells` in new code.
"""

from __future__ import annotations

from repro.grid.cells import (
    Cell,
    PoolRunner,
    SerialRunner,
    end_to_end_cell,
    end_to_end_scenario_cell,
    engine_run_cell,
    make_pool,
    run_cell,
    scenario_cell,
    transfer_cell,
)

__all__ = [
    "Cell",
    "PoolRunner",
    "SerialRunner",
    "end_to_end_cell",
    "end_to_end_scenario_cell",
    "engine_run_cell",
    "make_pool",
    "run_cell",
    "scenario_cell",
    "transfer_cell",
]
