"""NexMark benchmark workloads NB7, NB8, NB11 (paper Sec. 8.1.2).

The NexMark suite simulates a real-time auction platform with three
logical streams — auctions (269 B records), bids (32 B), and seller
events (206 B) — each carrying an 8-byte key and an 8-byte creation
timestamp.  The paper selects:

* **NB7** — a 60 s tumbling windowed aggregation over the bid stream
  (highest bid: MAX on price), with Pareto-distributed keys producing
  heavy hitters; small state, RMW update pattern;
* **NB8** — a 12 h tumbling window join of auctions and sellers (4:1
  record ratio, every auction has a valid seller); large state, append
  update pattern, large tuples;
* **NB11** — a session window join (gap-based) of bids and sellers;
  small tuples on the probe-heavy side.

Join flows interleave the two streams on a single per-worker timeline
cut into alternating time segments, so each flow's timestamps stay
strictly monotone (the watermark contract).
"""

from __future__ import annotations

import numpy as np

from repro.core.query import Query
from repro.core.records import Schema
from repro.core.windows import SessionWindows, TumblingWindow
from repro.workloads.base import Flow, Workload
from repro.workloads.distributions import (
    monotone_timestamps,
    pareto_keys,
    uniform_keys,
)

BID_SCHEMA = Schema(
    name="bids",
    fields=(("ts", "i8"), ("key", "i8"), ("price", "f8")),
    record_bytes=32,
)
AUCTION_SCHEMA = Schema(
    name="auctions",
    fields=(("ts", "i8"), ("key", "i8"), ("auction_id", "i8")),
    record_bytes=269,
)
SELLER_SCHEMA = Schema(
    name="sellers",
    fields=(("ts", "i8"), ("key", "i8"), ("rating", "i8")),
    record_bytes=206,
)

NB7_WINDOW_MS = 60_000
NB8_WINDOW_MS = 12 * 3600 * 1000
NB11_GAP_MS = 10_000

#: Auctions (or bids) per seller event, per the benchmark's 4:1 ratio.
JOIN_RATIO = 4


class Nexmark7Workload(Workload):
    """NB7: 60 s tumbling MAX(price) per key over bids, Pareto keys."""

    name = "nb7"

    def __init__(
        self,
        records_per_thread: int = 4096,
        batch_records: int = 512,
        seed: int = 7,
        span_ms: int | None = None,
        key_range: int = 1_000_000,
        windows: int = 4,
    ):
        self.key_range = key_range
        self.windows = windows
        super().__init__(records_per_thread, batch_records, seed, span_ms)

    @property
    def default_span_ms(self) -> int:
        return self.windows * NB7_WINDOW_MS

    def build_query(self) -> Query:
        query = Query("nb7")
        (
            query.stream("bids", BID_SCHEMA)
            .project("ts", "key", "price")
            .aggregate(TumblingWindow(NB7_WINDOW_MS), agg="max", value_field="price")
        )
        return query

    def _flow(self, node: int, thread: int) -> Flow:
        rng = self._generator("flow", node, thread)
        n = self.records_per_thread
        timestamps = monotone_timestamps(n, self.span_ms, rng)
        keys = pareto_keys(n, self.key_range, rng)
        prices = rng.uniform(1.0, 1000.0, size=n).round(2)
        return list(
            self._batches(BID_SCHEMA, "bids", ts=timestamps, key=keys, price=prices)
        )


class _JoinWorkload(Workload):
    """Shared machinery for the two join workloads.

    The per-worker timeline is cut into ``segments`` alternating slices:
    ``JOIN_RATIO`` slices of the left (high-rate) stream followed by one
    slice of sellers, repeating — giving the benchmark's 4:1 record ratio
    while keeping each flow's timestamps strictly monotone.
    """

    left_stream = "left"
    left_schema = BID_SCHEMA

    def __init__(
        self,
        records_per_thread: int = 4096,
        batch_records: int = 512,
        seed: int = 7,
        span_ms: int | None = None,
        sellers: int = 1024,
    ):
        self.sellers = sellers
        super().__init__(records_per_thread, batch_records, seed, span_ms)

    def _left_columns(self, n: int, rng: np.random.Generator) -> dict[str, np.ndarray]:
        raise NotImplementedError

    def _flow(self, node: int, thread: int) -> Flow:
        rng = self._generator("flow", node, thread)
        n = self.records_per_thread
        n_sellers = max(1, n // (JOIN_RATIO + 1))
        n_left = n - n_sellers
        timeline = monotone_timestamps(n, self.span_ms, rng)
        # Deal timestamps onto the two streams in alternating runs of
        # JOIN_RATIO left records then 1 seller record.
        pattern = np.arange(n) % (JOIN_RATIO + 1) == JOIN_RATIO
        seller_slots = np.flatnonzero(pattern)[:n_sellers]
        mask = np.zeros(n, dtype=bool)
        mask[seller_slots] = True
        # If rounding starved one side, hand leftover slots to sellers.
        missing = n_sellers - mask.sum()
        if missing > 0:
            spare = np.flatnonzero(~mask)[:missing]
            mask[spare] = True
        left_ts = timeline[~mask][:n_left]
        seller_ts = timeline[mask][:n_sellers]

        left_cols = self._left_columns(len(left_ts), rng)
        left_cols["ts"] = left_ts
        seller_keys = uniform_keys(len(seller_ts), self.sellers, rng)
        ratings = rng.integers(1, 6, size=len(seller_ts))

        left_items = list(
            self._batches(self.left_schema, self.left_stream, **left_cols)
        )
        seller_items = list(
            self._batches(
                SELLER_SCHEMA, "sellers", ts=seller_ts, key=seller_keys, rating=ratings
            )
        )
        return _merge_by_time(left_items, seller_items)


def _merge_by_time(a: Flow, b: Flow) -> Flow:
    """Merge two batch lists by their first timestamp (both monotone)."""
    merged: Flow = []
    i = j = 0
    while i < len(a) and j < len(b):
        ts_a = a[i][1].timestamps[0] if len(a[i][1]) else np.iinfo(np.int64).max
        ts_b = b[j][1].timestamps[0] if len(b[j][1]) else np.iinfo(np.int64).max
        if ts_a <= ts_b:
            merged.append(a[i])
            i += 1
        else:
            merged.append(b[j])
            j += 1
    merged.extend(a[i:])
    merged.extend(b[j:])
    return merged


class Nexmark8Workload(_JoinWorkload):
    """NB8: 12 h tumbling window join of auctions and sellers."""

    name = "nb8"
    left_stream = "auctions"
    left_schema = AUCTION_SCHEMA

    def __init__(self, *args, windows: int = 2, **kwargs):
        self.windows = windows
        super().__init__(*args, **kwargs)

    @property
    def default_span_ms(self) -> int:
        return self.windows * NB8_WINDOW_MS

    def build_query(self) -> Query:
        query = Query("nb8")
        auctions = query.stream("auctions", AUCTION_SCHEMA)
        sellers = query.stream("sellers", SELLER_SCHEMA)
        auctions.join(sellers, TumblingWindow(NB8_WINDOW_MS))
        return query

    def _left_columns(self, n: int, rng: np.random.Generator) -> dict[str, np.ndarray]:
        return {
            "key": uniform_keys(n, self.sellers, rng),
            "auction_id": rng.integers(0, 1 << 40, size=n),
        }


class Nexmark11Workload(_JoinWorkload):
    """NB11: session window join of bids and sellers (gap 10 s)."""

    name = "nb11"
    left_stream = "bids"
    left_schema = BID_SCHEMA

    def __init__(self, *args, gap_ms: int = NB11_GAP_MS, sessions: int = 6, **kwargs):
        self.gap_ms = gap_ms
        self.sessions = sessions
        super().__init__(*args, **kwargs)

    @property
    def default_span_ms(self) -> int:
        # Enough span that multiple sessions close mid-run.
        return self.sessions * 5 * self.gap_ms

    def build_query(self) -> Query:
        query = Query("nb11")
        bids = query.stream("bids", BID_SCHEMA)
        sellers = query.stream("sellers", SELLER_SCHEMA)
        bids.join(sellers, SessionWindows(self.gap_ms))
        return query

    def _left_columns(self, n: int, rng: np.random.Generator) -> dict[str, np.ndarray]:
        return {
            "key": uniform_keys(n, self.sellers, rng),
            "price": rng.uniform(1.0, 1000.0, size=n).round(2),
        }
