"""The Yahoo! Streaming Benchmark (YSB).

Per the paper (Sec. 8.1.2): 78-byte records with an 8-byte key and an
8-byte creation timestamp; the query is a filter (keep 'view' events,
one of three types), a projection, and a 10-minute event-time tumbling
count per campaign key.  Keys are drawn uniformly from a wide range
(10 M in the paper; configurable here), or from Zipf for the skew
drill-down of Fig. 8d.
"""

from __future__ import annotations

from repro.core.query import Query
from repro.core.records import Schema
from repro.core.windows import TumblingWindow
from repro.workloads.base import Flow, Workload
import numpy as np

from repro.workloads.distributions import monotone_timestamps, uniform_keys, zipf_keys

YSB_SCHEMA = Schema(
    name="ysb_events",
    fields=(("ts", "i8"), ("key", "i8"), ("event_type", "i8")),
    record_bytes=78,
)

#: Event types; the query keeps only views, 1 in 3 of the stream.
EVENT_VIEW = 2
WINDOW_MS = 10 * 60 * 1000  # the 10-minute tumbling count window


class YsbWorkload(Workload):
    """YSB: filter -> project -> 10 m tumbling per-key count."""

    name = "ysb"

    def __init__(
        self,
        records_per_thread: int = 4096,
        batch_records: int = 512,
        seed: int = 7,
        span_ms: int | None = None,
        key_range: int = 10_000_000,
        zipf_z: float = 0.0,
        windows: int = 4,
        disorder_ms: int = 0,
    ):
        self.key_range = key_range
        self.zipf_z = zipf_z
        self.windows = windows
        self.disorder_ms = disorder_ms
        super().__init__(records_per_thread, batch_records, seed, span_ms)

    @property
    def default_span_ms(self) -> int:
        return self.windows * WINDOW_MS

    def build_query(self) -> Query:
        query = Query("ysb")
        (
            query.stream("events", YSB_SCHEMA, disorder_ms=self.disorder_ms)
            .filter(lambda batch: batch.col("event_type") == EVENT_VIEW, selectivity=1 / 3)
            .project("ts", "key")
            .aggregate(TumblingWindow(WINDOW_MS), agg="count")
        )
        return query

    def _flow(self, node: int, thread: int) -> Flow:
        rng = self._generator("flow", node, thread)
        n = self.records_per_thread
        timestamps = monotone_timestamps(n, self.span_ms, rng)
        if self.disorder_ms > 0:
            # Bounded out-of-orderness: pulling each timestamp back by a
            # bounded jitter lets a record trail a later-stamped one by
            # at most disorder_ms, matching the query's declared bound.
            jitter = rng.integers(0, self.disorder_ms + 1, size=n)
            timestamps = np.maximum(timestamps - jitter, 0)
        if self.zipf_z > 0:
            keys = zipf_keys(
                n, self.key_range, self.zipf_z, rng,
                mapping_rng=self._generator("zipf-map"),
            )
        else:
            keys = uniform_keys(n, self.key_range, rng)
        event_types = rng.integers(0, 3, size=n)
        return list(
            self._batches(
                YSB_SCHEMA, "events", ts=timestamps, key=keys, event_type=event_types
            )
        )
