"""The Cluster Monitoring (CM) benchmark.

The paper streams the Google cluster trace (12.5 K nodes) and computes,
per 2-second tumbling window, the mean CPU utilisation of each job
(Sec. 8.1.2).  The trace itself is not redistributable, so — per the
substitution policy in DESIGN.md — we generate a synthetic trace with
the same record shape (64 B, 8 B job key, 8 B timestamp, CPU sample)
and the trace's salient key statistics: a heavy-tailed job-size
distribution (few giant jobs emit most task events) modelled as Zipf.
"""

from __future__ import annotations

from repro.core.query import Query
from repro.core.records import Schema
from repro.core.windows import TumblingWindow
from repro.workloads.base import Flow, Workload
from repro.workloads.distributions import monotone_timestamps, zipf_keys

CM_SCHEMA = Schema(
    name="cm_tasks",
    fields=(("ts", "i8"), ("key", "i8"), ("cpu", "f8")),
    record_bytes=64,
)

WINDOW_MS = 2_000  # the 2-second tumbling window


class ClusterMonitoringWorkload(Workload):
    """CM: 2 s tumbling mean CPU per job over a synthetic Google trace."""

    name = "cm"

    def __init__(
        self,
        records_per_thread: int = 4096,
        batch_records: int = 512,
        seed: int = 7,
        span_ms: int | None = None,
        jobs: int = 100_000,
        job_skew: float = 1.1,
        windows: int = 4,
    ):
        self.jobs = jobs
        self.job_skew = job_skew
        self.windows = windows
        super().__init__(records_per_thread, batch_records, seed, span_ms)

    @property
    def default_span_ms(self) -> int:
        return self.windows * WINDOW_MS

    def build_query(self) -> Query:
        query = Query("cm")
        (
            query.stream("tasks", CM_SCHEMA)
            .project("ts", "key", "cpu")
            .aggregate(TumblingWindow(WINDOW_MS), agg="avg", value_field="cpu")
        )
        return query

    def _flow(self, node: int, thread: int) -> Flow:
        rng = self._generator("flow", node, thread)
        n = self.records_per_thread
        timestamps = monotone_timestamps(n, self.span_ms, rng)
        keys = zipf_keys(
            n, self.jobs, self.job_skew, rng,
            mapping_rng=self._generator("zipf-map"),
        )
        cpu = rng.uniform(0.0, 1.0, size=n)
        return list(
            self._batches(CM_SCHEMA, "tasks", ts=timestamps, key=keys, cpu=cpu)
        )
