"""The workload protocol shared by every benchmark generator.

A :class:`Workload` couples a query with a deterministic data generator.
``flows(nodes, threads_per_node)`` returns, for every worker, the
event-time-ordered list of ``(stream_name, RecordBatch)`` items that
worker ingests — the weak-scaling shape of the paper's end-to-end
methodology (each thread processes its own fixed-size partition;
partitions are non-disjoint in keys, Sec. 8.2.2).
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.common.errors import ConfigError
from repro.common.rng import RngTree
from repro.core.query import Query
from repro.core.records import RecordBatch, Schema

Flow = list[tuple[str, RecordBatch]]


class Workload:
    """Base class: subclasses implement ``build_query`` and ``_flow``."""

    name = "abstract"

    def __init__(
        self,
        records_per_thread: int = 4096,
        batch_records: int = 512,
        seed: int = 7,
        span_ms: int | None = None,
    ):
        if records_per_thread <= 0:
            raise ConfigError("records_per_thread must be positive")
        if batch_records <= 0:
            raise ConfigError("batch_records must be positive")
        self.records_per_thread = records_per_thread
        self.batch_records = batch_records
        self.rng = RngTree(seed).child(self.name)
        self._span_ms = span_ms
        self._flow_cache: dict[tuple[int, int], Flow] = {}

    # -- to implement -------------------------------------------------------
    def build_query(self) -> Query:
        """The streaming query this workload executes."""
        raise NotImplementedError

    @property
    def default_span_ms(self) -> int:
        """Event-time span every flow covers (aligns windows cluster-wide)."""
        raise NotImplementedError

    def _flow(self, node: int, thread: int) -> Flow:
        """Generate one worker's flow."""
        raise NotImplementedError

    # -- provided --------------------------------------------------------------
    @property
    def span_ms(self) -> int:
        return self._span_ms if self._span_ms is not None else self.default_span_ms

    def flow_for(self, node: int, thread: int) -> Flow:
        """One worker's flow, memoized per instance.

        Flow generation is idempotent (every ``_flow`` call derives its
        generators from the :class:`RngTree` by name), so caching only
        skips redundant regeneration — e.g. a buffer-size sweep running
        many cells over the same workload.  Callers must treat the
        returned batches as immutable.
        """
        key = (node, thread)
        flow = self._flow_cache.get(key)
        if flow is None:
            flow = self._flow_cache[key] = self._flow(node, thread)
        return flow

    def flows(self, nodes: int, threads_per_node: int) -> dict[tuple[int, int], Flow]:
        """All workers' flows for an ``nodes x threads_per_node`` deployment."""
        if nodes <= 0 or threads_per_node <= 0:
            raise ConfigError("nodes and threads_per_node must be positive")
        return {
            (node, thread): self.flow_for(node, thread)
            for node in range(nodes)
            for thread in range(threads_per_node)
        }

    def total_records(self, nodes: int, threads_per_node: int) -> int:
        """Source records across the whole deployment (weak scaling)."""
        return nodes * threads_per_node * self.records_per_thread

    # -- helpers for subclasses ----------------------------------------------------
    def _generator(self, *names) -> np.random.Generator:
        return self.rng.generator(*names)

    def _batches(self, schema: Schema, stream: str, **columns: np.ndarray) -> Iterator[tuple[str, RecordBatch]]:
        """Cut column arrays into (stream, batch) items of batch_records."""
        total = len(next(iter(columns.values())))
        for start in range(0, total, self.batch_records):
            end = min(start + self.batch_records, total)
            sliced = {name: col[start:end] for name, col in columns.items()}
            yield stream, schema.batch_from_columns(**sliced)
