"""The paper's self-developed Read-Only (RO) benchmark (Sec. 8.1.2).

A deliberately compute-light stateful query used for the I/O drill-down:
records carry only an 8-byte key and an 8-byte timestamp (16 B wire
size), and the operator simply counts per-key occurrences.  Keys come
from a uniform 100 M range, or Zipf for the skew sweep of Fig. 8d.

There is no windowing in the paper's description; we model that as a
single tumbling window spanning the whole stream, so the count
'window' triggers exactly once at end-of-stream.
"""

from __future__ import annotations

from repro.core.query import Query
from repro.core.records import Schema
from repro.core.windows import TumblingWindow
from repro.workloads.base import Flow, Workload
from repro.workloads.distributions import monotone_timestamps, uniform_keys, zipf_keys

RO_SCHEMA = Schema(
    name="ro_items",
    fields=(("ts", "i8"), ("key", "i8")),
    record_bytes=16,
)


class ReadOnlyWorkload(Workload):
    """RO: per-key occurrence count, no meaningful windowing."""

    name = "ro"

    def __init__(
        self,
        records_per_thread: int = 4096,
        batch_records: int = 512,
        seed: int = 7,
        span_ms: int | None = None,
        key_range: int = 100_000_000,
        zipf_z: float = 0.0,
    ):
        self.key_range = key_range
        self.zipf_z = zipf_z
        super().__init__(records_per_thread, batch_records, seed, span_ms)

    @property
    def default_span_ms(self) -> int:
        # One window covering the entire stream.
        return max(60_000, 2 * self.records_per_thread)

    def build_query(self) -> Query:
        query = Query("ro")
        (
            query.stream("items", RO_SCHEMA)
            .aggregate(TumblingWindow(self.span_ms), agg="count")
        )
        return query

    def _flow(self, node: int, thread: int) -> Flow:
        rng = self._generator("flow", node, thread)
        n = self.records_per_thread
        timestamps = monotone_timestamps(n, self.span_ms, rng)
        if self.zipf_z > 0:
            keys = zipf_keys(
                n, self.key_range, self.zipf_z, rng,
                mapping_rng=self._generator("zipf-map"),
            )
        else:
            keys = uniform_keys(n, self.key_range, rng)
        return list(self._batches(RO_SCHEMA, "items", ts=timestamps, key=keys))
