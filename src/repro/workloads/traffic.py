"""Production traffic: sessionized per-user streams with arrival storms.

The grid layer's ``traffic-slo`` suite needs input that looks like a
production ingest feed rather than a benchmark generator: users arrive
in *sessions* (bursts of consecutive events by one user), the user
population is multi-tenant and Zipf-hot (a few whale users and their
tenants dominate), the offered rate carries a diurnal/flash-crowd
envelope, and the arrival order is imperfect — a bounded fraction of
records shows up late (within a declared bound) or duplicated.

:class:`SessionizedWorkload` generates exactly that, on top of the same
:class:`~repro.workloads.base.Workload` protocol every benchmark uses:

* **sessions** — user ids are assigned in geometric-length runs over
  globally monotone base timestamps, so each user's events are ordered
  (per-key ordering holds by construction) while the stream interleaves
  sessions the way a multiplexed ingest pipe does;
* **late storm** — exactly ``round(late_frac * n)`` records are pulled
  back by at most ``late_by_ms``; the query declares the same bound as
  its out-of-orderness allowance, so lateness is bounded by contract;
* **duplicate storm** — exactly ``round(dup_frac * n)`` records are
  byte-identical copies of their predecessor (an at-least-once redelivery
  burst), keeping the per-thread record count and the weak-scaling
  accounting intact;
* **burst envelope** — event-time density follows
  :func:`~repro.workloads.distributions.burst_envelope`, compressing
  timestamps inside the flash-crowd window the way real arrival
  timestamps bunch up under load.

The query is a per-user tumbling count (the sessionization lives in the
*data*, where admission control and shedding see it), so every engine
with plain windowed aggregation can run the suite.
"""

from __future__ import annotations

import numpy as np

from repro.common.errors import ConfigError
from repro.core.query import Query
from repro.core.records import Schema
from repro.core.windows import TumblingWindow
from repro.workloads.base import Flow, Workload
from repro.workloads.distributions import (
    burst_envelope,
    monotone_timestamps,
    uniform_keys,
    zipf_keys,
)

SESSION_SCHEMA = Schema(
    name="session_events",
    fields=(("ts", "i8"), ("key", "i8")),
    record_bytes=64,
)

WINDOW_MS = 60 * 1000  # per-minute per-user activity counts


def session_runs(
    count: int,
    mean_session_records: float,
    users: int,
    zipf_z: float,
    rng: np.random.Generator,
    mapping_rng: np.random.Generator | None = None,
) -> np.ndarray:
    """``count`` user ids assigned in geometric session-length runs.

    Each session picks one user (Zipf-hot when ``zipf_z > 0``) and emits
    a geometric number of consecutive events for them, mean
    ``mean_session_records`` — the classic sessionized clickstream shape.
    """
    if count <= 0:
        return np.empty(0, dtype=np.int64)
    if mean_session_records < 1.0:
        raise ConfigError(
            f"mean_session_records must be >= 1, got {mean_session_records}"
        )
    # Enough sessions to cover `count` records even if every draw is 1
    # (geometric draws are >= 1, so `count` sessions always suffice).
    lengths = rng.geometric(1.0 / mean_session_records, size=count).astype(
        np.int64
    )
    sessions = int(np.searchsorted(np.cumsum(lengths), count) + 1)
    if zipf_z > 0:
        owners = zipf_keys(sessions, users, zipf_z, rng, mapping_rng=mapping_rng)
    else:
        owners = uniform_keys(sessions, users, rng)
    return np.repeat(owners, lengths[:sessions])[:count]


def late_storm(
    timestamps: np.ndarray,
    late_frac: float,
    late_by_ms: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """Pull exactly ``round(late_frac * n)`` timestamps back, bounded.

    The input must be (weakly) monotone; each selected record's new
    timestamp trails the running maximum by at most ``late_by_ms`` —
    the storm's lateness is *within the declared bound by construction*.
    """
    if not 0.0 <= late_frac <= 1.0:
        raise ConfigError(f"late_frac must be in [0, 1], got {late_frac}")
    if late_by_ms < 0:
        raise ConfigError(f"late_by_ms must be >= 0, got {late_by_ms}")
    n = len(timestamps)
    k = int(round(late_frac * n))
    if k == 0 or late_by_ms == 0:
        return timestamps
    chosen = rng.choice(n, size=k, replace=False)
    jitter = rng.integers(1, late_by_ms + 1, size=k)
    shifted = timestamps.copy()
    shifted[chosen] = np.maximum(shifted[chosen] - jitter, 0)
    return shifted


def duplicate_storm(
    columns: dict,
    dup_frac: float,
    rng: np.random.Generator,
) -> dict:
    """Replace exactly ``round(dup_frac * n)`` records with redeliveries.

    Each selected record (never the first) becomes a byte-identical copy
    of its predecessor across *all* columns — an at-least-once source
    redelivering on a retry.  The record count is unchanged, so the
    weak-scaling accounting (``records_per_thread`` per worker) holds.
    """
    if not 0.0 <= dup_frac < 1.0:
        raise ConfigError(f"dup_frac must be in [0, 1), got {dup_frac}")
    n = len(next(iter(columns.values())))
    k = int(round(dup_frac * n))
    if k == 0 or n < 2:
        return columns
    chosen = rng.choice(np.arange(1, n), size=min(k, n - 1), replace=False)
    out = {}
    for name, col in columns.items():
        copied = col.copy()
        # Resolve runs of adjacent picks left-to-right so a copied record
        # propagates through a chain of redeliveries.
        for index in np.sort(chosen):
            copied[index] = copied[index - 1]
        out[name] = copied
    return out


class SessionizedWorkload(Workload):
    """Sessionized multi-tenant user streams with arrival storms."""

    name = "sessions"

    def __init__(
        self,
        records_per_thread: int = 4096,
        batch_records: int = 512,
        seed: int = 7,
        span_ms: int | None = None,
        users: int = 100_000,
        zipf_z: float = 0.0,
        mean_session_records: float = 8.0,
        windows: int = 4,
        late_frac: float = 0.0,
        late_by_ms: int = 0,
        dup_frac: float = 0.0,
        flash_at_frac: float | None = None,
        flash_magnitude: float = 2.0,
        diurnal_amplitude: float = 0.0,
    ):
        self.users = users
        self.zipf_z = zipf_z
        self.mean_session_records = mean_session_records
        self.windows = windows
        self.late_frac = late_frac
        self.late_by_ms = late_by_ms
        self.dup_frac = dup_frac
        self.flash_at_frac = flash_at_frac
        self.flash_magnitude = flash_magnitude
        self.diurnal_amplitude = diurnal_amplitude
        super().__init__(records_per_thread, batch_records, seed, span_ms)

    @property
    def default_span_ms(self) -> int:
        return self.windows * WINDOW_MS

    def build_query(self) -> Query:
        query = Query("sessions")
        (
            query.stream(
                "events", SESSION_SCHEMA, disorder_ms=self.late_by_ms
            )
            .project("ts", "key")
            .aggregate(TumblingWindow(WINDOW_MS), agg="count")
        )
        return query

    def _timestamps(self, n: int, rng: np.random.Generator) -> np.ndarray:
        if self.flash_at_frac is None and self.diurnal_amplitude == 0.0:
            return monotone_timestamps(n, self.span_ms, rng)
        # Burst-shaped event-time density: warp a unit-rate arrival
        # schedule by the envelope, rescale onto the span, and add the
        # index so the base remains strictly monotone.
        envelope = burst_envelope(
            n,
            diurnal_amplitude=self.diurnal_amplitude,
            flash_at_frac=self.flash_at_frac,
            flash_magnitude=self.flash_magnitude,
        )
        noisy = envelope * rng.uniform(0.5, 1.5, size=n)
        instants = np.cumsum(1.0 / noisy)
        instants -= instants[0]
        span = max(self.span_ms - n, 1)
        scaled = np.floor(
            instants / (instants[-1] + 1e-12) * span
        ).astype(np.int64)
        return scaled + np.arange(n, dtype=np.int64)

    def _flow(self, node: int, thread: int) -> Flow:
        rng = self._generator("flow", node, thread)
        n = self.records_per_thread
        timestamps = self._timestamps(n, rng)
        keys = session_runs(
            n, self.mean_session_records, self.users, self.zipf_z,
            self._generator("sessions", node, thread),
            mapping_rng=self._generator("zipf-map"),
        )
        if self.late_frac > 0 and self.late_by_ms > 0:
            timestamps = late_storm(
                timestamps, self.late_frac, self.late_by_ms,
                self._generator("late", node, thread),
            )
        columns = {"ts": timestamps, "key": keys}
        if self.dup_frac > 0:
            columns = duplicate_storm(
                columns, self.dup_frac, self._generator("dup", node, thread)
            )
        return list(self._batches(SESSION_SCHEMA, "events", **columns))
