"""Key distributions and timestamp synthesis for workload generators.

The paper's workloads draw partitioning keys from three families:
uniform (YSB, RO), Zipf with tunable skew ``z`` (the Fig. 8d skew sweep),
and Pareto with a heavy tail (the NB7 bid stream).  Timestamps are
strictly monotonically increasing per flow, per the paper's data model
(Sec. 2.2), which is what makes per-flow maxima valid low watermarks.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.common.errors import ConfigError


def monotone_timestamps(count: int, span_ms: int, rng: np.random.Generator) -> np.ndarray:
    """``count`` strictly increasing int64 timestamps covering ``span_ms``.

    Random positive inter-arrival gaps are drawn and rescaled so the flow
    spans exactly ``[0, span_ms)``; strict monotonicity requires
    ``span_ms >= count``.
    """
    if count <= 0:
        return np.empty(0, dtype=np.int64)
    if span_ms < count:
        raise ConfigError(
            f"span of {span_ms} ms cannot hold {count} strictly increasing "
            "millisecond timestamps"
        )
    gaps = rng.exponential(1.0, size=count)
    positions = np.cumsum(gaps)
    scaled = (positions - positions[0]) / (positions[-1] - positions[0] + 1e-12)
    timestamps = np.floor(scaled * (span_ms - count)).astype(np.int64)
    # Adding the index guarantees strictness even after flooring.
    return timestamps + np.arange(count, dtype=np.int64)


def uniform_keys(count: int, key_range: int, rng: np.random.Generator) -> np.ndarray:
    """Keys drawn uniformly from ``[0, key_range)``."""
    if key_range <= 0:
        raise ConfigError(f"key_range must be positive, got {key_range}")
    return rng.integers(0, key_range, size=count, dtype=np.int64)


def zipf_keys(
    count: int,
    key_range: int,
    z: float,
    rng: np.random.Generator,
    mapping_rng: Optional[np.random.Generator] = None,
) -> np.ndarray:
    """Keys from a Zipf(z) distribution over ``[0, key_range)``.

    ``z = 0`` degenerates to uniform; larger ``z`` concentrates mass on
    few hot keys (the Fig. 8d sweep uses z = 0.2 ... 2.0).  Implemented by
    inverse-CDF sampling over the truncated Zipf probability vector, with
    the rank-to-key mapping shuffled so hot keys do not cluster at 0 (and
    therefore do not all hash to one partition by accident).

    ``mapping_rng`` derives the rank-to-key shuffle.  It must be the
    *same* stream for every flow of one workload: skew is a global
    property — all producers share the same hot keys, which is exactly
    what overloads one hash-partitioned consumer (Fig. 8d).  Defaults to
    a fixed-seed generator.
    """
    if key_range <= 0:
        raise ConfigError(f"key_range must be positive, got {key_range}")
    if z < 0:
        raise ConfigError(f"zipf exponent must be >= 0, got {z}")
    if z == 0:
        return uniform_keys(count, key_range, rng)
    # Truncate the support: beyond ~1M ranks the tail mass is negligible
    # and the probability vector would dominate memory.
    support = min(key_range, 1_000_000)
    ranks = np.arange(1, support + 1, dtype=np.float64)
    weights = ranks ** -z
    cdf = np.cumsum(weights)
    cdf /= cdf[-1]
    draws = rng.random(count)
    sampled_ranks = np.searchsorted(cdf, draws, side="left")
    # Permute ranks onto the key space deterministically and globally.
    if mapping_rng is None:
        mapping_rng = np.random.default_rng(0x5EED)
    mapping = mapping_rng.permutation(support)
    return mapping[sampled_ranks].astype(np.int64)


def pareto_keys(
    count: int,
    key_range: int,
    rng: np.random.Generator,
    shape: float = 1.16,
) -> np.ndarray:
    """Heavy-tailed keys (Pareto), as the NB7 bid stream specifies.

    ``shape ~ 1.16`` is the classic 80/20 Pareto; smaller values are more
    skewed.  Values are folded into ``[0, key_range)``.
    """
    if key_range <= 0:
        raise ConfigError(f"key_range must be positive, got {key_range}")
    if shape <= 0:
        raise ConfigError(f"pareto shape must be positive, got {shape}")
    raw = rng.pareto(shape, size=count)
    scaled = np.floor(raw / (raw.max() + 1e-12) * (key_range - 1)).astype(np.int64)
    return scaled


def burst_envelope(
    count: int,
    *,
    diurnal_amplitude: float = 0.0,
    flash_at_frac: Optional[float] = None,
    flash_duration_frac: float = 0.1,
    flash_magnitude: float = 2.0,
) -> np.ndarray:
    """Per-record rate multipliers: diurnal sinusoid + flash-crowd step.

    Models the production traffic shape of the ROADMAP's million-user
    suite: a slow diurnal swing (``1 + amplitude * sin``) with an
    optional flash crowd — a contiguous window of ``flash_duration_frac``
    of the stream, starting at ``flash_at_frac``, where the offered rate
    jumps by ``flash_magnitude``x.  The envelope is normalised to mean
    1.0 so the *average* offered rate stays the nominal rate and only
    the shape changes; feed it to :func:`arrival_times`.
    """
    if count < 0:
        raise ConfigError(f"count must be non-negative, got {count}")
    if not 0.0 <= diurnal_amplitude < 1.0:
        raise ConfigError(
            f"diurnal_amplitude must be in [0, 1), got {diurnal_amplitude} "
            "(>= 1 would imply a negative offered rate at the trough)"
        )
    if flash_magnitude < 1.0:
        raise ConfigError(
            f"flash_magnitude must be >= 1, got {flash_magnitude} "
            "(a flash crowd raises the rate; use diurnal_amplitude for dips)"
        )
    if not 0.0 < flash_duration_frac <= 1.0:
        raise ConfigError(
            f"flash_duration_frac must be in (0, 1], got {flash_duration_frac}"
        )
    if flash_at_frac is not None and not 0.0 <= flash_at_frac < 1.0:
        raise ConfigError(
            f"flash_at_frac must be in [0, 1), got {flash_at_frac}"
        )
    if count == 0:
        return np.empty(0, dtype=np.float64)
    phase = np.arange(count, dtype=np.float64) / count
    envelope = 1.0 + diurnal_amplitude * np.sin(2.0 * np.pi * phase)
    if flash_at_frac is not None and flash_magnitude > 1.0:
        in_flash = (phase >= flash_at_frac) & (
            phase < flash_at_frac + flash_duration_frac
        )
        envelope = np.where(in_flash, envelope * flash_magnitude, envelope)
    return envelope / envelope.mean()


def arrival_times(
    count: int,
    rate_records_per_s: float,
    envelope: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Offered-load arrival instants (seconds) for ``count`` records.

    Record ``i`` arrives ``1 / (rate * envelope[i])`` after record
    ``i - 1``; with no envelope the stream is a constant-rate drip.
    This is the *offered* schedule the admission controller compares
    against: a record whose scheduled arrival is long past when the
    worker finally reaches it has been queue-delayed by the difference.
    """
    if count < 0:
        raise ConfigError(f"count must be non-negative, got {count}")
    if rate_records_per_s <= 0:
        raise ConfigError(
            f"rate_records_per_s must be positive, got {rate_records_per_s}"
        )
    if count == 0:
        return np.empty(0, dtype=np.float64)
    if envelope is None:
        gaps = np.full(count, 1.0 / rate_records_per_s, dtype=np.float64)
    else:
        if len(envelope) != count:
            raise ConfigError(
                f"envelope has {len(envelope)} entries for {count} records"
            )
        if np.any(envelope <= 0):
            raise ConfigError("envelope entries must all be positive")
        gaps = 1.0 / (rate_records_per_s * np.asarray(envelope, dtype=np.float64))
    return np.cumsum(gaps)


def tenant_ids(keys: np.ndarray, tenants: int) -> np.ndarray:
    """Map keys onto a tenant id in ``[0, tenants)``.

    Tenancy is a deterministic function of the key (key-space striping),
    so every component — shedder, oracle, fairness report — attributes a
    record to the same tenant without carrying extra per-record columns.
    """
    if tenants <= 0:
        raise ConfigError(f"tenants must be positive, got {tenants}")
    return np.asarray(keys, dtype=np.int64) % tenants


def distinct_fraction(keys: np.ndarray) -> float:
    """Share of distinct keys in a sample (a cheap skew observable)."""
    if len(keys) == 0:
        return 0.0
    return len(np.unique(keys)) / len(keys)


def effective_working_set_keys(keys: np.ndarray, coverage: float = 0.9) -> int:
    """Number of hot keys covering ``coverage`` of the accesses.

    Used by cost calibration: under skew, the effective working set that
    must stay cache-resident shrinks far below the distinct-key count.
    """
    if len(keys) == 0:
        return 0
    _values, counts = np.unique(keys, return_counts=True)
    ordered = np.sort(counts)[::-1]
    cumulative = np.cumsum(ordered) / len(keys)
    return int(np.searchsorted(cumulative, coverage) + 1)
