"""Benchmark workload generators (paper Sec. 8.1.2).

Each workload pairs a streaming query with a deterministic, seeded data
generator that produces one physical flow per worker thread:

* :mod:`repro.workloads.ysb` — the Yahoo! Streaming Benchmark: filter +
  project + 10-minute tumbling per-key count;
* :mod:`repro.workloads.nexmark` — NexMark queries NB7 (60 s tumbling MAX
  over bids, Pareto keys), NB8 (12 h tumbling join auction x seller), and
  NB11 (session join bid x seller);
* :mod:`repro.workloads.cluster_monitoring` — the Google-trace-shaped
  Cluster Monitoring benchmark: 2 s tumbling mean CPU per job;
* :mod:`repro.workloads.readonly` — the paper's self-developed Read-Only
  benchmark: a pure per-key occurrence count used for I/O drill-downs;
* :mod:`repro.workloads.distributions` — uniform / Zipf / Pareto key
  generators, strictly-monotone timestamp synthesis, and the
  diurnal/flash-crowd burst envelopes + arrival schedules the overload
  plane paces admission against.
"""

from repro.workloads.base import Workload
from repro.workloads.distributions import (
    arrival_times,
    burst_envelope,
    monotone_timestamps,
    tenant_ids,
    uniform_keys,
    zipf_keys,
    pareto_keys,
)
from repro.workloads.ysb import YsbWorkload, YSB_SCHEMA
from repro.workloads.cluster_monitoring import ClusterMonitoringWorkload, CM_SCHEMA
from repro.workloads.readonly import ReadOnlyWorkload, RO_SCHEMA
from repro.workloads.nexmark import (
    Nexmark7Workload,
    Nexmark8Workload,
    Nexmark11Workload,
    BID_SCHEMA,
    AUCTION_SCHEMA,
    SELLER_SCHEMA,
)

__all__ = [
    "Workload",
    "arrival_times",
    "burst_envelope",
    "tenant_ids",
    "monotone_timestamps",
    "uniform_keys",
    "zipf_keys",
    "pareto_keys",
    "YsbWorkload",
    "YSB_SCHEMA",
    "ClusterMonitoringWorkload",
    "CM_SCHEMA",
    "ReadOnlyWorkload",
    "RO_SCHEMA",
    "Nexmark7Workload",
    "Nexmark8Workload",
    "Nexmark11Workload",
    "BID_SCHEMA",
    "AUCTION_SCHEMA",
    "SELLER_SCHEMA",
]
