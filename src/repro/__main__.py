"""``python -m repro`` — entry point for the experiment CLI."""

from repro.harness.cli import main

if __name__ == "__main__":
    raise SystemExit(main())
