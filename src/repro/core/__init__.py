"""The Slash engine core (paper Secs. 4-5).

Public API tour:

* :mod:`repro.core.records` — schemas and numpy-backed record batches;
* :mod:`repro.core.windows` — tumbling / sliding / session event-time
  window assigners (buckets and slicing, Sec. 5.2);
* :mod:`repro.core.aggregations` — vectorised per-batch partial
  aggregation (the eager half of late merge);
* :mod:`repro.core.query` — the streaming query builder (filter, project,
  windowed aggregate, windowed join);
* :mod:`repro.core.pipeline` — operator fusion into pipelines with soft
  pipeline breakers (Fig. 2);
* :mod:`repro.core.scheduler` — the coroutine-based event-driven worker
  scheduler (Fig. 3);
* :mod:`repro.core.executor` / :mod:`repro.core.engine` — the distributed
  Slash stateful executor and the engine facade that deploys a query on a
  simulated cluster.
"""

from repro.core.records import Schema, RecordBatch
from repro.core.windows import (
    TumblingWindow,
    SlidingWindow,
    SessionWindows,
    WindowAssigner,
)
from repro.core.query import Query, StreamBuilder
from repro.core.engine import SlashEngine, RunResult

__all__ = [
    "Schema",
    "RecordBatch",
    "WindowAssigner",
    "TumblingWindow",
    "SlidingWindow",
    "SessionWindows",
    "Query",
    "StreamBuilder",
    "SlashEngine",
    "RunResult",
]
