"""The StreamSystem contract: capabilities and generic attach hooks.

Every engine under test (Slash, the UpPar/Flink baselines, LightSaber,
the sequential reference) advertises a set of *capability* flags and
accepts the same optional attachments — a sanitizer and a fault plan —
through the :class:`SystemHooks` mixin.  The runtime registry
(:mod:`repro.runtime`) gates scenarios on these flags so that asking an
engine for a feature it lacks fails fast with a
:class:`~repro.common.errors.CapabilityError` instead of crashing
mid-simulation.

This module lives in ``core`` (below ``baselines`` and ``runtime`` in
the import layering) so every engine can inherit from it without an
upward import.
"""

from __future__ import annotations

from typing import Optional

from repro.common.errors import CapabilityError

# Capability flags.  An engine's ``capabilities`` frozenset holds the
# subset it implements; the registry exposes them for sweep planning.
CAP_SCALE_OUT = "scale_out"  # >1 node topologies
CAP_JOINS = "joins"  # two-input (join) query plans
CAP_SESSION_WINDOWS = "session_windows"  # data-dependent window close
CAP_SANITIZE = "sanitize"  # runtime invariant checking hooks
CAP_FAULT_INJECTION = "fault_injectable"  # accepts a FaultPlan
CAP_CRASH_RECOVERY = "crash_recovery"  # checkpoints + leader promotion
CAP_TRANSFER_BENCH = "transfer_bench"  # has a raw-transfer micro-bench
CAP_ELASTIC = "elastic"  # live partition migration / node join-leave
CAP_OVERLOAD = "overload"  # admission control + SLO-aware load shedding

ALL_CAPABILITIES = frozenset(
    {
        CAP_SCALE_OUT,
        CAP_JOINS,
        CAP_SESSION_WINDOWS,
        CAP_SANITIZE,
        CAP_FAULT_INJECTION,
        CAP_CRASH_RECOVERY,
        CAP_TRANSFER_BENCH,
        CAP_ELASTIC,
        CAP_OVERLOAD,
    }
)

# Recovery strategies.  An engine with CAP_CRASH_RECOVERY names the
# subset it implements in ``supported_recovery_strategies``; the chaos
# harness and Scenario thread the chosen one into the fault injector.
STRATEGY_EPOCH_BUDDY = "epoch-buddy"  # synchronous per-cut checkpoint + buddy
STRATEGY_ASYNC_SNAPSHOT = "async-snapshot"  # Chandy-Lamport marker rounds

RECOVERY_STRATEGIES = (STRATEGY_EPOCH_BUDDY, STRATEGY_ASYNC_SNAPSHOT)

# Migration strategies.  An engine with CAP_ELASTIC names the subset it
# implements in ``supported_migration_strategies``; Scenario and the
# elastic harness thread the chosen one into the migration coordinator.
MIGRATION_STRATEGY_ALL_AT_ONCE = "all-at-once"  # pause + bulk transfer
MIGRATION_STRATEGY_FLUID = "fluid"  # Megaphone-style per-range sub-moves

MIGRATION_STRATEGIES = (MIGRATION_STRATEGY_ALL_AT_ONCE, MIGRATION_STRATEGY_FLUID)

# Load-shedding policies.  An engine with CAP_OVERLOAD names the subset
# it implements in ``supported_shed_policies``; Scenario and the
# overload harness thread the chosen one into the overload coordinator.
SHED_POLICY_DROP_OLDEST = "drop-oldest"  # shed the whole late batch
SHED_POLICY_PROBABILISTIC = "probabilistic"  # seeded per-record sampling
SHED_POLICY_FAIR = "fair"  # equal shed *fraction* per tenant

SHED_POLICIES = (
    SHED_POLICY_DROP_OLDEST,
    SHED_POLICY_PROBABILISTIC,
    SHED_POLICY_FAIR,
)


class SystemHooks:
    """Mixin giving an engine the generic StreamSystem attach points.

    Engines declare ``capabilities`` (and, when fault-injectable, the
    ``supported_fault_kinds`` — :class:`~repro.faults.plan.FaultKind`
    *values* as plain strings, so declaring support needs no import from
    the faults layer).  Callers use :meth:`attach_sanitizer` and
    :meth:`attach_faults` instead of engine-specific constructor wiring;
    both validate capabilities up front and return ``self`` so they
    chain.
    """

    #: Capability flags this engine implements.
    capabilities: frozenset = frozenset()
    #: FaultKind values (strings) the engine can absorb; only consulted
    #: when ``CAP_FAULT_INJECTION`` is present.
    supported_fault_kinds: frozenset = frozenset()
    #: Recovery strategies the engine can drive (RECOVERY_STRATEGIES
    #: values); empty means faults are data-plane only.
    supported_recovery_strategies: frozenset = frozenset()
    #: The strategy used when :meth:`attach_faults` gets none explicitly.
    default_recovery_strategy: Optional[str] = None
    #: Migration strategies the engine can execute (MIGRATION_STRATEGIES
    #: values); only consulted when ``CAP_ELASTIC`` is present.
    supported_migration_strategies: frozenset = frozenset()
    #: Shed policies the engine can execute (SHED_POLICIES values); only
    #: consulted when ``CAP_OVERLOAD`` is present.
    supported_shed_policies: frozenset = frozenset()

    # Attachment state consumed by each engine's run().  Class-level
    # defaults keep engines that never touch the hooks working unchanged.
    sanitize: bool = False
    fault_plan = None
    fault_overrides: dict = {}
    recovery_strategy: Optional[str] = None
    elastic_plan = None
    overload_config = None

    def attach_sanitizer(self):
        """Arm runtime invariant checking for the next run."""
        self._require(CAP_SANITIZE, "runtime sanitizer")
        self.sanitize = True
        return self

    def attach_faults(
        self,
        plan,
        overrides: Optional[dict] = None,
        strategy: Optional[str] = None,
    ):
        """Arm a chaos schedule (a FaultPlan) for the next run.

        ``strategy`` names the recovery strategy the run should use; it
        is validated against ``supported_recovery_strategies`` exactly
        like fault kinds against ``supported_fault_kinds``, so a plan
        naming a strategy the engine lacks fails fast instead of
        crashing mid-simulation.
        """
        self._require(CAP_FAULT_INJECTION, "fault injection")
        name = getattr(self, "name", type(self).__name__)
        asked = {str(event.kind.value) for event in plan}
        unsupported = asked - self.supported_fault_kinds
        if unsupported:
            raise CapabilityError(
                f"engine {name!r} cannot "
                f"absorb fault kind(s) {sorted(unsupported)}; supported: "
                f"{sorted(self.supported_fault_kinds)}"
            )
        if strategy is not None:
            if strategy not in RECOVERY_STRATEGIES:
                raise CapabilityError(
                    f"unknown recovery strategy {strategy!r}; known "
                    f"strategies: {sorted(RECOVERY_STRATEGIES)}"
                )
            if strategy not in self.supported_recovery_strategies:
                supported = (
                    sorted(self.supported_recovery_strategies)
                    if self.supported_recovery_strategies
                    else "none (data-plane faults only)"
                )
                raise CapabilityError(
                    f"engine {name!r} cannot recover via {strategy!r}; "
                    f"supported strategies: {supported}"
                )
        self.fault_plan = plan
        self.fault_overrides = dict(overrides or {})
        self.recovery_strategy = (
            strategy if strategy is not None else self.default_recovery_strategy
        )
        return self

    def attach_elastic(self, plan):
        """Arm a live-migration schedule (an ElasticPlan) for the next run.

        Mirrors :meth:`attach_faults`: the plan's migration strategy is
        validated against ``supported_migration_strategies`` (with a
        did-you-mean suggestion on typos), so a scenario naming a
        strategy the engine lacks fails fast instead of crashing
        mid-simulation.
        """
        self._require(CAP_ELASTIC, "elastic rescaling")
        name = getattr(self, "name", type(self).__name__)
        strategy = plan.strategy
        if strategy not in MIGRATION_STRATEGIES:
            from repro.common.suggest import did_you_mean

            message = f"unknown migration strategy {strategy!r}"
            close = did_you_mean(str(strategy), MIGRATION_STRATEGIES)
            if close:
                message += f" — did you mean {close!r}?"
            raise CapabilityError(
                message + f"; known strategies: {sorted(MIGRATION_STRATEGIES)}"
            )
        if strategy not in self.supported_migration_strategies:
            raise CapabilityError(
                f"engine {name!r} cannot migrate via {strategy!r}; "
                f"supported strategies: "
                f"{sorted(self.supported_migration_strategies)}"
            )
        plan.validate()
        self.elastic_plan = plan
        return self

    def attach_overload(self, config):
        """Arm admission control + load shedding (an OverloadConfig).

        Mirrors :meth:`attach_elastic`: the config's shed policy is
        validated against ``supported_shed_policies`` (with a
        did-you-mean suggestion on typos) and the config validates
        itself, so a scenario naming a policy the engine lacks fails
        fast instead of crashing mid-simulation.
        """
        self._require(CAP_OVERLOAD, "overload admission control")
        name = getattr(self, "name", type(self).__name__)
        policy = config.shed_policy
        if policy is not None:
            if policy not in SHED_POLICIES:
                from repro.common.suggest import did_you_mean

                message = f"unknown shed policy {policy!r}"
                close = did_you_mean(str(policy), SHED_POLICIES)
                if close:
                    message += f" — did you mean {close!r}?"
                raise CapabilityError(
                    message + f"; known policies: {sorted(SHED_POLICIES)}"
                )
            if policy not in self.supported_shed_policies:
                raise CapabilityError(
                    f"engine {name!r} cannot shed via {policy!r}; "
                    f"supported policies: "
                    f"{sorted(self.supported_shed_policies)}"
                )
        config.validate()
        self.overload_config = config
        return self

    def _require(self, capability: str, feature: str) -> None:
        if capability not in self.capabilities:
            name = getattr(self, "name", type(self).__name__)
            raise CapabilityError(
                f"engine {name!r} does not support {feature} "
                f"(missing capability {capability!r}; has: "
                f"{sorted(self.capabilities)})"
            )


def install_sanitizer(sim) -> None:
    """Attach the invariant sanitizer (plus a bounded tracer) to ``sim``.

    Shared by every engine's run() so sanitize runs use identical wiring
    regardless of the system under test.
    """
    from repro.sanitizer.invariants import Sanitizer
    from repro.simnet.trace import Tracer

    if sim.tracer is None:
        sim.tracer = Tracer(capacity=4096)
    sim.sanitize = Sanitizer(sim)
