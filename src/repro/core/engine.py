"""The Slash engine facade: deploy a query on a simulated cluster.

:class:`SlashEngine` is the library's top-level entry point for the
native-RDMA engine.  Given a query and a set of physical data flows
(one per worker thread per node, as produced by the workload generators
in :mod:`repro.workloads`), it builds the simulated rack, wires the
``n^2`` SSB channels, runs every executor to completion, and returns a
:class:`RunResult` carrying the query output, the simulated throughput,
and the full hardware-counter picture.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional, TYPE_CHECKING

from repro.common.config import (
    ClusterConfig,
    DEFAULT_BUFFER_BYTES,
    DEFAULT_CREDITS,
    paper_cluster,
)
from repro.common.errors import ConfigError, QueryError
from repro.core.costs import DEFAULT_SLASH_COSTS, SlashCosts
from repro.core.executor import Flow, SlashExecutor
from repro.core.pipeline import compile_query
from repro.core.query import Query
from repro.core.system import (
    ALL_CAPABILITIES,
    MIGRATION_STRATEGIES,
    SHED_POLICIES,
    STRATEGY_ASYNC_SNAPSHOT,
    STRATEGY_EPOCH_BUDDY,
    SystemHooks,
    install_sanitizer,
)
from repro.rdma.connection import ConnectionManager
from repro.simnet.cluster import Cluster
from repro.simnet.counters import HwCounters
from repro.simnet.kernel import Simulator
from repro.state.partition import PartitionDirectory

if TYPE_CHECKING:
    from repro.faults.plan import FaultPlan

# Library default epoch length for simulation-scale inputs.  The paper
# uses 64 MB per 1 GB/thread; we keep the same ~1/16-of-input proportion
# at the scaled-down volumes the harness generates.
SIM_EPOCH_BYTES = 1 * 1024 * 1024


@dataclass
class RunResult:
    """Everything a run produced: answers and performance observables."""

    system: str
    query_name: str
    nodes: int
    threads_per_node: int
    input_records: int
    sim_seconds: float
    aggregates: dict = field(default_factory=dict)
    join_pairs: list = field(default_factory=list)
    emitted: int = 0
    counters: HwCounters = field(default_factory=HwCounters)
    per_node_counters: list = field(default_factory=list)
    extra: dict = field(default_factory=dict)

    @property
    def throughput_records_per_s(self) -> float:
        """Source records processed per simulated second."""
        if self.sim_seconds <= 0:
            return 0.0
        return self.input_records / self.sim_seconds

    def sorted_join_pairs(self) -> list:
        """Join output in a canonical order for P2 comparisons."""
        return sorted(self.join_pairs)

    def counter_roles(self) -> dict[str, HwCounters]:
        """Hardware counters keyed by pipeline role.

        Split-pipeline engines (UpPar/Flink) report ``sender`` and
        ``receiver`` counters; single-pipeline engines report one
        ``whole`` entry.  Breakdown figures iterate this instead of
        branching per system.
        """
        extra = self.extra
        if "sender_counters" in extra and "receiver_counters" in extra:
            return {
                "sender": extra["sender_counters"],
                "receiver": extra["receiver_counters"],
            }
        return {"whole": self.counters}


class SlashEngine(SystemHooks):
    """The native RDMA-accelerated engine (the paper's Slash)."""

    name = "slash"
    capabilities = ALL_CAPABILITIES
    # Slash's channel, scheduler, and recovery layers absorb every
    # modelled fault kind (values of repro.faults.plan.FaultKind).
    supported_fault_kinds = frozenset(
        {
            "node-crash",
            "nic-flap",
            "drop-chunk",
            "duplicate-delta",
            "stall",
            "credit-starvation",
            "net-partition",
            "asym-partition",
            "slow-node",
            "jitter",
        }
    )
    # Epoch-buddy is the paper's native recovery path; the aligned
    # Chandy–Lamport coordinator (faults/snapshots.py) is opt-in.
    supported_recovery_strategies = frozenset(
        {STRATEGY_EPOCH_BUDDY, STRATEGY_ASYNC_SNAPSHOT}
    )
    default_recovery_strategy = STRATEGY_EPOCH_BUDDY
    # Both live-migration strategies: stop-the-world bulk transfer and
    # Megaphone-style fluid per-range sub-moves (repro.elastic).
    supported_migration_strategies = frozenset(MIGRATION_STRATEGIES)
    # Every shed policy of the overload plane (repro.overload).
    supported_shed_policies = frozenset(SHED_POLICIES)

    def __init__(
        self,
        cluster_config: Optional[ClusterConfig] = None,
        credits: int = DEFAULT_CREDITS,
        buffer_bytes: int = DEFAULT_BUFFER_BYTES,
        epoch_bytes: int = SIM_EPOCH_BYTES,
        costs: SlashCosts = DEFAULT_SLASH_COSTS,
        leaders: Optional[list[int]] = None,
        fault_plan: Optional["FaultPlan"] = None,
        fault_overrides: Optional[dict] = None,
        sanitize: bool = False,
    ):
        self.cluster_config = cluster_config or paper_cluster()
        self.credits = credits
        self.buffer_bytes = buffer_bytes
        self.epoch_bytes = epoch_bytes
        self.costs = costs
        # Optional non-identity partition leadership (see
        # PartitionDirectory): e.g. leaders=[0]*n turns node 0 into a
        # dedicated state node and every other node into pure compute —
        # the decoupled layout of the paper's challenge C1.
        self.leaders = leaders
        # Optional chaos schedule: when set, the run executes in fault
        # mode (checkpoints, watchdogs, reliable transfers) and the
        # injector applies the plan's events at exact simulated instants.
        self.fault_plan = fault_plan
        self.fault_overrides = dict(fault_overrides or {})
        # Runtime invariant checking (repro.sanitizer): attaches a
        # Sanitizer at sim.sanitize plus a bounded Tracer so violations
        # carry trace context.  Off by default — the hot loops then pay
        # one attribute test per hook site.
        self.sanitize = sanitize

    def run(self, query: Query, flows: dict[tuple[int, int], Flow]) -> RunResult:
        """Execute ``query`` over ``flows`` and return the results.

        ``flows`` maps ``(node, thread)`` to that worker's event-time-
        ordered list of ``(stream_name, batch)`` items.
        """
        query.validate()
        nodes = self._node_count(flows)
        if nodes > self.cluster_config.nodes:
            raise ConfigError(
                f"flows span {nodes} nodes but the cluster has "
                f"{self.cluster_config.nodes}"
            )
        # A join-rescale provisions spare executors up front: flow-less
        # nodes that start as pure helpers (leading nothing) until the
        # migration coordinator re-points partitions onto them.
        spares = self.elastic_plan.spare_nodes if self.elastic_plan else 0
        total = nodes + spares
        sim = Simulator()
        if self.sanitize:
            install_sanitizer(sim)
        cluster = Cluster(sim, self.cluster_config.with_nodes(total))
        cm = ConnectionManager(cluster)
        leaders = self.leaders
        if spares and leaders is None:
            # One partition per executor as usual, but the spares' own
            # partitions start out led by the original members.
            leaders = [p if p < nodes else p % nodes for p in range(total)]
        directory = PartitionDirectory(total, leaders=leaders)
        plan = compile_query(query)

        elastic = None
        if self.elastic_plan is not None:
            from repro.elastic.migration import SlashElasticCoordinator

            elastic = SlashElasticCoordinator(
                sim, cluster, directory, self.elastic_plan, self.buffer_bytes
            )
            # Attaching before executor construction arms the executors'
            # merge/trigger/finalize hook points.
            sim.elastic = elastic

        overload = None
        if self.overload_config is not None:
            from repro.overload.coordinator import OverloadCoordinator

            overload = OverloadCoordinator(sim, self.overload_config)
            # Attaching before executor construction arms the workers'
            # per-batch admission hook.
            sim.overload = overload

        injector = None
        if self.fault_plan is not None and len(self.fault_plan):
            from repro.faults.injector import FaultInjector

            kwargs = dict(self.fault_overrides)
            kwargs.setdefault(
                "strategy", self.recovery_strategy or STRATEGY_EPOCH_BUDDY
            )
            injector = FaultInjector(sim, self.fault_plan, **kwargs)
            # Attaching the injector before executor construction flips
            # every layer onto its fault-tolerant code path.
            sim.faults = injector

        executors = []
        for node_index in range(total):
            if node_index < nodes:
                node_flows = [
                    flows[(node_index, thread)]
                    for thread in range(self._threads_on(flows, node_index))
                ]
            else:
                node_flows = []  # spare: no input, helper-only until join
            executors.append(
                SlashExecutor(
                    cluster,
                    cm,
                    directory,
                    cluster.node(node_index),
                    executor_id=node_index,
                    plan=plan,
                    flows=node_flows,
                    costs=self.costs,
                    credits=self.credits,
                    buffer_bytes=self.buffer_bytes,
                    epoch_bytes=self.epoch_bytes,
                )
            )
        for executor in executors:
            executor.connect(executors)
        if injector is not None:
            injector.register(cluster, directory, executors)
        if elastic is not None:
            elastic.register(executors)
        if overload is not None:
            overload.register(executors)
        for executor in executors:
            executor.start()
        if injector is not None:
            injector.arm()
        if elastic is not None:
            elastic.arm()
        if overload is not None:
            overload.arm()
        sim.run()

        if elastic is not None:
            elastic.check_complete()
        if overload is not None:
            # Exact shed accounting: offered = admitted + shed per
            # source, and every admitted record reached the pipeline.
            overload.finalize(
                executors,
                frozenset(injector.crashed) if injector is not None
                else frozenset(),
            )

        crashed = injector.crashed if injector is not None else set()
        for executor in executors:
            if executor.executor_id in crashed:
                continue
            if not executor.finished.fired:
                raise QueryError(
                    f"executor {executor.executor_id} never finished "
                    "(simulation drained early — protocol deadlock?)"
                )

        result = RunResult(
            system=self.name,
            query_name=query.name,
            nodes=nodes,
            threads_per_node=max(
                self._threads_on(flows, n) for n in range(nodes)
            ),
            input_records=sum(e.records_processed for e in executors),
            sim_seconds=sim.now,
        )
        for executor in executors:
            if executor.executor_id in crashed:
                # A crashed executor's output is its last committed
                # checkpoint: post-checkpoint emissions were discarded and
                # re-fired (for its led partitions) by the promoted leader.
                checkpoint = injector.committed_results(executor.executor_id)
                result.aggregates.update(checkpoint.aggregates)
                result.join_pairs.extend(checkpoint.join_pairs)
                result.emitted += checkpoint.emitted
            else:
                result.aggregates.update(executor.results.aggregates)
                result.join_pairs.extend(executor.results.join_pairs)
                result.emitted += executor.results.emitted
            node_counters = executor.node.counters()
            result.per_node_counters.append(node_counters)
            result.counters.merge(node_counters)
        lags = [
            lag for e in executors for lag in e.results.trigger_lag_s
        ]
        result.extra["trigger_lag_mean_s"] = sum(lags) / len(lags) if lags else 0.0
        result.extra["trigger_lag_max_s"] = max(lags) if lags else 0.0
        # Timestamped fires, cluster-wide: the elastic harness slices
        # these into migration-window vs steady-state latency.
        result.extra["trigger_events"] = sorted(
            event for e in executors for event in e.results.trigger_events
        )
        result.extra["connections"] = cm.connection_count
        result.extra["state_bytes"] = sum(
            e.backend.total_state_bytes() for e in executors
        )
        if injector is not None:
            result.extra["faults"] = injector.report()
            # Kernel queue health under chaos: RTO/credit races must not
            # leave dead timers accumulating (FirstOf losers are cancelled
            # out of the calendar queue, not fired into no-ops).
            result.extra["kernel_queue"] = {
                "scheduled_events": sim.scheduled_events,
                "cancelled_events": sim.cancelled_events,
                "pending_timers_at_drain": sim.pending_timers,
            }
        if elastic is not None:
            result.extra["elastic"] = elastic.report()
        if overload is not None:
            result.extra["overload"] = overload.report()
            if self.overload_config.record_masks:
                # Per-batch keep masks for the harness's differential
                # oracle: rebuild the admitted-only flows and prove the
                # run lost nothing *besides* what it logged as shed.
                result.extra["overload_keep_masks"] = dict(overload.keep_masks)
        if sim.sanitize is not None:
            result.extra["sanitizer_checks"] = sim.sanitize.check_counts()
        return result

    @staticmethod
    def _node_count(flows: dict[tuple[int, int], Flow]) -> int:
        if not flows:
            raise ConfigError("no flows supplied")
        return max(node for node, _thread in flows) + 1

    @staticmethod
    def _threads_on(flows: dict[tuple[int, int], Flow], node: int) -> int:
        threads = [thread for n, thread in flows if n == node]
        if not threads:
            raise ConfigError(f"node {node} has no flows")
        if sorted(threads) != list(range(len(threads))):
            raise ConfigError(f"node {node} thread ids must be dense from 0")
        return len(threads)
