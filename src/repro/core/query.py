"""The streaming query builder — the library's main public API.

A query is a small DAG: one or two sources, each followed by a fused
chain of stateless operators (filter, project), terminating in exactly
one stateful sink — a windowed aggregation or a windowed join.  This
covers every workload of the paper's evaluation (YSB, CM, NB7, NB8,
NB11, RO) and is the fragment all four engines execute.

Example (the YSB query)::

    query = (
        Query("ysb")
        .stream("events", YSB_SCHEMA)
        .filter(lambda batch: batch.col("event_type") == 2)
        .project("ts", "key")
        .aggregate(TumblingWindow(600_000), agg="count")
    )

Stateless transforms take and return :class:`~repro.core.records.RecordBatch`
(filters return boolean masks), keeping user code vectorised.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Optional

import numpy as np

from repro.common.errors import QueryError
from repro.core.records import RecordBatch, Schema
from repro.core.windows import SessionWindows, WindowAssigner
from repro.state.crdt import Crdt, crdt_by_name

FilterFn = Callable[[RecordBatch], np.ndarray]

AGGREGATES = ("count", "sum", "min", "max", "avg")


@dataclass(frozen=True)
class FilterOp:
    """Keep only records where ``predicate(batch)`` is True."""

    predicate: FilterFn
    # Estimated selectivity, used only by cost-model pre-sizing.
    selectivity: float = 1.0


@dataclass(frozen=True)
class ProjectOp:
    """Narrow the batch to ``fields`` (must include ts and key)."""

    fields: tuple[str, ...]


@dataclass(frozen=True)
class MapValueOp:
    """Compute the aggregation value column from the batch."""

    fn: Callable[[RecordBatch], np.ndarray]
    name: str = "value"


@dataclass(frozen=True)
class AggregateSpec:
    """Terminal windowed aggregation."""

    window: WindowAssigner
    agg: str
    value_field: Optional[str]

    @property
    def crdt(self) -> Crdt:
        return crdt_by_name(self.agg)


@dataclass(frozen=True)
class JoinSpec:
    """Terminal windowed equi-join of the two streams on ``key``."""

    window: WindowAssigner

    @property
    def is_session(self) -> bool:
        return isinstance(self.window, SessionWindows)


class StreamBuilder:
    """A fluent chain of stateless operators on one source stream.

    ``disorder_ms`` declares the stream's bounded event-time disorder:
    a record may arrive at most that many milliseconds after a
    later-timestamped record of the same physical flow.  The paper's
    data model assumes strictly monotone timestamps (``disorder_ms=0``);
    engines subtract the bound from observed maxima when computing
    watermarks, which keeps properties P1/P2 intact for disorderly
    sources (a standard bounded-out-of-orderness watermark).
    """

    def __init__(self, query: "Query", name: str, schema: Schema, disorder_ms: int = 0):
        if disorder_ms < 0:
            raise QueryError(f"disorder_ms must be >= 0, got {disorder_ms}")
        self.query = query
        self.name = name
        self.schema = schema
        self.disorder_ms = disorder_ms
        self.ops: list[Any] = []
        self._terminated = False

    def filter(self, predicate: FilterFn, selectivity: float = 1.0) -> "StreamBuilder":
        """Append a vectorised filter (predicate returns a boolean mask)."""
        self._check_open()
        if not 0.0 < selectivity <= 1.0:
            raise QueryError(f"selectivity must be in (0, 1], got {selectivity}")
        self.ops.append(FilterOp(predicate, selectivity))
        return self

    def project(self, *fields: str) -> "StreamBuilder":
        """Append a projection to ``fields``."""
        self._check_open()
        for required in ("ts", "key"):
            if required not in fields:
                raise QueryError(f"projection must retain {required!r}")
        unknown = set(fields) - set(self.schema.field_names)
        if unknown:
            raise QueryError(f"projection of unknown fields {sorted(unknown)}")
        self.ops.append(ProjectOp(tuple(fields)))
        return self

    def map_value(self, fn: Callable[[RecordBatch], np.ndarray]) -> "StreamBuilder":
        """Define the value column later consumed by sum/min/max/avg."""
        self._check_open()
        self.ops.append(MapValueOp(fn))
        return self

    def aggregate(
        self,
        window: WindowAssigner,
        agg: str,
        value_field: Optional[str] = None,
    ) -> "Query":
        """Terminate with a per-key windowed aggregation."""
        self._check_open()
        if agg not in AGGREGATES:
            raise QueryError(f"unknown aggregate {agg!r}; choose from {AGGREGATES}")
        if agg != "count" and value_field is None and not self._has_map_value():
            raise QueryError(f"aggregate {agg!r} needs value_field or map_value")
        if isinstance(window, SessionWindows):
            raise QueryError("session windows are only supported for joins")
        self._terminated = True
        self.query._set_aggregate(self, AggregateSpec(window, agg, value_field))
        return self.query

    def join(self, other: "StreamBuilder", window: WindowAssigner) -> "Query":
        """Terminate with a windowed equi-join against ``other`` on key."""
        self._check_open()
        other._check_open()
        if other.query is not self.query:
            raise QueryError("joined streams must belong to the same query")
        if other is self:
            raise QueryError("cannot join a stream with itself")
        self._terminated = True
        other._terminated = True
        self.query._set_join(self, other, JoinSpec(window))
        return self.query

    def _has_map_value(self) -> bool:
        return any(isinstance(op, MapValueOp) for op in self.ops)

    def _check_open(self) -> None:
        if self._terminated:
            raise QueryError(f"stream {self.name!r} already terminated")


class Query:
    """A named streaming query: sources, fused chains, one stateful sink."""

    def __init__(self, name: str):
        self.name = name
        self.streams: list[StreamBuilder] = []
        self.aggregate_spec: Optional[AggregateSpec] = None
        self.agg_stream: Optional[StreamBuilder] = None
        self.join_spec: Optional[JoinSpec] = None
        self.join_left: Optional[StreamBuilder] = None
        self.join_right: Optional[StreamBuilder] = None

    def stream(self, name: str, schema: Schema, disorder_ms: int = 0) -> StreamBuilder:
        """Declare a source stream (see :class:`StreamBuilder` for
        ``disorder_ms``)."""
        if self._terminal is not None:
            raise QueryError(f"query {self.name!r} already has a stateful sink")
        if any(s.name == name for s in self.streams):
            raise QueryError(f"duplicate stream name {name!r}")
        if len(self.streams) >= 2:
            raise QueryError("at most two source streams are supported")
        builder = StreamBuilder(self, name, schema, disorder_ms=disorder_ms)
        self.streams.append(builder)
        return builder

    # -- internals used by StreamBuilder ----------------------------------
    def _set_aggregate(self, stream: StreamBuilder, spec: AggregateSpec) -> None:
        if self._terminal is not None:
            raise QueryError(f"query {self.name!r} already terminated")
        self.aggregate_spec = spec
        self.agg_stream = stream

    def _set_join(self, left: StreamBuilder, right: StreamBuilder, spec: JoinSpec) -> None:
        if self._terminal is not None:
            raise QueryError(f"query {self.name!r} already terminated")
        self.join_spec = spec
        self.join_left = left
        self.join_right = right

    # -- validation ----------------------------------------------------------
    @property
    def _terminal(self) -> Optional[object]:
        return self.aggregate_spec or self.join_spec

    @property
    def is_join(self) -> bool:
        return self.join_spec is not None

    def validate(self) -> None:
        """Check the query is well-formed; raises :class:`QueryError`."""
        if not self.streams:
            raise QueryError(f"query {self.name!r} has no source stream")
        if self._terminal is None:
            raise QueryError(f"query {self.name!r} has no stateful sink")
        if self.is_join and len(self.streams) != 2:
            raise QueryError("a join query needs exactly two streams")
        if not self.is_join and len(self.streams) != 1:
            raise QueryError("an aggregation query needs exactly one stream")

    def __repr__(self) -> str:
        kind = "join" if self.is_join else "aggregate" if self.aggregate_spec else "open"
        return f"Query({self.name!r}, {kind}, streams={[s.name for s in self.streams]})"
