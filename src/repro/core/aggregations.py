"""Vectorised per-batch partial aggregation — the eager half of late merge.

A Slash worker never updates global state one record at a time in Python;
it first reduces the batch to one partial payload per distinct
``(window_id, key)`` group using numpy segment operations, then absorbs
those partials into the SSB with the CRDT merge.  This mirrors how the
real engine's compiled pipelines fold a whole buffer before touching
shared cache lines — and it is also exactly the *late merge* shape: eager
local partials, lazy merging.

Cost accounting is unaffected: engines charge per-record costs from the
batch length, not from the number of Python-level operations.
"""

from __future__ import annotations

from typing import Any, Hashable

import numpy as np

from repro.common.errors import QueryError
from repro.state.crdt import Crdt

GroupPartials = dict[tuple[int, int], Any]


def _segments(window_ids: np.ndarray, keys: np.ndarray):
    """Sort by (window, key) and return segment boundaries.

    Returns ``(order, starts, group_windows, group_keys)`` where
    ``starts`` are the first sorted positions of each group.
    """
    order = np.lexsort((keys, window_ids))
    sorted_windows = window_ids[order]
    sorted_keys = keys[order]
    change = np.empty(len(order), dtype=bool)
    if len(order):
        change[0] = True
        change[1:] = (sorted_windows[1:] != sorted_windows[:-1]) | (
            sorted_keys[1:] != sorted_keys[:-1]
        )
    starts = np.flatnonzero(change)
    return order, starts, sorted_windows[starts], sorted_keys[starts]


def partial_aggregate(
    crdt: Crdt,
    window_ids: np.ndarray,
    keys: np.ndarray,
    values: np.ndarray | None,
) -> GroupPartials:
    """Reduce one batch to ``{(window_id, key): partial_payload}``.

    The partial payload is in the CRDT's own representation, ready to be
    ``absorb``-ed (merged) into a store.  ``values`` may be None for
    value-less aggregates (count).
    """
    if len(window_ids) != len(keys):
        raise QueryError("window_ids and keys must align")
    if len(window_ids) == 0:
        return {}
    order, starts, group_windows, group_keys = _segments(window_ids, keys)
    counts = np.diff(np.append(starts, len(order)))

    name = crdt.name
    if name == "count":
        partials = counts
    elif name in ("sum", "min", "max", "avg"):
        if values is None:
            raise QueryError(f"{name} aggregation needs a value column")
        sorted_values = np.asarray(values, dtype=np.float64)[order]
        if name == "sum":
            partials = np.add.reduceat(sorted_values, starts)
        elif name == "min":
            partials = np.minimum.reduceat(sorted_values, starts)
        elif name == "max":
            partials = np.maximum.reduceat(sorted_values, starts)
        else:  # avg: (sum, count) pairs
            sums = np.add.reduceat(sorted_values, starts)
            return {
                (int(w), int(k)): (float(s), int(c))
                for w, k, s, c in zip(group_windows, group_keys, sums, counts)
            }
    else:
        raise QueryError(f"no vectorised kernel for CRDT {name!r}")

    return {
        (int(w), int(k)): _scalar(partials[i])
        for i, (w, k) in enumerate(zip(group_windows, group_keys))
    }


def _scalar(value: Any) -> Any:
    """Convert a numpy scalar to a plain Python number."""
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    return value


def group_rows(
    window_ids: np.ndarray, keys: np.ndarray
) -> dict[tuple[int, int], np.ndarray]:
    """Group row indices by ``(window_id, key)`` (holistic operators).

    Used by the join build side: the payload appended to state is the
    list of rows of this batch that fall into each group.
    """
    if len(window_ids) == 0:
        return {}
    order, starts, group_windows, group_keys = _segments(window_ids, keys)
    ends = np.append(starts[1:], len(order))
    return {
        (int(w), int(k)): order[start:end]
        for w, k, start, end in zip(group_windows, group_keys, starts, ends)
    }


def sequential_aggregate(
    crdt: Crdt,
    window_ids: np.ndarray,
    keys: np.ndarray,
    values: np.ndarray | None,
) -> GroupPartials:
    """Scalar reference implementation of :func:`partial_aggregate`.

    Used by tests to validate the vectorised kernels and by the
    sequential reference executor.
    """
    partials: GroupPartials = {}
    for i in range(len(window_ids)):
        group = (int(window_ids[i]), int(keys[i]))
        value = 1 if values is None else _scalar(values[i])
        if group in partials:
            partials[group] = crdt.update(partials[group], value)
        else:
            partials[group] = crdt.update(crdt.zero(), value)
    return partials
