"""Vectorised per-batch partial aggregation — the eager half of late merge.

A Slash worker never updates global state one record at a time in Python;
it first reduces the batch to one partial payload per distinct
``(window_id, key)`` group using numpy segment operations, then absorbs
those partials into the SSB with the CRDT merge.  This mirrors how the
real engine's compiled pipelines fold a whole buffer before touching
shared cache lines — and it is also exactly the *late merge* shape: eager
local partials, lazy merging.

Cost accounting is unaffected: engines charge per-record costs from the
batch length, not from the number of Python-level operations.
"""

from __future__ import annotations

from typing import Any, Hashable

import numpy as np

from repro.common.errors import QueryError
from repro.state.crdt import Crdt

GroupPartials = dict[tuple[int, int], Any]


def _segments(window_ids: np.ndarray, keys: np.ndarray):
    """Sort by (window, key) and return segment boundaries.

    Returns ``(order, starts, group_windows, group_keys)`` where
    ``starts`` are the first sorted positions of each group.
    """
    single_window = len(window_ids) > 0 and (window_ids == window_ids[0]).all()
    if single_window:
        # One window in the batch (RO's whole-stream window, or a batch
        # that never straddles a boundary): the lexsort degenerates to a
        # stable single-key sort, which is measurably cheaper.
        order = np.argsort(keys, kind="stable")
    else:
        order = np.lexsort((keys, window_ids))
    sorted_windows = window_ids[order]
    sorted_keys = keys[order]
    change = np.empty(len(order), dtype=bool)
    if len(order):
        change[0] = True
        if single_window:
            change[1:] = sorted_keys[1:] != sorted_keys[:-1]
        else:
            change[1:] = (sorted_windows[1:] != sorted_windows[:-1]) | (
                sorted_keys[1:] != sorted_keys[:-1]
            )
    starts = np.flatnonzero(change)
    return order, starts, sorted_windows[starts], sorted_keys[starts]


def group_reduce(
    crdt: Crdt,
    window_ids: np.ndarray,
    keys: np.ndarray,
    values: np.ndarray | None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray] | None:
    """Array form of :func:`partial_aggregate` for scalar-payload CRDTs.

    Returns ``(group_windows, group_keys, partials)`` columns sorted by
    ``(window, key)``, or ``None`` when the CRDT's payload is not a plain
    scalar (avg's ``(sum, count)`` pairs, append logs) and the caller
    must take the dict path.  Keeping the columns as arrays lets hot
    consumers skip the per-group tuple/dict materialisation entirely.
    """
    if len(window_ids) != len(keys):
        raise QueryError("window_ids and keys must align")
    name = crdt.name
    if name not in ("count", "sum", "min", "max"):
        return None
    if len(window_ids) == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty, empty
    order, starts, group_windows, group_keys = _segments(window_ids, keys)
    if name == "count":
        partials = np.diff(np.append(starts, len(order)))
    else:
        if values is None:
            raise QueryError(f"{name} aggregation needs a value column")
        sorted_values = np.asarray(values, dtype=np.float64)[order]
        if name == "sum":
            partials = np.add.reduceat(sorted_values, starts)
        elif name == "min":
            partials = np.minimum.reduceat(sorted_values, starts)
        else:
            partials = np.maximum.reduceat(sorted_values, starts)
    return group_windows, group_keys, partials


def partial_aggregate(
    crdt: Crdt,
    window_ids: np.ndarray,
    keys: np.ndarray,
    values: np.ndarray | None,
) -> GroupPartials:
    """Reduce one batch to ``{(window_id, key): partial_payload}``.

    The partial payload is in the CRDT's own representation, ready to be
    ``absorb``-ed (merged) into a store.  ``values`` may be None for
    value-less aggregates (count).
    """
    if len(window_ids) == 0:
        if len(window_ids) != len(keys):
            raise QueryError("window_ids and keys must align")
        return {}
    reduced = group_reduce(crdt, window_ids, keys, values)
    if reduced is not None:
        group_windows, group_keys, partials = reduced
        # .tolist() converts whole columns to plain Python ints/floats in
        # C; building the group tuples and the result dict from those
        # lists is several times faster than a per-element int()/float()
        # comprehension.
        return dict(
            zip(
                zip(group_windows.tolist(), group_keys.tolist()),
                partials.tolist(),
            )
        )
    if crdt.name != "avg":
        raise QueryError(f"no vectorised kernel for CRDT {crdt.name!r}")
    if values is None:
        raise QueryError("avg aggregation needs a value column")
    order, starts, group_windows, group_keys = _segments(window_ids, keys)
    counts = np.diff(np.append(starts, len(order)))
    sorted_values = np.asarray(values, dtype=np.float64)[order]
    sums = np.add.reduceat(sorted_values, starts)
    groups = zip(group_windows.tolist(), group_keys.tolist())
    return dict(zip(groups, zip(sums.tolist(), counts.tolist())))


def _scalar(value: Any) -> Any:
    """Convert a numpy scalar to a plain Python number."""
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    return value


def group_rows(
    window_ids: np.ndarray, keys: np.ndarray
) -> dict[tuple[int, int], np.ndarray]:
    """Group row indices by ``(window_id, key)`` (holistic operators).

    Used by the join build side: the payload appended to state is the
    list of rows of this batch that fall into each group.
    """
    if len(window_ids) == 0:
        return {}
    order, starts, group_windows, group_keys = _segments(window_ids, keys)
    ends = np.append(starts[1:], len(order))
    groups = zip(group_windows.tolist(), group_keys.tolist())
    return {
        group: order[start:end]
        for group, start, end in zip(groups, starts.tolist(), ends.tolist())
    }


def sequential_aggregate(
    crdt: Crdt,
    window_ids: np.ndarray,
    keys: np.ndarray,
    values: np.ndarray | None,
) -> GroupPartials:
    """Scalar reference implementation of :func:`partial_aggregate`.

    Used by tests to validate the vectorised kernels and by the
    sequential reference executor.
    """
    partials: GroupPartials = {}
    for i in range(len(window_ids)):
        group = (int(window_ids[i]), int(keys[i]))
        value = 1 if values is None else _scalar(values[i])
        if group in partials:
            partials[group] = crdt.update(partials[group], value)
        else:
            partials[group] = crdt.update(crdt.zero(), value)
    return partials
