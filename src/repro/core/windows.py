"""Event-time window assigners (paper Sec. 5.2).

Slash executes windowed operators as a *window assigner* (which maps each
record to a bucket or slice and updates it) followed by a *window
trigger* (which fires on event time once the vector clock permits).

* :class:`TumblingWindow` — fixed-size, non-overlapping buckets; the
  window id of a record is ``floor(ts / size)``.
* :class:`SlidingWindow` — overlapping windows realised through **general
  stream slicing** (Traub et al., EDBT'19, cited by the paper): records
  update non-overlapping *slices* of width ``slide``; a window's result
  is the merge of ``size / slide`` consecutive slices, so per-record work
  stays O(1).
* :class:`SessionWindows` — gap-based sessions; these have no static ids,
  so the assigner marks records for per-key session state and the split
  into sessions happens at trigger time on merged state.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Sequence

import numpy as np

from repro.common.errors import QueryError


class WindowAssigner:
    """Base class: maps record timestamps to window/slice ids."""

    #: Whether window extents are statically derivable from ids.
    static_ids = True

    def assign(self, timestamps: np.ndarray) -> np.ndarray:
        """Vectorised: the slice/bucket id of each record."""
        raise NotImplementedError

    def window_end(self, window_id: int) -> float:
        """The exclusive event-time end of ``window_id``."""
        raise NotImplementedError

    def windows_of_slice(self, slice_id: int) -> Sequence[int]:
        """Window ids whose result includes ``slice_id`` (identity for
        bucket-based assigners)."""
        return (slice_id,)

    def slices_of_window(self, window_id: int) -> Sequence[int]:
        """Slice ids whose merge produces ``window_id``'s result."""
        return (window_id,)


@dataclass(frozen=True)
class TumblingWindow(WindowAssigner):
    """Non-overlapping buckets of ``size_ms`` milliseconds of event time."""

    size_ms: int

    def __post_init__(self) -> None:
        if self.size_ms <= 0:
            raise QueryError(f"tumbling window size must be positive: {self.size_ms}")

    def assign(self, timestamps: np.ndarray) -> np.ndarray:
        return timestamps // self.size_ms

    def window_end(self, window_id: int) -> float:
        return float((window_id + 1) * self.size_ms)


@dataclass(frozen=True)
class SlidingWindow(WindowAssigner):
    """Overlapping windows of ``size_ms`` advancing every ``slide_ms``.

    ``size_ms`` must be a multiple of ``slide_ms`` (the slicing
    granularity).  Window ``w`` covers slices ``[w, w + size/slide)`` and
    ends at ``(w + size/slide) * slide``.
    """

    size_ms: int
    slide_ms: int

    def __post_init__(self) -> None:
        if self.slide_ms <= 0 or self.size_ms <= 0:
            raise QueryError("sliding window size and slide must be positive")
        if self.size_ms % self.slide_ms != 0:
            raise QueryError(
                f"window size {self.size_ms} not a multiple of slide {self.slide_ms}"
            )

    @property
    def slices_per_window(self) -> int:
        return self.size_ms // self.slide_ms

    def assign(self, timestamps: np.ndarray) -> np.ndarray:
        # Records update slices; windows merge slices at trigger time.
        return timestamps // self.slide_ms

    def window_end(self, window_id: int) -> float:
        return float((window_id + self.slices_per_window) * self.slide_ms)

    def windows_of_slice(self, slice_id: int) -> Sequence[int]:
        k = self.slices_per_window
        return tuple(range(slice_id - k + 1, slice_id + 1))

    def slices_of_window(self, window_id: int) -> Sequence[int]:
        return tuple(range(window_id, window_id + self.slices_per_window))


@dataclass(frozen=True)
class SessionWindows(WindowAssigner):
    """Per-key sessions separated by gaps of at least ``gap_ms``."""

    gap_ms: int
    static_ids = False

    def __post_init__(self) -> None:
        if self.gap_ms <= 0:
            raise QueryError(f"session gap must be positive: {self.gap_ms}")

    def assign(self, timestamps: np.ndarray) -> np.ndarray:
        # Sessions cannot be assigned statically; state is keyed by the
        # record key alone and split into sessions at trigger time.
        return np.zeros(len(timestamps), dtype=np.int64)

    def window_end(self, window_id: int) -> float:
        raise QueryError("session windows have no static window end")

    def split_sessions(
        self, timestamps: Sequence[float]
    ) -> list[tuple[float, float, list[int]]]:
        """Group sorted-or-not timestamps into sessions.

        Returns ``(start, end, member_indices)`` triples where ``end`` is
        ``last_ts + gap`` (the time after which the session is closed) and
        ``member_indices`` index into the *input* sequence.
        """
        order = sorted(range(len(timestamps)), key=lambda i: timestamps[i])
        sessions: list[tuple[float, float, list[int]]] = []
        current: list[int] = []
        start = last = None
        for i in order:
            ts = timestamps[i]
            if last is not None and ts - last > self.gap_ms:
                sessions.append((start, last + self.gap_ms, current))
                current = []
                start = None
            if start is None:
                start = ts
            current.append(i)
            last = ts
        if current:
            sessions.append((start, last + self.gap_ms, current))
        return sessions
