"""Windowed hash-join probe logic (paper Sec. 5.2, 'Windowed Join').

Slash eagerly *builds* per-window hash state (the append partials of
:class:`~repro.core.pipeline.JoinBuildPipeline`) and *probes* lazily when
a window terminates: for every key, it outputs the per-key pairwise
combinations of the stored left and right records.  Because the state
backend concatenates all partial values with the same key before the
trigger fires, the probe sees exactly the records a sequential execution
would have collected (P2).

Session joins (NB11) additionally split a key's merged timeline into
gap-separated sessions at trigger time and only emit the sessions that
are *closed* — those whose last record is more than one gap below the
vector-clock frontier.
"""

from __future__ import annotations

from typing import Any, Sequence

from repro.core.pipeline import LEFT, RIGHT
from repro.core.windows import SessionWindows

JoinedPair = tuple[tuple, tuple]


def probe_window(payload: Sequence[tuple[int, tuple]]) -> list[JoinedPair]:
    """Emit all left x right combinations of one (window, key) payload.

    ``payload`` entries are ``(side, row_tuple)``.  Output order is
    normalised (sorted) so distributed and sequential runs compare equal.
    """
    lefts = [row for side, row in payload if side == LEFT]
    rights = [row for side, row in payload if side == RIGHT]
    return sorted((l, r) for l in lefts for r in rights)


def probe_sessions(
    window: SessionWindows,
    payload: Sequence[tuple[float, int, tuple]],
    frontier: float,
) -> tuple[list[JoinedPair], list[tuple[float, int, tuple]]]:
    """Split a key's merged timeline into sessions and emit closed ones.

    ``payload`` entries are ``(ts, side, row_tuple)``.  Returns
    ``(emitted_pairs, remaining_payload)``: sessions whose end (last ts +
    gap) is ``<= frontier`` are probed and dropped, the rest are kept for
    future records.
    """
    if not payload:
        return [], []
    timestamps = [entry[0] for entry in payload]
    emitted: list[JoinedPair] = []
    remaining: list[tuple[float, int, tuple]] = []
    for _start, end, member_indices in window.split_sessions(timestamps):
        members = [payload[i] for i in member_indices]
        if end <= frontier:
            emitted.extend(
                probe_window([(side, row) for _ts, side, row in members])
            )
        else:
            remaining.extend(members)
    return sorted(emitted), remaining
