"""Window trigger bookkeeping driven by the vector clock (paper Sec. 5.1).

The executor notes every window (or slice) id that state updates touch —
both its own updates and the pairs arriving in epoch deltas.  After each
synchronisation it asks :class:`WindowTriggerState` which windows are
*due*: their event-time end lies at or below the vector clock's frontier,
so property P1 guarantees no further contribution can arrive.

Joins on session windows have no static ids; their trigger logic lives
with the join probe (:mod:`repro.core.join`) and only uses the frontier.
"""

from __future__ import annotations

from typing import Iterable

from repro.core.windows import SlidingWindow, WindowAssigner


class WindowTriggerState:
    """Tracks pending window ids and decides what is due."""

    def __init__(self, assigner: WindowAssigner):
        self.assigner = assigner
        self._pending: set[int] = set()
        self._fired: set[int] = set()

    @property
    def pending(self) -> set[int]:
        """Window ids awaiting their trigger, as a copy-safe view."""
        return set(self._pending)

    def note_slices(self, slice_ids: Iterable[int]) -> None:
        """Register the slice/bucket ids a state update touched."""
        assigner = self.assigner
        if isinstance(assigner, SlidingWindow):
            for slice_id in slice_ids:
                for window_id in assigner.windows_of_slice(int(slice_id)):
                    if window_id not in self._fired:
                        self._pending.add(window_id)
        else:
            for slice_id in slice_ids:
                window_id = int(slice_id)
                if window_id not in self._fired:
                    self._pending.add(window_id)

    def restore_pending(self, window_ids: Iterable[int]) -> None:
        """Force windows back to pending, even if already fired here.

        Crash recovery re-installs state for windows a promoted leader may
        have fired for its own partitions; those must trigger again so the
        adopted keys' results are emitted.  A re-fire only extracts the
        re-installed keys (a previous fire removed everything else), so
        earlier emissions are never recomputed.
        """
        for window_id in window_ids:
            window_id = int(window_id)
            self._fired.discard(window_id)
            self._pending.add(window_id)

    def due_windows(self, frontier: float) -> list[int]:
        """Pop and return (ascending) every pending window that may fire.

        A window is due when its end timestamp is ``<= frontier`` — the
        vector clock's minimum watermark at the caller.
        """
        due = sorted(
            window_id
            for window_id in self._pending
            if self.assigner.window_end(window_id) <= frontier
        )
        for window_id in due:
            self._pending.discard(window_id)
            self._fired.add(window_id)
        return due

    def fired_count(self) -> int:
        """How many windows have triggered so far."""
        return len(self._fired)
