"""Record schemas and numpy-backed record batches.

The data model follows the paper (Sec. 2.2): a stream is an unbounded
sequence of records, each carrying an event-time timestamp ``ts``, a
primary key ``key``, and further attributes.  Records move through the
engines in **batches** (one batch fills one RDMA channel buffer), stored
as numpy structured arrays so per-batch operator work is vectorised.

A schema carries ``record_bytes`` — the *wire* size of one record as the
paper's benchmarks define it (YSB 78 B, CM 64 B, NexMark bid 32 B, ...).
This logical size drives all bandwidth/memory accounting and is
independent of the numpy in-memory itemsize.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

import numpy as np

from repro.common.errors import QueryError

TIMESTAMP_FIELD = "ts"
KEY_FIELD = "key"


@dataclass(frozen=True)
class Schema:
    """A stream's field layout and wire size."""

    name: str
    fields: tuple[tuple[str, str], ...]
    record_bytes: int

    def __post_init__(self) -> None:
        names = [f for f, _dtype in self.fields]
        if TIMESTAMP_FIELD not in names:
            raise QueryError(f"schema {self.name!r} lacks the {TIMESTAMP_FIELD!r} field")
        if KEY_FIELD not in names:
            raise QueryError(f"schema {self.name!r} lacks the {KEY_FIELD!r} field")
        if len(set(names)) != len(names):
            raise QueryError(f"schema {self.name!r} has duplicate fields: {names}")
        if self.record_bytes <= 0:
            raise QueryError(f"schema {self.name!r}: record_bytes must be positive")

    @property
    def field_names(self) -> tuple[str, ...]:
        return tuple(name for name, _dtype in self.fields)

    @property
    def dtype(self) -> np.dtype:
        """The numpy structured dtype for batches of this schema."""
        return np.dtype(list(self.fields))

    def empty_batch(self) -> "RecordBatch":
        """A zero-length batch of this schema."""
        return RecordBatch(self, np.empty(0, dtype=self.dtype))

    def batch_from_columns(self, **columns: np.ndarray) -> "RecordBatch":
        """Build a batch from per-field arrays (all the same length)."""
        missing = set(self.field_names) - set(columns)
        if missing:
            raise QueryError(f"schema {self.name!r}: missing columns {sorted(missing)}")
        lengths = {len(col) for col in columns.values()}
        if len(lengths) > 1:
            raise QueryError(f"schema {self.name!r}: ragged columns {lengths}")
        n = lengths.pop() if lengths else 0
        data = np.empty(n, dtype=self.dtype)
        for name in self.field_names:
            data[name] = columns[name]
        return RecordBatch(self, data)


class RecordBatch:
    """An immutable-by-convention batch of records of one schema."""

    __slots__ = ("schema", "data")

    def __init__(self, schema: Schema, data: np.ndarray):
        if data.dtype != schema.dtype:
            raise QueryError(
                f"batch dtype {data.dtype} does not match schema {schema.name!r}"
            )
        self.schema = schema
        self.data = data

    def __len__(self) -> int:
        return len(self.data)

    def col(self, name: str) -> np.ndarray:
        """A column by field name."""
        if name not in self.schema.field_names:
            raise QueryError(f"no field {name!r} in schema {self.schema.name!r}")
        return self.data[name]

    @property
    def timestamps(self) -> np.ndarray:
        return self.data[TIMESTAMP_FIELD]

    @property
    def keys(self) -> np.ndarray:
        return self.data[KEY_FIELD]

    @property
    def wire_bytes(self) -> int:
        """Serialized size of this batch on the wire / in state buffers."""
        return len(self.data) * self.schema.record_bytes

    @property
    def max_timestamp(self) -> float:
        """Greatest event time in the batch (-inf for an empty batch)."""
        if len(self.data) == 0:
            return float("-inf")
        return float(self.data[TIMESTAMP_FIELD].max())

    def select(self, mask: np.ndarray) -> "RecordBatch":
        """A new batch with only the rows where ``mask`` is True."""
        return RecordBatch(self.schema, self.data[mask])

    def take(self, indices: np.ndarray) -> "RecordBatch":
        """A new batch with the rows at ``indices``, in that order."""
        return RecordBatch(self.schema, self.data[indices])

    def rows(self) -> Iterable[tuple]:
        """Iterate rows as plain tuples (reference/baseline paths only)."""
        return (tuple(row) for row in self.data)

    def __repr__(self) -> str:
        return f"RecordBatch({self.schema.name!r}, n={len(self.data)})"


def concat_batches(schema: Schema, batches: Sequence[RecordBatch]) -> RecordBatch:
    """Concatenate batches of one schema into a single batch."""
    arrays = [batch.data for batch in batches if len(batch)]
    if not arrays:
        return schema.empty_batch()
    return RecordBatch(schema, np.concatenate(arrays))
