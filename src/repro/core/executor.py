"""The distributed Slash stateful executor (paper Secs. 4-5, 7).

One :class:`SlashExecutor` runs per node.  Its moving parts:

* **worker threads** (one per pinned core) that consume their node-local
  physical data flows, run the fused pipeline over each batch, and absorb
  the resulting per-group partials into the Slash State Backend — the
  *eager* half of late merge.  No re-partitioning happens anywhere;
* a **shipper coroutine** on thread 0 that, at every epoch boundary,
  sends the fragments' deltas to their leader executors over dedicated
  RDMA channels (chunked to the channel buffer size, watermark
  piggybacked) — the *lazy* half;
* one **merge coroutine** per remote executor, also on thread 0's
  coroutine scheduler, that receives delta chunks, folds them into the
  primary partitions, advances the vector clock, and fires due windows.

Workers, shipper, and mergers all run on the same simulated cores, so
epoch synchronisation genuinely competes with (and hides behind) query
processing, as in the paper.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Any, Generator, Iterable, Optional

from repro.channel.channel import CHANNEL_EOS, RdmaChannel
from repro.channel.chunk_pool import ChunkBufferPool
from repro.common.config import (
    DEFAULT_BUFFER_BYTES,
    DEFAULT_CREDITS,
    DEFAULT_EPOCH_BYTES,
)
from repro.common.errors import ChannelResetError, QueryError, SimulationError
from repro.core.costs import DEFAULT_SLASH_COSTS, SlashCosts, quantize_working_set
from repro.core.join import probe_sessions, probe_window
from repro.core.pipeline import PhysicalPlan
from repro.core.progress import WindowTriggerState
from repro.core.records import RecordBatch
from repro.core.scheduler import SCHED_YIELD, CoroScheduler
from repro.core.windows import SessionWindows, SlidingWindow
from repro.rdma.connection import ConnectionManager
from repro.simnet.cluster import Cluster, Core, Node
from repro.simnet.kernel import Signal, Timeout
from repro.simnet.trace import trace
from repro.state.epoch import EpochDelta, EpochManager
from repro.state.partition import PartitionDirectory
from repro.state.ssb import SlashStateBackend

#: A physical data flow: (stream_name, batch) items in event-time order.
Flow = list[tuple[str, RecordBatch]]

# Serialized overhead per delta chunk message.
CHUNK_HEADER_BYTES = 48


@dataclass(frozen=True)
class DeltaChunk:
    """One channel message carrying (part of) an epoch delta.

    ``ingest_times`` piggybacks, per window id in this delta, the
    simulated time the helper last ingested a record contributing to it
    — the reference point for the trigger-lag metric.
    """

    operator_id: str
    partition: int
    from_executor: int
    epoch: int
    pairs: tuple
    nbytes: int
    watermark: float
    last: bool
    ingest_times: tuple = ()


@dataclass(frozen=True)
class DoneToken:
    """Final control message: the sender has finished all processing."""

    from_executor: int


@dataclass(frozen=True)
class SnapshotMarker:
    """In-band Chandy-Lamport barrier (the async-snapshot strategy).

    Travels through a channel like data, immediately after every delta
    of the sender's capture boundary: the receiver treats deltas before
    it as part of the consistent cut (in-flight channel state) and
    deltas after it as post-snapshot, to be aligned/spilled if the
    receiver has not captured yet.  ``boundary`` is the sender's capture
    boundary (``epochs_shipped - 1`` at its capture instant).
    """

    round_id: int
    from_executor: int
    boundary: int


class FlowWatermarks:
    """Low-watermark over a worker's flows and input streams.

    Timestamps are monotone *per stream within a flow* up to each
    stream's declared bounded disorder.  The safe low watermark is the
    minimum, over all unfinished flows and over every stream of the
    query, of that stream's maximum observed timestamp minus its
    disorder bound (a bounded-out-of-orderness watermark; the paper's
    strictly-monotone data model is the ``disorder = 0`` special case).
    A join flow interleaves two streams whose batches overlap in event
    time, which is the other reason for the per-stream minimum.
    Finished flows drop out of the minimum (their contribution becomes
    +inf).
    """

    def __init__(
        self,
        flow_count: int,
        stream_names: Iterable[str],
        disorder_ms: Optional[dict[str, int]] = None,
    ):
        names = tuple(stream_names)
        self._disorder = {name: 0 for name in names}
        if disorder_ms:
            self._disorder.update(disorder_ms)
        self._maxes = [{name: float("-inf") for name in names} for _ in range(flow_count)]
        self._finished = [False] * flow_count

    def observe(self, flow_index: int, stream: str, max_timestamp: float) -> None:
        maxes = self._maxes[flow_index]
        if max_timestamp > maxes[stream]:
            maxes[stream] = max_timestamp

    def finish(self, flow_index: int) -> None:
        self._finished[flow_index] = True

    @property
    def watermark(self) -> float:
        live = [
            min(
                maxes[name] - self._disorder[name] if maxes[name] != float("-inf")
                else float("-inf")
                for name in maxes
            )
            for maxes, done in zip(self._maxes, self._finished)
            if not done
        ]
        return min(live) if live else float("inf")


@dataclass
class ExecutorResults:
    """What one executor emitted (its led partitions' share of the output)."""

    aggregates: dict = field(default_factory=dict)
    join_pairs: list = field(default_factory=list)
    emitted: int = 0
    # Per fired window: simulated seconds between the last locally-ingested
    # contribution to that window (cluster-wide max) and the trigger.
    trigger_lag_s: list = field(default_factory=list)
    # (fire time, lag) per fired window — the elastic harness slices
    # these into migration-window vs steady-state latency.
    trigger_events: list = field(default_factory=list)


class SlashExecutor:
    """One Slash process: workers + shipper + mergers on one node."""

    def __init__(
        self,
        cluster: Cluster,
        cm: ConnectionManager,
        directory: PartitionDirectory,
        node: Node,
        executor_id: int,
        plan: PhysicalPlan,
        flows: list[Flow],
        costs: SlashCosts = DEFAULT_SLASH_COSTS,
        credits: int = DEFAULT_CREDITS,
        buffer_bytes: int = DEFAULT_BUFFER_BYTES,
        epoch_bytes: int = DEFAULT_EPOCH_BYTES,
    ):
        if len(flows) > len(node.cores):
            raise QueryError(
                f"{len(flows)} flows exceed the {len(node.cores)} cores of node "
                f"{node.index}"
            )
        self.cluster = cluster
        self.cm = cm
        self.directory = directory
        self.node = node
        self.executor_id = executor_id
        self.plan = plan
        self.flows = flows
        self.costs = costs
        self.credits = credits
        self.buffer_bytes = buffer_bytes
        self.sim = cluster.sim

        self.backend = SlashStateBackend(
            executor_id, directory, sanitizer=self.sim.sanitize
        )
        self.handle = self.backend.handle(plan.operator_id, plan.crdt)
        self.epoch = EpochManager(epoch_bytes)
        self.trigger = (
            None
            if isinstance(plan.window, SessionWindows)
            else WindowTriggerState(plan.window)
        )
        self.watermarks = FlowWatermarks(
            len(flows),
            (stream.name for stream in plan.query.streams),
            disorder_ms={s.name: s.disorder_ms for s in plan.query.streams},
        )
        self.results = ExecutorResults()
        self.records_processed = 0
        # Batches fully absorbed per flow; snapshotted at every epoch
        # boundary (fault mode), which is what lets recovery replay a
        # crashed executor's input from its last checkpointed cut.
        self._flow_pos = [0] * len(flows)
        self._last_contribution: dict = {}
        self._ws_bytes = 0.0  # running working-set estimate for the cache model
        self._out_channels: dict[int, Any] = {}
        self._in_channels: dict[int, Any] = {}
        # Pair-buffer pool shared by the chunking (shipper) and reassembly
        # (merger) sides: staging lists are acquired/released instead of
        # constructed per chunk and left to the GC.
        self._chunk_pool = ChunkBufferPool(name=f"exec{executor_id}.chunk-pool")
        self._pending_parts: dict[tuple, list] = {}
        self._done_peers: set[int] = set()
        self._workers_remaining = len(flows)
        self._mergers_remaining = 0
        self._finalized = False
        self.finished = Signal(name=f"exec{executor_id}.finished")
        # One coroutine scheduler per worker thread; RDMA channels are
        # assigned to worker threads round-robin (paper Sec. 5.3), so
        # delta reception/merging is interleaved with processing on
        # every core, not funnelled through one.
        thread_count = max(1, len(flows))
        self.schedulers = [
            CoroScheduler(node.core(t), name=f"exec{executor_id}.sched{t}")
            for t in range(thread_count)
        ]
        # Each worker thread ships the deltas of the out-channels it owns.
        self._ship_inboxes = [
            self.sim.store(name=f"exec{executor_id}.ship{t}")
            for t in range(thread_count)
        ]
        self._shippers_remaining = thread_count

    # -- wiring ----------------------------------------------------------
    def connect(self, executors: list["SlashExecutor"]) -> None:
        """Create the state-synchronisation channels to every peer.

        The paper's setup phase creates ``n^2`` RDMA channels overall
        (Sec. 7.2.2); here each ordered pair gets one.
        """
        for peer in executors:
            if peer.executor_id == self.executor_id:
                continue
            channel = RdmaChannel.create(
                self.cm,
                self.node.index,
                peer.node.index,
                credits=self.credits,
                buffer_bytes=self.buffer_bytes,
                name=f"ssb:{self.executor_id}->{peer.executor_id}",
            )
            self._out_channels[peer.executor_id] = channel.producer
            peer._in_channels[self.executor_id] = channel.consumer

    def start(self) -> None:
        """Launch all simulation processes of this executor."""
        self._mergers_remaining = len(self._in_channels)
        thread_count = len(self.schedulers)
        for slot, (peer_id, consumer) in enumerate(sorted(self._in_channels.items())):
            scheduler = self.schedulers[slot % thread_count]
            scheduler.add(
                self._merge_task(scheduler.core, consumer, peer_id),
                name=f"merge<-{peer_id}",
            )
        if self.sim.faults is not None:
            self.schedulers[0].add(
                self._watchdog_body(self.schedulers[0].core), name="watchdog"
            )
        for thread, scheduler in enumerate(self.schedulers):
            scheduler.add(self._ship_task(thread, scheduler.core), name=f"shipper{thread}")
        for thread in range(len(self.flows)):
            core = self.node.core(thread)
            self.schedulers[thread].add(
                self._worker_body(thread, core), name=f"worker{thread}"
            )
        for thread, scheduler in enumerate(self.schedulers):
            self.sim.process(
                scheduler.run(), name=f"exec{self.executor_id}.sched{thread}"
            )
        if not self.flows:
            self._workers_remaining = 0
            # A flow-less executor (an elastic spare, or a pure state
            # node) will never contribute a record: its own watermark is
            # +inf immediately, so partitions migrated onto it can still
            # reach the trigger frontier.
            self.backend.observe_watermark(float("inf"))
            self.epoch.force()
            self._enqueue_epoch_ship(final=True)

    # -- the worker hot loop ------------------------------------------------
    def _worker_body(self, thread: int, core: Core) -> Generator[Any, Any, None]:
        plan = self.plan
        is_join = plan.is_join
        update_profile = self.costs.append if is_join else self.costs.update
        update_lines = self.costs.append_lines if is_join else self.costs.update_lines
        cost_model = self.node.cost_model
        overload = self.sim.overload

        for stream_name, batch in self.flows[thread]:
            event_cover = float("-inf")
            if overload is not None:
                # Admission control: pace against the offered-load
                # schedule and possibly shed records before they cost a
                # cycle.  Shed records still advance the flow watermark
                # via the returned event-time cover.
                batch, event_cover = yield from overload.admit(
                    self, thread, stream_name, batch
                )
            pipeline = plan.pipeline_for(stream_name)
            # Ingest: stream the raw batch from memory through the caches,
            # then run the fused filter/project over every record.
            read_cost = cost_model.cache.streaming_cost(batch.wire_bytes)
            yield from core.execute(read_cost, 1.0)
            if pipeline.chain.op_count:
                yield from core.execute(
                    cost_model.compute_cost(self.costs.pipeline), float(len(batch))
                )

            result = pipeline.process_batch(batch)
            self.records_processed += len(batch)
            if result.survivors:
                working_set = quantize_working_set(self._ws_bytes + 4096)
                update_cost = cost_model.op(
                    update_profile, working_set, update_lines
                )
                yield from core.execute(update_cost, float(result.survivors))
                core.counters.count_records(result.survivors)
                now = self.sim.now
                self.handle.absorb_batch(result.partials)
                for state_key in result.partials:
                    if isinstance(state_key, tuple):
                        self._last_contribution[state_key[0]] = now
                self._ws_bytes += result.state_bytes
                if self.trigger is not None:
                    self.trigger.note_slices(
                        key[0] for key in result.partials
                    )
            self._flow_pos[thread] += 1
            watermark_ts = result.max_timestamp
            if overload is not None and event_cover > watermark_ts:
                watermark_ts = event_cover
            self.watermarks.observe(thread, stream_name, watermark_ts)
            self.backend.observe_watermark(self.watermarks.watermark)

            if self.epoch.offer(batch.wire_bytes):
                self._enqueue_epoch_ship(final=False)
            # Cooperative yield: let this thread's merge coroutines run.
            yield SCHED_YIELD
        # Flow exhausted.
        self.watermarks.finish(thread)
        self.backend.observe_watermark(self.watermarks.watermark)
        self._workers_remaining -= 1
        if self._workers_remaining == 0:
            self.epoch.force()
            self._enqueue_epoch_ship(final=True)

    def _enqueue_epoch_ship(self, final: bool) -> None:
        deltas = self.handle.collect_deltas()
        trace(
            self.sim, "epoch", f"exec{self.executor_id} boundary",
            epoch=self.epoch.current_epoch, deltas=len(deltas), final=final,
        )
        marker = None
        if self.sim.faults is not None:
            # Record the cut (flow positions + retained deltas) and take
            # the boundary checkpoint, synchronously at this instant.
            # Under async-snapshot the injector returns a SnapshotMarker
            # to emit in-band right after this cut's deltas.
            marker = self.sim.faults.note_epoch_cut(self, deltas, final)
        # Re-anchor the working-set estimate: fragments were just drained,
        # so the hot set is what actually remains resident locally.
        self._ws_bytes = float(self.handle.fragment_bytes())
        thread_count = len(self.schedulers)
        by_thread: list[list[EpochDelta]] = [[] for _ in range(thread_count)]
        for delta in deltas:
            leader = self.directory.leader_of_partition(delta.partition)
            by_thread[leader % thread_count].append(delta)
        for thread, subset in enumerate(by_thread):
            self._ship_inboxes[thread].put((subset, final, marker))

    def _defer_watermarks(self, deltas: list) -> list:
        """Keep the watermark only on the last delta per leader.

        When one leader owns several partitions (a non-identity
        :class:`PartitionDirectory`), a helper ships several sibling
        deltas per epoch over one FIFO channel.  The piggybacked
        watermark must not advance the leader's clock until every
        sibling has landed, or a window could fire between them — so
        all but the final delta per leader travel with -inf (which the
        clock's monotone ``advance`` ignores).
        """
        last_for_leader: dict[int, int] = {}
        for index, delta in enumerate(deltas):
            last_for_leader[self.directory.leader_of_partition(delta.partition)] = index
        deferred = []
        for index, delta in enumerate(deltas):
            leader = self.directory.leader_of_partition(delta.partition)
            if last_for_leader[leader] == index:
                deferred.append(delta)
            else:
                deferred.append(dataclasses.replace(delta, watermark=float("-inf")))
        return deferred

    def _owned_out_channels(self, thread: int) -> list[tuple[int, Any]]:
        """The (peer, producer) out-channels thread ``thread`` owns."""
        thread_count = len(self.schedulers)
        return [
            (peer_id, producer)
            for peer_id, producer in sorted(self._out_channels.items())
            if peer_id % thread_count == thread
        ]

    # -- the shipper coroutines ----------------------------------------------
    def _ship_task(self, thread: int, core: Core) -> Generator[Any, Any, None]:
        from repro.core.scheduler import Park

        cost_model = self.node.cost_model
        while True:
            deltas, final, marker = yield Park(self._ship_inboxes[thread].get())
            deltas = self._defer_watermarks(deltas)
            for delta in deltas:
                leader = self.directory.leader_of_partition(delta.partition)
                if leader == self.executor_id:
                    # Promoted to lead this partition after the delta was
                    # collected.  Live migration: the delta's state exists
                    # nowhere else — hand it to the coordinator, which
                    # admits it locally through the dense-order gate.
                    # Crash promotion: the recovery path already merged
                    # the retained copy locally, nothing to ship.
                    if self.sim.elastic is not None:
                        self.sim.elastic.on_ship_blocked(self, delta)
                    continue
                producer = self._out_channels[leader]
                if producer.closed:
                    # The partition's leadership moved to this peer after
                    # the delta was enqueued and the shipper thread owning
                    # the channel already closed it behind its own final
                    # cut.  Live migration: the coordinator must carry the
                    # delta to the new leader itself (it is counted in the
                    # handoff's pending set).  Crash promotion: the delta
                    # predates the reassignment instant, so the recovery
                    # body's retained-backlog merge has already folded it
                    # in; shipping it again could only produce a
                    # ledger-deduped duplicate.
                    if self.sim.elastic is not None:
                        self.sim.elastic.on_ship_blocked(self, delta)
                    continue
                # Serialisation: the delta streams out of the LSS memory.
                yield from core.execute(
                    cost_model.cache.streaming_cost(max(delta.nbytes, 64)), 1.0
                )
                for chunk in self._chunk_delta(delta):
                    yield from producer.send_cooperative(core, chunk, chunk.nbytes)
                if self.sim.faults is not None and self.sim.faults.should_duplicate_delta(
                    self.executor_id
                ):
                    # Injected duplicate: the identical chunk sequence goes
                    # out again; the leader's epoch ledger must dedupe it.
                    for chunk in self._chunk_delta(delta):
                        yield from producer.send_cooperative(core, chunk, chunk.nbytes)
            if marker is not None:
                # Barrier markers follow the boundary's deltas on every
                # open channel this thread owns (one sender per channel,
                # so FIFO order puts them after the cut everywhere).
                for _peer_id, producer in self._owned_out_channels(thread):
                    if producer.closed or producer.dead:
                        continue
                    yield from producer.send_cooperative(
                        core, marker, CHUNK_HEADER_BYTES
                    )
            if thread == 0:
                # Even with nothing to ship, re-check the trigger: our own
                # watermark may have advanced past a window end.
                yield from self._check_triggers(core)
            if final:
                for _peer_id, producer in self._owned_out_channels(thread):
                    yield from producer.send_cooperative(
                        core, DoneToken(self.executor_id), CHUNK_HEADER_BYTES
                    )
                    yield from producer.close_cooperative(core)
                self._shippers_remaining -= 1
                self._maybe_finalize_soon()
                return

    def _chunk_delta(self, delta: EpochDelta) -> Iterable[DeltaChunk]:
        """Split a delta into chunks that fit one channel buffer each.

        The staging list comes from the executor's chunk pool;
        ``_make_chunk`` freezes its contents into the immutable
        ``DeltaChunk.pairs`` tuple, so the buffer goes straight back to
        the pool instead of the GC.
        """
        capacity = self.buffer_bytes - 512  # leave room for footer/header
        pool = self._chunk_pool
        crdt = self.handle.crdt
        chunks: list[DeltaChunk] = []
        current = pool.acquire()
        current_bytes = CHUNK_HEADER_BYTES
        for pair in self._split_oversized(delta.pairs, crdt, capacity):
            pair_bytes = 16 + crdt.value_bytes(pair[1])
            if current and current_bytes + pair_bytes > capacity:
                chunks.append(self._make_chunk(delta, current, current_bytes, last=False))
                current.clear()
                current_bytes = CHUNK_HEADER_BYTES
            current.append(pair)
            current_bytes += pair_bytes
        chunks.append(self._make_chunk(delta, current, current_bytes, last=True))
        pool.release(current)
        return chunks

    @staticmethod
    def _split_oversized(pairs: list, crdt: Any, capacity: int) -> Iterable[tuple]:
        """Split any single pair bigger than one buffer into sub-partials.

        Safe for every CRDT because the leader *merges* pairs: splitting an
        append-log payload into sub-lists (or re-sending scalar partials as
        one piece) reconstructs the same merged value.
        """
        for key, payload in pairs:
            if isinstance(payload, list) and 16 + crdt.value_bytes(payload) > capacity:
                per_record = max(1, crdt.value_bytes(payload[:1]))
                step = max(1, (capacity - 64) // per_record)
                for start in range(0, len(payload), step):
                    yield key, payload[start:start + step]
            else:
                yield key, payload

    def _make_chunk(self, delta: EpochDelta, pairs: list, nbytes: int, last: bool) -> DeltaChunk:
        ingest_times: tuple = ()
        if last:
            windows = {
                key[0] for key, _payload in delta.pairs if isinstance(key, tuple)
            }
            ingest_times = tuple(
                (win, self._last_contribution[win])
                for win in windows
                if win in self._last_contribution
            )
        return DeltaChunk(
            operator_id=delta.operator_id,
            partition=delta.partition,
            from_executor=delta.from_executor,
            epoch=delta.epoch,
            pairs=tuple(pairs),
            nbytes=min(nbytes, self.buffer_bytes - 512),
            watermark=delta.watermark,
            last=last,
            ingest_times=ingest_times,
        )

    # -- the merge coroutines -------------------------------------------------
    def _merge_task(self, core: Core, consumer: Any, peer_id: int) -> Generator[Any, Any, None]:
        cost_model = self.node.cost_model
        try:
            while True:
                payload, _nbytes = yield from consumer.recv_cooperative(core)
                if payload is CHANNEL_EOS:
                    if self.sim.faults is not None:
                        self.sim.faults.note_channel_closed(self.executor_id, peer_id)
                    yield from consumer.release(core)
                    break
                if isinstance(payload, DoneToken):
                    self._done_peers.add(payload.from_executor)
                    self.backend.clock.advance(payload.from_executor, float("inf"))
                    if self.sim.faults is not None:
                        self.sim.faults.note_channel_closed(self.executor_id, peer_id)
                    yield from consumer.release(core)
                    yield from self._check_triggers(core)
                    continue
                if isinstance(payload, SnapshotMarker):
                    if self.sim.faults is not None:
                        self.sim.faults.note_snapshot_marker(self, peer_id, payload)
                    yield from consumer.release(core)
                    continue
                chunk: DeltaChunk = payload
                key = (chunk.operator_id, chunk.partition, chunk.from_executor, chunk.epoch)
                parts = self._pending_parts.get(key)
                if parts is None:
                    parts = self._pending_parts[key] = self._chunk_pool.acquire()
                parts.extend(chunk.pairs)
                if chunk.last:
                    parts = self._pending_parts.pop(key)
                    pairs = tuple(parts)
                    self._chunk_pool.release(parts)
                    delta = EpochDelta(
                        operator_id=chunk.operator_id,
                        partition=chunk.partition,
                        from_executor=chunk.from_executor,
                        epoch=chunk.epoch,
                        pairs=pairs,
                        nbytes=chunk.nbytes,
                        watermark=chunk.watermark,
                    )
                    if pairs:
                        working_set = quantize_working_set(self._ws_bytes + 4096)
                        merge_cost = cost_model.op(
                            self.costs.merge_pair, working_set, self.costs.merge_lines
                        )
                        yield from core.execute(merge_cost, float(len(pairs)))
                    if self.sim.faults is not None and self.sim.faults.snapshot_intercept(
                        self, peer_id, delta, chunk.ingest_times
                    ):
                        # Alignment: the sender already passed its barrier
                        # for the outstanding round but this executor has
                        # not captured yet — the delta is post-snapshot,
                        # spilled until the local capture happens.
                        yield from consumer.release(core)
                        continue
                    if self.sim.elastic is not None and self.sim.elastic.on_delta(
                        self, delta, chunk.ingest_times
                    ):
                        # Live migration: the delta targets a partition this
                        # executor just handed off (relay it to the new
                        # leader) or arrived out of order at the new leader
                        # (reorder-buffered); either way the coordinator
                        # owns it now.
                        yield from consumer.release(core)
                        continue
                    # The ledger rejects duplicate epochs (retransmission or
                    # injected duplicate): a stale delta must not re-merge,
                    # re-note windows, or count as progress.
                    fresh = self.handle.merge_delta(delta)
                    if fresh:
                        if self.sim.faults is not None:
                            # Feed the (partition, term) commit registry:
                            # the machine-checked no-split-brain invariant.
                            self.sim.faults.note_partition_commit(
                                delta.partition, self.executor_id
                            )
                        trace(
                            self.sim, "merge",
                            f"exec{self.executor_id} merged p{delta.partition}",
                            from_executor=delta.from_executor, epoch=delta.epoch,
                            pairs=len(pairs),
                        )
                        # The lag reference is when the *records* were
                        # ingested at the helper, not when the delta
                        # happened to arrive here.
                        for win, ingested_at in chunk.ingest_times:
                            current = self._last_contribution.get(win, float("-inf"))
                            if ingested_at > current:
                                self._last_contribution[win] = ingested_at
                        if self.trigger is not None:
                            self.trigger.note_slices(
                                key0[0] for key0, _payload in pairs if isinstance(key0, tuple)
                            )
                        yield from self._check_triggers(core)
                    yield from consumer.release(core)
                else:
                    yield from consumer.release(core)
        except ChannelResetError:
            # The peer was declared dead and the channel reset: drop its
            # half-assembled chunks — recovery re-creates that state from
            # the checkpoint and retained deltas.
            if self.sim.faults is not None:
                self.sim.faults.note_channel_closed(self.executor_id, peer_id)
            stale = [k for k in self._pending_parts if k[2] == peer_id]
            for k in stale:
                self._chunk_pool.release(self._pending_parts.pop(k))
            trace(
                self.sim, "merge",
                f"exec{self.executor_id} merge stream from {peer_id} reset",
                dropped_parts=len(stale),
            )
        self._mergers_remaining -= 1
        self._maybe_finalize_soon()

    def on_peer_failed(self, peer_id: int) -> None:
        """Sever both channel directions to a peer declared dead."""
        producer = self._out_channels.get(peer_id)
        if producer is not None:
            producer.mark_dead()
        consumer = self._in_channels.get(peer_id)
        if consumer is not None:
            consumer.force_reset()

    def _watchdog_body(self, core: Core) -> Generator[Any, Any, None]:
        """Fault-mode-only coroutine: react to confirmed peer deaths.

        Runs on scheduler 0 and wakes every watchdog period.  It acts on
        *this executor's own* membership view (``dead_peers_for``): a
        peer's channels are severed only once the cluster fenced it by
        quorum AND the death announcement reached this node — which a
        partition can delay until heal.  Two executors' watchdogs may
        therefore legitimately act at different times.
        """
        from repro.core.scheduler import Park

        faults = self.sim.faults
        handled: set[int] = set()
        while not self._finalized:
            yield Park(Timeout(faults.watchdog_period_s))
            for peer_id in faults.dead_peers_for(self.executor_id):
                if peer_id == self.executor_id or peer_id in handled:
                    continue
                handled.add(peer_id)
                trace(
                    self.sim, "fault",
                    f"exec{self.executor_id} watchdog: peer {peer_id} dead",
                )
                self.on_peer_failed(peer_id)

    def _maybe_finalize_soon(self) -> None:
        if self.sim.faults is not None and self.sim.faults.holds_finalize(
            self.executor_id
        ):
            # A recovery is in flight: it may still re-deliver deltas or
            # re-pend windows here.  finish_recovery re-invokes this.
            return
        if self.sim.elastic is not None and self.sim.elastic.holds_finalize(
            self.executor_id
        ):
            # A migration handoff is forwarding in-flight deltas here; the
            # coordinator re-invokes this once the relay drain completes.
            return
        if (
            self._mergers_remaining == 0
            and self._shippers_remaining == 0
            and not self._finalized
        ):
            # Finalisation needs a task context; run it as a sim process on
            # core 0 once every merge stream has drained.
            self._finalized = True
            self.sim.process(self._finalize(), name=f"exec{self.executor_id}.final")

    def _finalize(self) -> Generator[Any, Any, None]:
        core = self.node.core(0)
        yield from self._check_triggers(core)
        if self.trigger is not None and self.trigger.pending:
            raise SimulationError(
                f"executor {self.executor_id} finalised with pending windows "
                f"{sorted(self.trigger.pending)[:5]} (frontier "
                f"{self.backend.clock.min_watermark()})"
            )
        self.finished.fire(self.results)

    # -- window triggering -------------------------------------------------------
    def _check_triggers(self, core: Core) -> Generator[Any, Any, None]:
        if self.sim.faults is not None and self.sim.faults.triggers_suppressed(
            self.executor_id
        ):
            # Mid-recovery: restored state is incomplete until the replay
            # finishes; firing now would emit partial windows.
            return
        if self.sim.elastic is not None and self.sim.elastic.triggers_suppressed(
            self.executor_id
        ):
            # Mid-handoff: epochs that were in flight to the old leader
            # are still being forwarded; firing now would emit windows
            # with a migrated key's state split across two executors.
            return
        frontier = self.backend.clock.min_watermark()
        plan = self.plan
        if isinstance(plan.window, SessionWindows):
            yield from self._trigger_sessions(core, frontier)
            return
        assert self.trigger is not None
        for window_id in self.trigger.due_windows(frontier):
            if plan.is_join:
                yield from self._fire_join_window(core, window_id)
            else:
                yield from self._fire_agg_window(core, window_id)

    def _fire_agg_window(self, core: Core, window_id: int) -> Generator[Any, Any, None]:
        san = self.sim.sanitize
        if san is not None:
            san.check_window_fire(
                self.executor_id, window_id,
                self.plan.window.window_end(window_id),
                self.backend.clock.min_watermark(),
            )
        assert self.plan.aggregation is not None
        crdt = self.plan.aggregation.crdt
        window = self.plan.window
        if isinstance(window, SlidingWindow):
            merged: dict = {}
            for slice_id in window.slices_of_window(window_id):
                for key, payload in self._peek_window_pairs(slice_id):
                    if key in merged:
                        merged[key] = crdt.merge(merged[key], payload)
                    else:
                        merged[key] = payload
            # The window's first slice will never be needed again.
            self.handle.extract_window(window_id)
            extracted = merged
        else:
            extracted = self.handle.extract_window(window_id)
        if not extracted:
            return
        last = self._last_contribution.pop(window_id, self.sim.now)
        self.results.trigger_lag_s.append(self.sim.now - last)
        self.results.trigger_events.append((self.sim.now, self.sim.now - last))
        trace(
            self.sim, "window", f"exec{self.executor_id} fired w{window_id}",
            keys=len(extracted),
        )
        emit_cost = self.node.cost_model.op(self.costs.emit, 0.0, 0.0)
        yield from core.execute(emit_cost, float(len(extracted)))
        for key, payload in extracted.items():
            self.results.aggregates[(window_id, key)] = crdt.finish(payload)
        self.results.emitted += len(extracted)
        self._ws_bytes = max(
            0.0, self._ws_bytes - len(extracted) * (16 + crdt.payload_bytes)
        )

    def _peek_window_pairs(self, window_id: int) -> list[tuple[Any, Any]]:
        """Read (without popping) the led pairs of one slice id."""
        pairs = []
        for key, payload in self.handle.led_items():
            if isinstance(key, tuple) and key[0] == window_id:
                pairs.append((key[1], payload))
        return pairs

    def _fire_join_window(self, core: Core, window_id: int) -> Generator[Any, Any, None]:
        san = self.sim.sanitize
        if san is not None:
            san.check_window_fire(
                self.executor_id, window_id,
                self.plan.window.window_end(window_id),
                self.backend.clock.min_watermark(),
            )
        extracted = self.handle.extract_window(window_id)
        if not extracted:
            return
        last = self._last_contribution.pop(window_id, self.sim.now)
        self.results.trigger_lag_s.append(self.sim.now - last)
        self.results.trigger_events.append((self.sim.now, self.sim.now - last))
        produced = 0
        for key, payload in extracted.items():
            pairs = probe_window(payload)
            produced += len(pairs)
            for left_row, right_row in pairs:
                self.results.join_pairs.append((window_id, key, left_row, right_row))
        if produced:
            probe_cost = self.node.cost_model.op(
                self.costs.probe_pair,
                quantize_working_set(self._ws_bytes + 4096),
                1.0,
            )
            yield from core.execute(probe_cost, float(produced))
        self.results.emitted += produced

    def _trigger_sessions(self, core: Core, frontier: float) -> Generator[Any, Any, None]:
        window = self.plan.window
        assert isinstance(window, SessionWindows)
        if frontier == float("-inf"):
            return
        produced = 0
        for key, payload in list(self.handle.led_items()):
            emitted, remaining = probe_sessions(window, payload, frontier)
            if not emitted:
                continue
            produced += len(emitted)
            for left_row, right_row in emitted:
                self.results.join_pairs.append((key, left_row, right_row))
            if remaining:
                self.handle.replace_led(key, remaining)
            else:
                self.handle.remove_led(key)
        if produced:
            probe_cost = self.node.cost_model.op(
                self.costs.probe_pair,
                quantize_working_set(self._ws_bytes + 4096),
                1.0,
            )
            yield from core.execute(probe_cost, float(produced))
        self.results.emitted += produced
