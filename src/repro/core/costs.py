"""Slash's operation cost profiles, calibrated to the paper's Table 1.

The paper measures Slash at **42 instructions / 53 cycles per record**
with ~0.9 IPC and 1.3-1.75 cache misses per record on YSB (Table 1), a
mainly **memory-bound** execution with ~20 % retiring (Fig. 10).  The
profiles below reproduce those magnitudes through the cost model:

* the fused stateless pipeline (filter + projection) is a handful of
  instructions with near-zero stalls — Slash's "simple processing logic
  on a record basis" (Sec. 8.3.4);
* the state RMW update pays an atomic (core-bound) component plus the
  cache-model charge for ``lines_touched`` random lines in the operator's
  working set, at high memory-level parallelism (independent records in a
  batch overlap their misses);
* join appends touch cold lines with *low* MLP, which is why the paper's
  join speedups are smaller than its aggregation speedups (Sec. 8.2.3).

All knobs live in :class:`SlashCosts` so ablation benches can vary them.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.simnet.cost_model import CostProfile


@dataclass(frozen=True)
class SlashCosts:
    """The tunable cost surface of the Slash executor."""

    # Fused filter/project work per source record.
    pipeline: CostProfile = field(
        default_factory=lambda: CostProfile(
            "slash.pipeline", instructions=12, frontend=1.0, bad_spec=1.0, core=2.0, mlp=12
        )
    )
    # Hash-index lookup + in-place RMW (atomic) per surviving record.
    update: CostProfile = field(
        default_factory=lambda: CostProfile(
            "slash.update", instructions=30, frontend=1.5, bad_spec=1.5, core=12.0, mlp=8
        )
    )
    # Random cache lines touched by one RMW (index bucket + log entry).
    update_lines: float = 1.75
    # The RO benchmark's per-key count: the paper designs RO so that
    # 'data flows throughout the system without any costly computation'
    # (Sec. 8.1.2) — a vectorisable counter bump on a compact table.
    light_update: CostProfile = field(
        default_factory=lambda: CostProfile(
            "slash.light_update", instructions=8, frontend=0.5, bad_spec=0.5, core=1.0, mlp=16
        )
    )
    light_update_lines: float = 0.3
    # Join build: append to the log (cold line, pointer-ish access).
    append: CostProfile = field(
        default_factory=lambda: CostProfile(
            "slash.append", instructions=55, frontend=4.0, bad_spec=3.0, core=14.0, mlp=2.5
        )
    )
    append_lines: float = 2.5
    # Leader-side merge of one shipped delta pair: a hash probe plus a
    # CRDT combine on a sequentially-prefetched delta buffer.
    merge_pair: CostProfile = field(
        default_factory=lambda: CostProfile(
            "slash.merge", instructions=14, frontend=0.5, bad_spec=0.5, core=3.0, mlp=10
        )
    )
    merge_lines: float = 1.0
    # Trigger-time cost per emitted result row.
    emit: CostProfile = field(
        default_factory=lambda: CostProfile(
            "slash.emit", instructions=20, frontend=1.0, core=3.0, mlp=8
        )
    )
    # Join probe cost per produced output pair.
    probe_pair: CostProfile = field(
        default_factory=lambda: CostProfile(
            "slash.probe", instructions=24, frontend=2.0, bad_spec=1.0, core=5.0, mlp=4
        )
    )


#: Shared default instance; engines copy-on-write via dataclasses.replace.
DEFAULT_SLASH_COSTS = SlashCosts()


# Per-record overhead factor of interpretation-based execution relative
# to compiled pipelines: virtual dispatch per operator, no fusion, boxed
# intermediate values.  Grizzly (cited by the paper) measures roughly
# this order between interpreted and compiled stream pipelines.
INTERPRETED_FACTOR = 3.0


def interpreted(costs: SlashCosts = DEFAULT_SLASH_COSTS) -> SlashCosts:
    """The cost surface of interpretation-based execution (Sec. 5.3).

    Slash 'is agnostic to the execution strategy, as it supports
    compilation-based and interpretation-based strategies'; this scales
    the per-record compute of the hot path while leaving the network and
    state-synchronisation costs untouched.
    """
    from dataclasses import replace

    return replace(
        costs,
        pipeline=costs.pipeline.scaled(INTERPRETED_FACTOR),
        update=costs.update.scaled(INTERPRETED_FACTOR),
        append=costs.append.scaled(INTERPRETED_FACTOR),
        light_update=costs.light_update.scaled(INTERPRETED_FACTOR),
    )


def quantize_working_set(nbytes: float) -> float:
    """Round a working-set size so cost-model memoisation stays effective.

    Working sets grow continuously; quantising to ~1.2x steps keeps the
    (profile, working-set) memo key space small without distorting the
    cache model's smooth miss curve.
    """
    if nbytes <= 4096:
        return 4096.0
    step = 1.2
    import math

    exponent = math.ceil(math.log(nbytes / 4096.0, step))
    return 4096.0 * step ** exponent
