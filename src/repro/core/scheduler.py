"""The coroutine-based event-driven worker scheduler (paper Sec. 5.3, Fig. 3).

Each Slash worker thread owns one :class:`CoroScheduler` holding a queue
of cooperative *tasks* (Python generators).  Tasks are of two kinds, per
the paper: RDMA coroutines (poll channels, ship/receive deltas) and
compute coroutines (run pipelines on polled buffers).  A task may yield:

* any :class:`~repro.simnet.kernel.Waitable` — forwarded to the
  simulation kernel (time passes; typically from ``core.execute``);
* :data:`SCHED_YIELD` — cooperative yield: requeue me, run someone else
  (free except for the modelled context-switch cost);
* :class:`Park` — park me until the given waitable fires, but *keep
  running other tasks meanwhile*.  This is the crucial behaviour from
  the paper: an empty RDMA channel parks its coroutine instead of
  stalling the worker.

When every task is parked, the scheduler spin-waits for the first wakeup
(charged as core-bound cycles — the worker really would be spinning on
``pause``).  A context switch between coroutines costs 10-20 ns
(Sec. 5.3); we charge the modelled cost per task switch.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Generator, Optional

from repro.common.errors import SimulationError
from repro.simnet.cluster import Core
from repro.simnet.cost_model import OpCost
from repro.simnet.kernel import Signal, Timeout, Waitable


class _SchedYield:
    def __repr__(self) -> str:
        return "SCHED_YIELD"


SCHED_YIELD = _SchedYield()


class Park:
    """Yield this to park the current task until ``waitable`` fires."""

    __slots__ = ("waitable",)

    def __init__(self, waitable: Waitable):
        self.waitable = waitable


# ~36 cycles at 2.4 GHz = 15 ns, the coroutine switch cost the paper cites.
_SWITCH_COST = OpCost(instructions=12, retiring=3.0, core=33.0)


class _Task:
    __slots__ = ("gen", "name", "inbox")

    def __init__(self, gen: Generator, name: str):
        self.gen = gen
        self.name = name
        self.inbox: Any = None


class CoroScheduler:
    """Cooperative task scheduler for one worker thread."""

    def __init__(self, core: Core, name: str = "sched"):
        self.core = core
        self.name = name
        self._ready: deque[_Task] = deque()
        self._parked: dict[_Task, Signal] = {}
        self.switches = 0
        # Fault hooks: a halted scheduler (node crash) abandons its tasks
        # forever; a paused one (stall fault) resumes at ``_resume_at``.
        self._halted = False
        self._resume_at = float("-inf")

    def add(self, gen: Generator, name: str = "task") -> None:
        """Register a coroutine; it starts on the next scheduling round."""
        if not hasattr(gen, "send"):
            raise SimulationError(f"task {name!r} must be a generator")
        self._ready.append(_Task(gen, name))

    @property
    def task_count(self) -> int:
        """Tasks alive (ready or parked)."""
        return len(self._ready) + len(self._parked)

    def halt(self) -> None:
        """Kill the scheduler: never run another task (crashed node)."""
        self._halted = True

    def pause_until(self, resume_at: float) -> None:
        """Suspend task execution until simulated time ``resume_at``."""
        if resume_at > self._resume_at:
            self._resume_at = resume_at

    def run(self) -> Generator[Any, Any, None]:
        """Drive all tasks to completion; run as (part of) a sim process."""
        while self._ready or self._parked:
            if self._halted:
                return
            if self._resume_at > self.core.sim.now:
                yield Timeout(self._resume_at - self.core.sim.now)
                continue
            if not self._ready:
                # Everything is parked: spin until the first wakeup.
                yield from self.core.spin_wait(self._any_wakeup())
                continue
            task = self._ready.popleft()
            self.switches += 1
            self.core.counters.charge(_SWITCH_COST, 1.0)
            yield from self._step(task)

    def _step(self, task: _Task) -> Generator[Any, Any, None]:
        """Advance one task until it parks, yields, or waits on sim time."""
        send_value = task.inbox
        task.inbox = None
        while True:
            try:
                item = task.gen.send(send_value)
            except StopIteration:
                return
            if item is SCHED_YIELD:
                self._ready.append(task)
                return
            if isinstance(item, Park):
                self._park(task, item.waitable)
                return
            if isinstance(item, Waitable):
                # Sim time passes inside the task (compute, channel ops).
                send_value = yield item
                if self._halted:
                    return
                if self._resume_at > self.core.sim.now:
                    yield Timeout(self._resume_at - self.core.sim.now)
                continue
            raise SimulationError(
                f"task {task.name!r} yielded {item!r}; expected a Waitable, "
                "SCHED_YIELD, or Park"
            )

    def _park(self, task: _Task, waitable: Waitable) -> None:
        wakeup = Signal(name=f"{self.name}.{task.name}.wakeup")
        self._parked[task] = wakeup

        def on_fire(value: Any, exc: Optional[BaseException]) -> None:
            if exc is not None:
                raise exc
            if task in self._parked:
                del self._parked[task]
                task.inbox = value
                self._ready.append(task)
            if not wakeup.fired:
                wakeup.fire(value)

        waitable._subscribe(self.core.sim, on_fire)

    def _any_wakeup(self) -> Waitable:
        """A signal firing when the first parked task becomes ready."""
        first = Signal(name=f"{self.name}.first-wakeup")

        def watch(wakeup: Signal) -> None:
            def on_fire(value: Any, exc: Optional[BaseException]) -> None:
                if not first.fired:
                    first.fire(value)

            wakeup._subscribe(self.core.sim, on_fire)

        for wakeup in list(self._parked.values()):
            watch(wakeup)
        if not self._parked:
            raise SimulationError(f"{self.name}: deadlock — no tasks to wake")
        return first
