"""Operator fusion: queries compile to pipelines (paper Sec. 5, Fig. 2).

A :class:`CompiledChain` fuses a stream's stateless operators into one
per-batch function.  The chain terminates at a *soft pipeline breaker* —
the stateful window update — realised by :class:`AggregationPipeline` or
:class:`JoinBuildPipeline`, which reduce the surviving records of a batch
to per-group partial payloads ready for the SSB.

The compiled objects are engine-agnostic: Slash, RDMA UpPar, the
Flink-like baseline, and LightSaber all execute the same compiled
pipelines and differ only in *where* the state lives and *how* partials
are merged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

import numpy as np

from repro.common.errors import QueryError
from repro.core.aggregations import group_reduce, group_rows, partial_aggregate
from repro.core.query import (
    AggregateSpec,
    FilterOp,
    JoinSpec,
    MapValueOp,
    ProjectOp,
    Query,
    StreamBuilder,
)
from repro.core.records import RecordBatch
from repro.core.windows import SessionWindows
from repro.state.crdt import AppendLogCrdt, Crdt


class CompiledChain:
    """The fused stateless prefix of one stream."""

    def __init__(self, stream: StreamBuilder):
        self.stream_name = stream.name
        self.schema = stream.schema
        self._filters = [op for op in stream.ops if isinstance(op, FilterOp)]
        self._value_op = next(
            (op for op in stream.ops if isinstance(op, MapValueOp)), None
        )
        projections = [op for op in stream.ops if isinstance(op, ProjectOp)]
        self.projected_fields = projections[-1].fields if projections else None
        self.op_count = len(stream.ops)

    @property
    def has_filter(self) -> bool:
        return bool(self._filters)

    def apply(self, batch: RecordBatch) -> RecordBatch:
        """Run all fused filters over ``batch`` (vectorised)."""
        for op in self._filters:
            mask = op.predicate(batch)
            batch = batch.select(np.asarray(mask, dtype=bool))
        return batch

    def value_column(self, batch: RecordBatch, value_field: Optional[str]) -> Optional[np.ndarray]:
        """The aggregation value column of a (filtered) batch."""
        if self._value_op is not None:
            return np.asarray(self._value_op.fn(batch))
        if value_field is not None:
            return batch.col(value_field)
        return None


class BatchResult:
    """What the stateful breaker produced for one input batch.

    Scalar-payload aggregations (count/sum/min/max) carry their groups as
    the ``group_windows``/``group_keys``/``group_partials`` columns; the
    ``partials`` dict is materialised lazily from them, so consumers that
    reduce the columns directly never pay for per-group tuples.
    """

    __slots__ = (
        "_partials",
        "survivors",
        "max_timestamp",
        "state_bytes",
        "group_windows",
        "group_keys",
        "group_partials",
    )

    def __init__(
        self,
        partials: Optional[dict[Any, Any]],
        survivors: int,
        max_timestamp: float,
        state_bytes: int,
        group_windows: Optional[np.ndarray] = None,
        group_keys: Optional[np.ndarray] = None,
        group_partials: Optional[np.ndarray] = None,
    ):
        self._partials = partials
        self.survivors = survivors
        self.max_timestamp = max_timestamp
        self.state_bytes = state_bytes
        self.group_windows = group_windows
        self.group_keys = group_keys
        self.group_partials = group_partials

    @property
    def partials(self) -> dict[Any, Any]:
        partials = self._partials
        if partials is None:
            partials = self._partials = dict(
                zip(
                    zip(self.group_windows.tolist(), self.group_keys.tolist()),
                    self.group_partials.tolist(),
                )
            )
        return partials


class AggregationPipeline:
    """Chain + windowed aggregation breaker (YSB, CM, NB7, RO)."""

    def __init__(self, query: Query):
        query.validate()
        if query.is_join:
            raise QueryError("query terminates in a join, not an aggregation")
        assert query.aggregate_spec is not None and query.agg_stream is not None
        self.query = query
        self.spec: AggregateSpec = query.aggregate_spec
        self.chain = CompiledChain(query.agg_stream)
        self.crdt: Crdt = self.spec.crdt
        self.operator_id = f"{query.name}.agg"

    def process_batch(self, batch: RecordBatch) -> BatchResult:
        """Filter, assign windows, and reduce to per-group partials."""
        filtered = self.chain.apply(batch)
        if len(filtered) == 0:
            return BatchResult({}, 0, batch.max_timestamp, 0)
        window_ids = self.spec.window.assign(filtered.timestamps)
        values = self.chain.value_column(filtered, self.spec.value_field)
        # Resident bytes per distinct group: hash-index bucket share plus
        # log entry header/key plus the payload (FASTER-style layout).
        per_group_bytes = 64 + self.crdt.payload_bytes
        reduced = group_reduce(self.crdt, window_ids, filtered.keys, values)
        if reduced is not None:
            group_windows, group_keys, group_partials = reduced
            return BatchResult(
                None,
                len(filtered),
                batch.max_timestamp,
                len(group_keys) * per_group_bytes,
                group_windows,
                group_keys,
                group_partials,
            )
        partials = partial_aggregate(self.crdt, window_ids, filtered.keys, values)
        state_bytes = len(partials) * per_group_bytes
        return BatchResult(partials, len(filtered), batch.max_timestamp, state_bytes)


# Side tags stored in join payload entries.
LEFT, RIGHT = 0, 1


class JoinBuildPipeline:
    """Chain + hash-join build breaker for one side of a join (NB8, NB11).

    Every surviving record is appended to the per-``(window, key)`` (or
    per-``key`` for session windows) state as a ``(side, row_tuple)``
    entry; probing happens at trigger time on merged state.
    """

    def __init__(self, query: Query, side: int):
        query.validate()
        if not query.is_join:
            raise QueryError("query terminates in an aggregation, not a join")
        assert query.join_spec is not None
        self.query = query
        self.spec: JoinSpec = query.join_spec
        self.side = side
        stream = query.join_left if side == LEFT else query.join_right
        assert stream is not None
        self.chain = CompiledChain(stream)
        self.operator_id = f"{query.name}.join"
        self.crdt = AppendLogCrdt(record_bytes=stream.schema.record_bytes)

    def process_batch(self, batch: RecordBatch) -> BatchResult:
        """Filter, group, and emit append partials for the build side."""
        filtered = self.chain.apply(batch)
        if len(filtered) == 0:
            return BatchResult({}, 0, batch.max_timestamp, 0)
        window = self.spec.window
        if isinstance(window, SessionWindows):
            # Session state is keyed by the bare key; records keep their ts.
            groups = group_rows(
                np.zeros(len(filtered), dtype=np.int64), filtered.keys
            )
            partials = {
                int(key): [
                    (float(filtered.timestamps[i]), self.side, _row(filtered, i))
                    for i in indices
                ]
                for (_zero, key), indices in groups.items()
            }
        else:
            window_ids = window.assign(filtered.timestamps)
            groups = group_rows(window_ids, filtered.keys)
            partials = {
                (win, key): [(self.side, _row(filtered, i)) for i in indices]
                for (win, key), indices in groups.items()
            }
        state_bytes = len(filtered) * self.chain.schema.record_bytes
        return BatchResult(partials, len(filtered), batch.max_timestamp, state_bytes)


def _row(batch: RecordBatch, index: int) -> tuple:
    """Materialise one record as a plain, hashable tuple."""
    return tuple(value.item() for value in batch.data[index])


@dataclass
class PhysicalPlan:
    """Everything an engine needs to execute one query."""

    query: Query
    aggregation: Optional[AggregationPipeline]
    join_sides: Optional[tuple[JoinBuildPipeline, JoinBuildPipeline]]

    @property
    def is_join(self) -> bool:
        return self.join_sides is not None

    @property
    def operator_id(self) -> str:
        if self.aggregation is not None:
            return self.aggregation.operator_id
        assert self.join_sides is not None
        return self.join_sides[0].operator_id

    @property
    def crdt(self) -> Crdt:
        if self.aggregation is not None:
            return self.aggregation.crdt
        assert self.join_sides is not None
        return self.join_sides[0].crdt

    @property
    def window(self):
        if self.aggregation is not None:
            return self.aggregation.spec.window
        assert self.join_sides is not None
        return self.join_sides[0].spec.window

    def pipeline_for(self, stream_name: str):
        """The pipeline consuming ``stream_name``."""
        if self.aggregation is not None:
            if stream_name != self.aggregation.chain.stream_name:
                raise QueryError(f"query has no stream {stream_name!r}")
            return self.aggregation
        assert self.join_sides is not None
        for side in self.join_sides:
            if side.chain.stream_name == stream_name:
                return side
        raise QueryError(f"query has no stream {stream_name!r}")


def compile_query(query: Query) -> PhysicalPlan:
    """Compile a validated query into its physical plan."""
    query.validate()
    if query.is_join:
        return PhysicalPlan(
            query,
            aggregation=None,
            join_sides=(JoinBuildPipeline(query, LEFT), JoinBuildPipeline(query, RIGHT)),
        )
    return PhysicalPlan(query, aggregation=AggregationPipeline(query), join_sides=None)
