"""Which partitions move where: the deterministic migration planner.

The planner looks only at the current leader map (and optionally the
per-partition state sizes) and produces a list of
:class:`~repro.elastic.plan.PartitionMove` items.  It is pure — the
coordinator executes the moves — so the same inputs always yield the
same plan, keeping elastic runs seed-reproducible.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

from repro.common.errors import ConfigError
from repro.elastic.plan import (
    ACTION_JOIN,
    ACTION_LEAVE,
    ACTION_REBALANCE,
    ElasticPlan,
    PartitionMove,
)
from repro.state.partition import PartitionDirectory


class MigrationPlanner:
    """Turns a rescale action into concrete partition moves."""

    def __init__(
        self,
        directory: PartitionDirectory,
        size_of_partition: Optional[Callable[[int], int]] = None,
    ):
        self.directory = directory
        # Used to break ties toward moving the *largest* partitions off
        # an overloaded node first (they dominate the transfer time the
        # fluid strategy amortises).  Defaults to "all equal".
        self._size_of = size_of_partition or (lambda partition: 1)

    def plan_moves(
        self, plan: ElasticPlan, joining: Sequence[int] = ()
    ) -> list[PartitionMove]:
        """The moves realising ``plan`` against the current leader map."""
        if plan.action == ACTION_JOIN:
            if not joining:
                raise ConfigError("join planned but no joining executors given")
            return self.plan_join(list(joining))
        if plan.action == ACTION_LEAVE:
            return self.plan_leave(plan.drain_node)
        if plan.action == ACTION_REBALANCE:
            return self.plan_rebalance()
        raise ConfigError(f"unknown rescale action {plan.action!r}")

    def plan_join(self, joining: list[int]) -> list[PartitionMove]:
        """Spread partitions from the most-loaded leaders onto new nodes.

        Each joining executor receives its fair share (total partitions
        divided by the new member count, at least one), taken from the
        current leaders in descending (size, partition) order so the
        heaviest state moves off first and ties stay deterministic.
        """
        directory = self.directory
        members = directory.executors
        fair_share = max(1, members // (len(joining) + self._leader_count()))
        donors = sorted(
            (
                (self._size_of(partition), partition)
                for partition in range(members)
                if directory.leader_of_partition(partition) not in joining
            ),
            reverse=True,
        )
        moves = []
        donor_iter = iter(donors)
        for new_leader in sorted(joining):
            for _ in range(fair_share):
                try:
                    _size, partition = next(donor_iter)
                except StopIteration:
                    break
                moves.append(
                    PartitionMove(
                        partition=partition,
                        src=directory.leader_of_partition(partition),
                        dst=new_leader,
                    )
                )
        return moves

    def plan_leave(self, leaving: int) -> list[PartitionMove]:
        """Drain every partition ``leaving`` leads onto the survivors.

        Targets rotate round-robin over the remaining leaders, smallest
        id first, so no single survivor absorbs the whole load.
        """
        directory = self.directory
        survivors = sorted(
            {
                directory.leader_of_partition(partition)
                for partition in range(directory.executors)
            }
            - {leaving}
        )
        if not survivors:
            raise ConfigError(
                f"executor {leaving} cannot leave: it leads every partition"
            )
        moves = []
        led = sorted(directory.partitions_led_by(leaving))
        for index, partition in enumerate(led):
            moves.append(
                PartitionMove(
                    partition=partition,
                    src=leaving,
                    dst=survivors[index % len(survivors)],
                )
            )
        return moves

    def plan_rebalance(self) -> list[PartitionMove]:
        """Move partitions from over- to under-loaded leaders.

        A leader is overloaded when it leads more than
        ``ceil(partitions / members)``; excess partitions (largest
        first) move to the leaders furthest below the fair share.
        """
        directory = self.directory
        members = directory.executors
        led_by = {
            executor: sorted(directory.partitions_led_by(executor))
            for executor in range(members)
        }
        fair = -(-members // max(1, len([e for e in led_by if led_by[e]])))
        surplus: list[tuple[int, int]] = []  # (size, partition)
        deficit: list[int] = []
        for executor in range(members):
            led = led_by[executor]
            if len(led) > fair:
                for partition in sorted(
                    led[fair:], key=lambda p: (-self._size_of(p), p)
                ):
                    surplus.append((self._size_of(partition), partition))
            elif len(led) < fair:
                deficit.extend([executor] * (fair - len(led)))
        moves = []
        for (_size, partition), target in zip(surplus, deficit):
            moves.append(
                PartitionMove(
                    partition=partition,
                    src=directory.leader_of_partition(partition),
                    dst=target,
                )
            )
        return moves

    def _leader_count(self) -> int:
        directory = self.directory
        return len(
            {
                directory.leader_of_partition(partition)
                for partition in range(directory.executors)
            }
        )
