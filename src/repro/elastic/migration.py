"""Live SSB partition migration for the Slash engine (``sim.elastic``).

The coordinator executes a :class:`~repro.elastic.plan.ElasticPlan`
against a running set of :class:`~repro.core.executor.SlashExecutor`
processes.  Two strategies:

**all-at-once**
    At the rescale instant every scheduler in the cluster pauses for the
    bulk transfer of the moving partitions' primary state, ownership
    re-points under a fenced term bump, and processing resumes.  The
    pause is the classic stop-the-world latency spike.

**fluid** (Megaphone-style)
    The state of each moving partition is pre-copied in ``fluid_ranges``
    per-key-range rounds interleaved with processing; each round stalls
    only the *source* executor for that range's transfer time, and the
    rounds are spread out so the source drains its backlog in between.
    At handoff only the residual (bytes dirtied since their range was
    copied) transfers inside a short final stall.

In both strategies the ownership flip itself is atomic — performed
inside one coordinator step with no intervening simulation event — and
is followed by a *forwarding window*: epoch deltas that were already in
flight to the old leader are relayed to the new one with their original
``(helper, epoch)`` identity, the new leader's epoch ledger is seeded
from the old leader's admission point so the per-helper epoch sequence
stays dense, and direct deltas that overtake a relay are parked in a
reorder buffer.  The new leader's triggers are gated until every epoch
that was in flight at the handoff instant has been admitted, so no
window can fire with a key's state split across two executors.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Generator, Optional

from repro.common.errors import ConfigError, StateError
from repro.core.windows import SlidingWindow
from repro.elastic.autoscale import AutoscaleController
from repro.elastic.plan import (
    ElasticPlan,
    PartitionMove,
    subrange_of,
    transfer_seconds,
)
from repro.elastic.planner import MigrationPlanner
from repro.simnet.kernel import AllOf, FirstOf, Signal, Timeout
from repro.simnet.trace import trace

#: Simulated seconds between relay-drain polls after a handoff.
DRAIN_POLL_S = 1e-4

#: Polls without any admission progress before the coordinator declares
#: the relay drain stalled (a protocol bug, not a slow run).
DRAIN_STALL_POLLS = 100_000


@dataclass
class _PostState:
    """Per-partition bookkeeping for the post-handoff forwarding window."""

    move: PartitionMove
    #: helper id -> epochs shipped-but-unadmitted at the handoff instant.
    pending: dict[int, set[int]]
    #: helper id -> [(delta, ingest_times)] parked by the reorder buffer.
    buffers: dict[int, list] = field(default_factory=dict)
    relays_in_flight: int = 0
    drained: bool = False


class SlashElasticCoordinator:
    """Executes live partition migration against running Slash executors."""

    def __init__(
        self,
        sim: Any,
        cluster: Any,
        directory: Any,
        plan: ElasticPlan,
        buffer_bytes: int,
    ):
        self.sim = sim
        self.cluster = cluster
        self.directory = directory
        self.plan = plan
        self.buffer_bytes = buffer_bytes
        self.executors: list = []
        self.operator_id: Optional[str] = None
        self.missed_rescale = False
        self.autoscale_report: Optional[dict] = None
        #: One dict per executed (or rolled-back) partition move.
        self.events: list[dict] = []
        self._post: dict[int, _PostState] = {}
        self._suppressed: set[int] = set()
        self._held: set[int] = set()
        self._terms: dict[int, int] = {}
        self._migration_started_at: Optional[float] = None
        self._migration_ended_at: Optional[float] = None
        self._admissions = 0
        self._done = Signal(name="elastic.done")

    # -- wiring ----------------------------------------------------------
    def register(self, executors: list) -> None:
        """Bind the coordinator to the run's executor set."""
        self.executors = list(executors)
        self.operator_id = executors[0].plan.operator_id
        san = self.sim.sanitize
        if san is not None:
            for partition in range(self.directory.executors):
                san.note_migration_owner(
                    self.operator_id,
                    partition,
                    self.directory.leader_of_partition(partition),
                )

    def arm(self) -> None:
        """Start the coordinator's simulation process."""
        self.sim.process(self._body(), name="elastic.coordinator")

    # -- hooks consulted by the executors --------------------------------
    def triggers_suppressed(self, executor_id: int) -> bool:
        """Window firing gated at ``executor_id`` (handoff in flight)."""
        return executor_id in self._suppressed

    def holds_finalize(self, executor_id: int) -> bool:
        """``executor_id`` must not finalize yet (relays may re-pend it)."""
        return executor_id in self._held

    def on_delta(self, executor: Any, delta: Any, ingest_times: tuple) -> bool:
        """Merge-site intercept; True when the coordinator consumed it.

        Two cases: the executor is the *old* leader of a migrated
        partition (the delta was in flight at the handoff — relay it to
        the new leader, identity preserved), or it is the *new* leader
        and the delta would skip a still-in-flight epoch (park it in the
        reorder buffer until the gap closes).
        """
        partition = delta.partition
        post = self._post.get(partition)
        if post is None:
            return False
        executor_id = executor.executor_id
        if not self.directory.is_leader(executor_id, partition):
            if executor_id != post.move.src:
                return False
            post.relays_in_flight += 1
            self.sim.process(
                self._relay_body(post, delta, ingest_times),
                name=f"elastic.relay.p{partition}e{delta.epoch}",
            )
            return True
        san = self.sim.sanitize
        if san is not None:
            san.check_delta_owner(delta.operator_id, partition, executor_id)
        helper_id = delta.from_executor
        admitted = executor.backend.ledger.last_epoch(
            delta.operator_id, partition, helper_id
        )
        pending = post.pending.get(helper_id)
        if pending:
            # Direct deltas admit through the executor's own merge path
            # without touching the coordinator's books — fold the
            # ledger's progress into the pending set on every arrival.
            pending.difference_update(range(min(pending), admitted + 1))
            if not pending:
                post.pending.pop(helper_id, None)
                pending = None
        if delta.epoch <= admitted + 1:
            # Dense (or a duplicate the ledger will dedupe): merge it on
            # the executor's own path.  If parked successors were waiting
            # on exactly this gap, drain them right after the merge.
            if post.buffers.get(helper_id):
                self.sim.process(
                    self._drain_soon(executor, post),
                    name=f"elastic.drain.p{partition}",
                )
            return False
        if pending or post.buffers.get(helper_id) or post.relays_in_flight:
            # Out of order while earlier epochs are still in flight
            # (relaying, or backlogged on another shipper thread): park
            # until the gap closes.
            post.buffers.setdefault(helper_id, []).append((delta, ingest_times))
            return True
        # A skip with nothing in flight is a real protocol bug — fall
        # through and let the ledger raise.
        return False

    def on_ship_blocked(self, helper: Any, delta: Any) -> bool:
        """Shipper-side intercept for deltas whose send path vanished.

        A helper's shipper threads partition their out-channels by
        ``leader % threads`` — an invariant the migration breaks: deltas
        enqueued before the handoff re-point to the new leader at send
        time, landing on a channel a *different* thread owns.  That
        thread may already have closed it behind its own final cut, and
        the new leader itself finds ``leader == self``.  Both cases drop
        the delta on the crash-promotion path (recovery re-merges the
        retained copy), but under live migration these epochs are in
        ``pending`` and their state exists nowhere else — so the
        coordinator carries them to the new leader itself.
        """
        post = self._post.get(delta.partition)
        if post is None:
            return False
        dst_ex = self.executors[post.move.dst]
        windows = {
            key[0] for key, _payload in delta.pairs if isinstance(key, tuple)
        }
        ingest_times = tuple(
            (win, helper._last_contribution[win])
            for win in windows
            if win in helper._last_contribution
        )
        delay = (
            0.0
            if helper.executor_id == dst_ex.executor_id
            else self._transfer_seconds(delta.nbytes)
        )
        post.relays_in_flight += 1
        self.sim.process(
            self._forward_body(post, delta, ingest_times, delay),
            name=f"elastic.forward.p{delta.partition}e{delta.epoch}",
        )
        return True

    def on_channel_reset(self, executor_id: int, peer_id: int) -> None:
        """A peer died mid-stream: its in-flight epochs can never relay.

        Recovery re-creates the dead helper's contribution from its
        checkpoint and retained deltas, so the forwarding window simply
        stops waiting for it.
        """
        for post in self._post.values():
            post.pending.pop(peer_id, None)
            post.buffers.pop(peer_id, None)

    # -- the coordinator body --------------------------------------------
    def _body(self) -> Generator[Any, Any, None]:
        finished = AllOf([e.finished for e in self.executors])
        if self.plan.autoscale:
            fired = yield from self._autoscale_watch(finished)
            if not fired:
                self._done.fire(None)
                return
        else:
            index, _value = yield FirstOf([Timeout(self.plan.rescale_at), finished])
            if index == 1:
                # Every executor finished before the rescale instant:
                # the schedule points past the workload horizon.
                self.missed_rescale = True
                self._done.fire(None)
                return
        self._migration_started_at = self.sim.now
        moves = self._plan_moves()
        trace(
            self.sim, "elastic",
            f"rescale ({self.plan.strategy}) starts: {len(moves)} move(s)",
            at=self.sim.now,
        )
        if self.plan.strategy == "all-at-once":
            yield from self._run_all_at_once(moves)
        else:
            yield from self._run_fluid(moves)
        yield from self._await_relay_drain()
        self._migration_ended_at = self.sim.now
        self._release_all()
        self._done.fire(None)

    def _plan_moves(self) -> list[PartitionMove]:
        def size_of(partition: int) -> int:
            leader = self.directory.leader_of_partition(partition)
            return self.executors[leader].handle.store_for(partition).size_bytes

        planner = MigrationPlanner(self.directory, size_of_partition=size_of)
        joining = [
            e.executor_id for e in self.executors if not e.flows
        ]
        return planner.plan_moves(self.plan, joining=joining)

    # -- strategies ------------------------------------------------------
    def _run_all_at_once(self, moves: list[PartitionMove]) -> Generator[Any, Any, None]:
        live_moves = []
        total_bytes = 0
        for move in moves:
            if self._mover_crashed(move):
                continue
            live_moves.append(move)
            total_bytes += self.executors[move.src].handle.store_for(
                move.partition
            ).size_bytes
        stall = self._transfer_seconds(total_bytes)
        crashed = self._crashed()
        resume_at = self.sim.now + stall
        # Stop the world: every scheduler pauses for the bulk transfer.
        for executor in self.executors:
            if executor.executor_id in crashed:
                continue
            for scheduler in executor.schedulers:
                scheduler.pause_until(resume_at)
        for move in live_moves:
            self._do_handoff(move, ranges_copied=0, stall_s=stall)
        yield Timeout(stall)

    def _run_fluid(self, moves: list[PartitionMove]) -> Generator[Any, Any, None]:
        ranges = self.plan.fluid_ranges
        for move in moves:
            src_ex = self.executors[move.src]
            store = src_ex.handle.store_for(move.partition)
            copied_bytes = 0
            rolled_back = False
            for range_id in range(ranges):
                if self._mover_crashed(move):
                    rolled_back = True
                    break
                range_bytes = self._range_bytes(src_ex, move.partition, range_id)
                stall = self._transfer_seconds(range_bytes)
                san = self.sim.sanitize
                if san is not None:
                    san.note_range_copy(
                        self.operator_id, move.partition, range_id,
                        move.src, move.dst,
                    )
                for scheduler in src_ex.schedulers:
                    scheduler.pause_until(self.sim.now + stall)
                copied_bytes += range_bytes
                yield Timeout(stall)
                gap = stall * self.plan.fluid_spread
                if gap > 0:
                    yield Timeout(gap)
            if not rolled_back and self._mover_crashed(move):
                rolled_back = True
            if rolled_back:
                # Fenced rollback: nothing re-pointed yet, so ownership
                # is simply unchanged and the pre-copies are discarded.
                self.events.append(
                    {
                        "partition": move.partition,
                        "src": move.src,
                        "dst": move.dst,
                        "strategy": self.plan.strategy,
                        "rolled_back": True,
                        "at_s": self.sim.now,
                    }
                )
                trace(
                    self.sim, "elastic",
                    f"move of p{move.partition} rolled back (mover crashed)",
                )
                continue
            residual = max(store.size_bytes - copied_bytes, 0)
            stall = self._transfer_seconds(residual)
            dst_ex = self.executors[move.dst]
            resume_at = self.sim.now + stall
            for scheduler in src_ex.schedulers:
                scheduler.pause_until(resume_at)
            for scheduler in dst_ex.schedulers:
                scheduler.pause_until(resume_at)
            self._do_handoff(move, ranges_copied=ranges, stall_s=stall)
            yield Timeout(stall)

    # -- the atomic handoff ----------------------------------------------
    def _do_handoff(self, move: PartitionMove, ranges_copied: int, stall_s: float) -> None:
        """Re-point ownership of one partition, atomically.

        Runs inside a single coordinator step — no simulation event can
        interleave — so state, trigger bookkeeping, the ledger seed, and
        the directory flip move as one unit.
        """
        partition = move.partition
        src_ex = self.executors[move.src]
        dst_ex = self.executors[move.dst]
        operator_id = src_ex.plan.operator_id
        src_store = src_ex.handle.store_for(partition)
        pairs = list(src_store.scan())
        for key, _payload in pairs:
            src_store.remove(key)
        moved_bytes = sum(
            16 + src_ex.handle.crdt.value_bytes(payload) for _key, payload in pairs
        )

        san = self.sim.sanitize
        if san is not None:
            san.note_ownership_handoff(
                operator_id, partition, move.src, move.dst,
                ranges_copied=ranges_copied,
                ranges_total=self.plan.fluid_ranges if ranges_copied else 0,
            )
        self.directory.reassign(partition, move.dst)
        # Fenced term bump: the old leader's commits stay recorded under
        # the old term, so the no-split-brain registry proves no same-term
        # double commit across the handoff.
        if self.sim.faults is not None:
            term = self.sim.faults.terms.bump(partition, move.src, self.sim.now)
        else:
            term = self._terms[partition] = self._terms.get(partition, 0) + 1

        # Seed the new leader's ledger with the old leader's admission
        # point per helper, and record which in-flight epochs to expect.
        pending: dict[int, set[int]] = {}
        for helper in self.executors:
            helper_id = helper.executor_id
            shipped = helper.handle._epochs_shipped[partition]
            admitted = src_ex.backend.ledger.last_epoch(
                operator_id, partition, helper_id
            )
            if admitted >= 0:
                dst_ex.backend.ledger.seed(
                    operator_id, partition, helper_id, admitted
                )
            outstanding = set(range(admitted + 1, shipped))
            if outstanding:
                pending[helper_id] = outstanding

        # Fold the migrated primary state into the new leader's store
        # (CRDT merge absorbs its own unshipped fragment partials too).
        dst_store = dst_ex.handle.store_for(partition)
        for key, payload in pairs:
            dst_store.absorb(key, payload)
        src_ex._ws_bytes = max(0.0, src_ex._ws_bytes - moved_bytes)
        dst_ex._ws_bytes += moved_bytes

        # Trigger bookkeeping: every window the migrated keys touch is
        # forced back to pending at the new leader — re-fires extract
        # only the migrated keys (earlier fires popped everything else).
        if dst_ex.trigger is not None:
            window_ids = self._windows_of(dst_ex, pairs)
            dst_ex.trigger.restore_pending(window_ids)
            for window_id in window_ids:
                hinted = src_ex._last_contribution.get(window_id)
                if hinted is not None and hinted > dst_ex._last_contribution.get(
                    window_id, float("-inf")
                ):
                    dst_ex._last_contribution[window_id] = hinted

        self._post[partition] = _PostState(move=move, pending=pending)
        self._suppressed.add(move.dst)
        self._held.add(move.dst)
        self.events.append(
            {
                "partition": partition,
                "src": move.src,
                "dst": move.dst,
                "strategy": self.plan.strategy,
                "rolled_back": False,
                "at_s": self.sim.now,
                "term": term,
                "moved_bytes": moved_bytes,
                "moved_keys": len(pairs),
                "ranges_copied": ranges_copied,
                "handoff_stall_s": stall_s,
                "expected_relays": sum(len(v) for v in pending.values()),
            }
        )
        trace(
            self.sim, "elastic",
            f"p{partition} handed off {move.src}->{move.dst}",
            term=term, moved_keys=len(pairs),
        )

    @staticmethod
    def _windows_of(executor: Any, pairs: list) -> list[int]:
        window = executor.plan.window
        window_ids: set[int] = set()
        for key, _payload in pairs:
            if not isinstance(key, tuple):
                continue
            if isinstance(window, SlidingWindow):
                window_ids.update(window.windows_of_slice(int(key[0])))
            else:
                window_ids.add(int(key[0]))
        return sorted(window_ids)

    # -- the forwarding window -------------------------------------------
    def _relay_body(
        self, post: _PostState, delta: Any, ingest_times: tuple
    ) -> Generator[Any, Any, None]:
        yield from self._forward_body(
            post, delta, ingest_times, self._transfer_seconds(delta.nbytes)
        )

    def _forward_body(
        self, post: _PostState, delta: Any, ingest_times: tuple, delay: float
    ) -> Generator[Any, Any, None]:
        """Carry one coordinator-owned delta to the new leader.

        The transfer delay varies with the delta's size, so forwards can
        overtake each other on the wire — admission goes through the
        same dense-order gate as direct arrivals: apply if the epoch is
        next (then drain any parked successors), park otherwise.
        """
        if delay > 0:
            yield Timeout(delay)
        post.relays_in_flight -= 1
        dst_ex = self.executors[post.move.dst]
        if dst_ex.executor_id in self._crashed():
            return
        admitted = dst_ex.backend.ledger.last_epoch(
            delta.operator_id, delta.partition, delta.from_executor
        )
        if delta.epoch > admitted + 1:
            post.buffers.setdefault(delta.from_executor, []).append(
                (delta, ingest_times)
            )
            return
        yield from self._apply_at(dst_ex, post, delta, ingest_times)
        yield from self._drain_buffers(dst_ex, post)

    def _drain_soon(self, dst_ex: Any, post: _PostState) -> Generator[Any, Any, None]:
        """Drain the reorder buffer right after the in-progress merge.

        Spawned from the merge-site intercept when a dense delta is
        about to close the gap parked successors are waiting on; the
        zero-delay timeout sequences the drain after that merge lands.
        """
        yield Timeout(0.0)
        if dst_ex.executor_id in self._crashed():
            return
        yield from self._drain_buffers(dst_ex, post)

    def _apply_at(
        self, dst_ex: Any, post: _PostState, delta: Any, ingest_times: tuple
    ) -> Generator[Any, Any, None]:
        """Admit one forwarded delta at the new leader, identity intact."""
        from repro.core.costs import quantize_working_set

        core = dst_ex.node.core(0)
        if delta.pairs:
            merge_cost = dst_ex.node.cost_model.op(
                dst_ex.costs.merge_pair,
                quantize_working_set(dst_ex._ws_bytes + 4096),
                dst_ex.costs.merge_lines,
            )
            yield from core.execute(merge_cost, float(len(delta.pairs)))
        san = self.sim.sanitize
        if san is not None:
            san.check_delta_owner(
                delta.operator_id, delta.partition, dst_ex.executor_id
            )
            san.note_transfer_apply(
                delta.operator_id,
                (delta.partition, delta.from_executor, delta.epoch),
            )
        fresh = dst_ex.handle.merge_delta(delta)
        if fresh:
            self._admissions += 1
            if self.sim.faults is not None:
                self.sim.faults.note_partition_commit(
                    delta.partition, dst_ex.executor_id
                )
            for window_id, ingested_at in ingest_times:
                current = dst_ex._last_contribution.get(window_id, float("-inf"))
                if ingested_at > current:
                    dst_ex._last_contribution[window_id] = ingested_at
            if dst_ex.trigger is not None:
                dst_ex.trigger.note_slices(
                    key[0] for key, _payload in delta.pairs if isinstance(key, tuple)
                )
            yield from dst_ex._check_triggers(core)
        pending = post.pending.get(delta.from_executor)
        if pending is not None:
            pending.discard(delta.epoch)
            if not pending:
                post.pending.pop(delta.from_executor, None)

    def _drain_buffers(self, dst_ex: Any, post: _PostState) -> Generator[Any, Any, None]:
        """Apply parked direct deltas whose epoch gap has closed."""
        ledger = dst_ex.backend.ledger
        progress = True
        while progress:
            progress = False
            for helper_id, parked in list(post.buffers.items()):
                parked.sort(key=lambda item: item[0].epoch)
                while parked:
                    delta, ingest_times = parked[0]
                    admitted = ledger.last_epoch(
                        delta.operator_id, delta.partition, helper_id
                    )
                    if delta.epoch > admitted + 1:
                        break
                    parked.pop(0)
                    yield from self._apply_at(dst_ex, post, delta, ingest_times)
                    progress = True
                if not parked:
                    post.buffers.pop(helper_id, None)

    def _await_relay_drain(self) -> Generator[Any, Any, None]:
        """Hold the new leaders' triggers until every in-flight epoch landed."""
        stalled_polls = 0
        last_admissions = self._admissions
        while True:
            crashed = self._crashed()
            all_drained = True
            for partition, post in self._post.items():
                for helper_id in list(post.pending):
                    if helper_id in crashed:
                        post.pending.pop(helper_id, None)
                        post.buffers.pop(helper_id, None)
                if post.pending or post.buffers or post.relays_in_flight:
                    all_drained = False
            if all_drained:
                return
            yield Timeout(DRAIN_POLL_S)
            # Direct deltas admit through the executor's own merge path;
            # fold that progress into the pending sets each poll.
            for partition, post in self._post.items():
                dst_ex = self.executors[post.move.dst]
                ledger = dst_ex.backend.ledger
                for helper_id, pending in list(post.pending.items()):
                    admitted = ledger.last_epoch(
                        self.operator_id, partition, helper_id
                    )
                    pending.difference_update(
                        set(range(min(pending), admitted + 1)) if pending else ()
                    )
                    if not pending:
                        post.pending.pop(helper_id, None)
                if post.buffers:
                    yield from self._drain_buffers(dst_ex, post)
            if self._admissions == last_admissions:
                stalled_polls += 1
                if stalled_polls > DRAIN_STALL_POLLS:
                    raise StateError(
                        "migration relay drain stalled: epochs "
                        f"{ {p: post.pending for p, post in self._post.items() if post.pending} } "
                        "were in flight at handoff but never admitted"
                    )
            else:
                stalled_polls = 0
                last_admissions = self._admissions

    def _release_all(self) -> None:
        """Lift trigger suppression / finalize holds and re-check windows."""
        released = sorted(self._suppressed | self._held)
        self._suppressed.clear()
        self._held.clear()
        crashed = self._crashed()
        for executor_id in released:
            if executor_id in crashed:
                continue
            executor = self.executors[executor_id]
            self.sim.process(
                self._final_checks(executor),
                name=f"elastic.release.e{executor_id}",
            )

    def _final_checks(self, executor: Any) -> Generator[Any, Any, None]:
        yield from executor._check_triggers(executor.node.core(0))
        executor._maybe_finalize_soon()

    # -- autoscale --------------------------------------------------------
    def _autoscale_watch(self, finished: Any) -> Generator[Any, Any, bool]:
        controller = AutoscaleController(**self.plan.autoscale_overrides)
        deadline = self.plan.rescale_at  # None: watch until the run ends
        while True:
            index, _value = yield FirstOf(
                [Timeout(controller.interval_s), finished]
            )
            if index == 1:
                self.autoscale_report = controller.report(fired=False)
                return False
            sample = self._load_sample()
            if controller.observe(sample):
                self.autoscale_report = controller.report(fired=True)
                return True
            if deadline is not None and self.sim.now >= deadline:
                self.autoscale_report = controller.report(fired=False)
                return False

    def _load_sample(self) -> dict:
        """Cluster-wide pressure signals for the autoscale controller."""
        credit_stall_s = 0.0
        backlog = 0
        for executor in self.executors:
            for producer in executor._out_channels.values():
                stats = getattr(producer, "stats", None)
                if stats is not None:
                    credit_stall_s += stats.credit_stall_s
            for inbox in executor._ship_inboxes:
                backlog += len(inbox)
        sample = {"credit_stall_s": credit_stall_s, "ship_backlog": backlog}
        # With the overload plane attached, the worst effective queueing
        # delay joins the pressure signals: shedding rides out a short
        # spike, a sustained one scales out.
        overload = getattr(self.sim, "overload", None)
        if overload is not None:
            sample["overload_delay_s"] = overload.overload_delay_s()
        return sample

    # -- helpers ----------------------------------------------------------
    def _mover_crashed(self, move: PartitionMove) -> bool:
        crashed = self._crashed()
        if move.src in crashed or move.dst in crashed:
            if not any(
                e["partition"] == move.partition and e["rolled_back"]
                for e in self.events
            ):
                self.events.append(
                    {
                        "partition": move.partition,
                        "src": move.src,
                        "dst": move.dst,
                        "strategy": self.plan.strategy,
                        "rolled_back": True,
                        "at_s": self.sim.now,
                    }
                )
            return True
        return False

    def _crashed(self) -> set:
        faults = self.sim.faults
        return faults.crashed if faults is not None else set()

    def _transfer_seconds(self, nbytes: int) -> float:
        return transfer_seconds(self.cluster.config, nbytes, self.buffer_bytes)

    def _range_bytes(self, executor: Any, partition: int, range_id: int) -> int:
        store = executor.handle.store_for(partition)
        ranges = self.plan.fluid_ranges
        crdt = executor.handle.crdt
        total = 0
        for key, payload in store.scan():
            group_key = key[1] if isinstance(key, tuple) else key
            if subrange_of(group_key, ranges) == range_id:
                total += 16 + crdt.value_bytes(payload)
        return total

    # -- post-run accounting ----------------------------------------------
    def check_complete(self) -> None:
        """Raise if the run ended in an impossible elastic state."""
        if self.missed_rescale:
            raise ConfigError(
                f"rescale_at {self.plan.rescale_at!r} lands after the "
                "workload horizon: every executor finished before the "
                "rescale instant (pick an earlier rescale_at)"
            )
        leftover = {
            partition: {
                "pending": {h: sorted(v) for h, v in post.pending.items()},
                "buffered": sum(len(v) for v in post.buffers.values()),
            }
            for partition, post in self._post.items()
            if post.pending or post.buffers
        }
        if leftover:
            raise StateError(
                f"migration ended with undrained forwarding state: {leftover}"
            )

    def report(self) -> dict:
        """JSON-able summary for ``RunResult.extra['elastic']``."""
        completed = [e for e in self.events if not e.get("rolled_back")]
        return {
            "strategy": self.plan.strategy,
            "action": self.plan.action,
            "events": list(self.events),
            "moves_completed": len(completed),
            "moves_rolled_back": len(self.events) - len(completed),
            "moved_bytes": sum(e.get("moved_bytes", 0) for e in completed),
            "started_at_s": self._migration_started_at,
            "ended_at_s": self._migration_ended_at,
            "relay_admissions": self._admissions,
            "terms": dict(self._terms),
            "autoscale": self.autoscale_report,
        }
