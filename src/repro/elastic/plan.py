"""The declarative rescale schedule: when, what action, which strategy.

An :class:`ElasticPlan` is plain picklable data, mirroring
:class:`~repro.faults.plan.FaultPlan`: a :class:`Scenario` carries one
across process-pool boundaries and the engine's ``attach_elastic`` hook
validates it before the run starts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.common.errors import ConfigError
from repro.state.partition import stable_hash

# Rescale actions.
ACTION_JOIN = "join"  # spare node(s) come up; partitions move onto them
ACTION_LEAVE = "leave"  # a node is drained; its partitions move away
ACTION_REBALANCE = "rebalance"  # partitions move between existing nodes

ACTIONS = (ACTION_JOIN, ACTION_LEAVE, ACTION_REBALANCE)

#: Default number of key-range sub-moves for the fluid strategy.
DEFAULT_FLUID_RANGES = 8

#: Default spacing between fluid copy rounds, as a multiple of each
#: round's own stall — wide enough that the source drains its backlog
#: between rounds (the Megaphone effect the latency metric measures).
DEFAULT_FLUID_SPREAD = 4.0


def transfer_seconds(cluster_config, nbytes: int, buffer_bytes: int) -> float:
    """Wire + per-chunk NIC time to move ``nbytes`` of migrating state.

    The same RDMA cost surface the channels pay: one propagation + switch
    hop, the bytes at line rate, and per-buffer NIC processing for every
    chunk.  Both the Slash coordinator and the exchange coordinator use
    this, so the two strategies' stalls are directly comparable.
    """
    import math

    nic = cluster_config.node.nic
    chunks = max(1, math.ceil(nbytes / max(1, buffer_bytes)))
    return (
        nic.propagation_latency_s
        + cluster_config.switch_latency_s
        + nic.wire_time(nbytes)
        + chunks * nic.nic_processing_s
    )


def subrange_of(group_key, ranges: int) -> int:
    """Which fluid sub-range a group key belongs to.

    Uses high SplitMix64 bits, independent of the low bits that pick the
    key's partition, so every partition's keys spread evenly over the
    sub-ranges.
    """
    return (stable_hash(group_key) >> 17) % ranges


@dataclass(frozen=True)
class PartitionMove:
    """One planned ownership transfer: ``partition`` from ``src`` to ``dst``."""

    partition: int
    src: int
    dst: int


@dataclass
class ElasticPlan:
    """One rescale event for a run (plain data; see module docstring).

    ``rescale_at`` is the simulated instant migration starts.  For a
    ``join``, ``add_nodes`` spare executors (no input flows) are
    provisioned at run start and the planner moves partitions onto
    them; for a ``leave``, ``drain_node`` gives up every partition it
    leads.  ``autoscale`` replaces the fixed schedule with the reactive
    controller (``rescale_at`` then bounds how long it may watch).
    """

    rescale_at: Optional[float] = None
    strategy: str = "fluid"
    action: str = ACTION_JOIN
    add_nodes: int = 1
    drain_node: Optional[int] = None
    fluid_ranges: int = DEFAULT_FLUID_RANGES
    fluid_spread: float = DEFAULT_FLUID_SPREAD
    #: Reactive mode: trigger on sustained credit starvation / queue
    #: growth instead of at a fixed instant (see autoscale.py).
    autoscale: bool = False
    autoscale_overrides: dict = field(default_factory=dict)

    def validate(self) -> None:
        """Static validation (strategy names are the engine's job)."""
        if self.action not in ACTIONS:
            raise ConfigError(
                f"unknown rescale action {self.action!r}; known: {list(ACTIONS)}"
            )
        if not self.autoscale:
            if self.rescale_at is None:
                raise ConfigError(
                    "ElasticPlan needs rescale_at (or autoscale=True)"
                )
            if self.rescale_at < 0:
                raise ConfigError(
                    f"rescale_at must be non-negative, got {self.rescale_at}"
                )
        if self.action == ACTION_JOIN and self.add_nodes < 1:
            raise ConfigError(
                f"join needs add_nodes >= 1, got {self.add_nodes}"
            )
        if self.action == ACTION_LEAVE and self.drain_node is None:
            raise ConfigError("leave needs drain_node")
        if self.fluid_ranges < 1:
            raise ConfigError(
                f"fluid_ranges must be >= 1, got {self.fluid_ranges}"
            )
        if self.fluid_spread < 0:
            raise ConfigError(
                f"fluid_spread must be >= 0, got {self.fluid_spread}"
            )

    @property
    def spare_nodes(self) -> int:
        """Extra flow-less executors the engine must provision at start."""
        return self.add_nodes if self.action == ACTION_JOIN else 0

    def params(self) -> dict:
        """Picklable dict form (Scenario.params embeds this)."""
        return {
            "rescale_at": self.rescale_at,
            "strategy": self.strategy,
            "action": self.action,
            "add_nodes": self.add_nodes,
            "drain_node": self.drain_node,
            "fluid_ranges": self.fluid_ranges,
            "fluid_spread": self.fluid_spread,
            "autoscale": self.autoscale,
            "autoscale_overrides": dict(self.autoscale_overrides),
        }
