"""Reactive rescaling: the pure autoscale decision controller.

The coordinator samples cluster pressure at a fixed interval and feeds
each sample to an :class:`AutoscaleController`; the controller decides
when sustained backpressure justifies a rescale.  It is deliberately
pure — samples in, boolean out, no simulator access — so its hysteresis
logic is unit-testable without running a workload.

Two signals, matching the paper's flow-control story:

``credit_stall_s``
    Cumulative seconds producers spent blocked on RDMA credits.  A
    *growing* stall total means consumers cannot drain what producers
    offer — the controller reacts to the per-interval delta, not the
    absolute value.

``ship_backlog``
    Epoch deltas parked in ship inboxes waiting for a merge slot.
    Sustained growth means state shipping has fallen behind ingestion.

``overload_delay_s`` (optional)
    The overload plane's worst effective queueing delay across
    executors (pacing deficit plus decayed credit-stall pressure).
    Inactive unless ``overload_delay_s`` is given a threshold — existing
    two-signal deployments are unaffected — and lets load shedding and
    scale-out compose: shedding rides out a short spike, a sustained
    delay breach scales out.

Any signal breaching its threshold for ``sustain_samples``
*consecutive* intervals fires the rescale; one calm sample resets the
streak, so a transient spike (a single skewed epoch) never triggers a
migration.
"""

from __future__ import annotations

from typing import Optional

#: Seconds of new credit stall per sample interval that count as pressure.
DEFAULT_STALL_DELTA_S = 1e-3

#: Ship-inbox depth (cluster-wide) that counts as pressure.
DEFAULT_BACKLOG_DEPTH = 8

#: Consecutive pressured samples before the controller fires.
DEFAULT_SUSTAIN_SAMPLES = 3

#: Simulated seconds between pressure samples.
DEFAULT_INTERVAL_S = 0.05


class AutoscaleController:
    """Fires a rescale after sustained credit starvation or queue growth."""

    def __init__(
        self,
        interval_s: float = DEFAULT_INTERVAL_S,
        stall_delta_s: float = DEFAULT_STALL_DELTA_S,
        backlog_depth: int = DEFAULT_BACKLOG_DEPTH,
        sustain_samples: int = DEFAULT_SUSTAIN_SAMPLES,
        overload_delay_s: Optional[float] = None,
    ):
        self.interval_s = interval_s
        self.stall_delta_s = stall_delta_s
        self.backlog_depth = backlog_depth
        self.sustain_samples = sustain_samples
        #: Effective-queueing-delay threshold (seconds); ``None`` keeps
        #: the overload signal out of the pressure decision.
        self.overload_delay_s = overload_delay_s
        self.samples = 0
        self.streak = 0
        self.fired = False
        self._last_stall_s = 0.0
        self._history: list[dict] = []

    def observe(self, sample: dict) -> bool:
        """Feed one pressure sample; True when the rescale should fire.

        ``sample`` holds cumulative ``credit_stall_s`` and instantaneous
        ``ship_backlog``.  Once fired, further samples keep returning
        True (the decision is latched; the coordinator acts once).
        """
        if self.fired:
            return True
        self.samples += 1
        stall_s = float(sample.get("credit_stall_s", 0.0))
        backlog = int(sample.get("ship_backlog", 0))
        stall_delta = stall_s - self._last_stall_s
        self._last_stall_s = stall_s
        overload_delay = float(sample.get("overload_delay_s", 0.0))
        pressured = (
            stall_delta >= self.stall_delta_s
            or backlog >= self.backlog_depth
            or (
                self.overload_delay_s is not None
                and overload_delay >= self.overload_delay_s
            )
        )
        self.streak = self.streak + 1 if pressured else 0
        self._history.append(
            {
                "stall_delta_s": stall_delta,
                "ship_backlog": backlog,
                "overload_delay_s": overload_delay,
                "pressured": pressured,
                "streak": self.streak,
            }
        )
        if self.streak >= self.sustain_samples:
            self.fired = True
        return self.fired

    def report(self, fired: bool) -> dict:
        """JSON-able decision trail for the run result."""
        pressured = sum(1 for entry in self._history if entry["pressured"])
        return {
            "fired": fired,
            "samples": self.samples,
            "pressured_samples": pressured,
            "final_streak": self.streak,
            "interval_s": self.interval_s,
            "thresholds": {
                "stall_delta_s": self.stall_delta_s,
                "backlog_depth": self.backlog_depth,
                "sustain_samples": self.sustain_samples,
                "overload_delay_s": self.overload_delay_s,
            },
        }
