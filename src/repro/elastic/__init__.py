"""Elastic dataflow: live SSB partition migration and node join/leave.

The paper's shared-state design makes state *location* a runtime
decision: partition leadership lives in the
:class:`~repro.state.partition.PartitionDirectory`, helpers ship epoch
deltas to whoever the directory names, and the epoch ledger keeps
admission exactly-once per ``(operator, partition, helper)``.  This
package exploits that to re-point ownership while a query runs:

* :class:`~repro.elastic.plan.ElasticPlan` — the declarative rescale
  schedule (when, which action, which strategy, how many ranges);
* :class:`~repro.elastic.planner.MigrationPlanner` — decides *which*
  partitions move *where* for a join/leave/rebalance;
* :class:`~repro.elastic.migration.SlashElasticCoordinator` — executes
  the moves live against the Slash executors (attached at
  ``sim.elastic``), with all-at-once and Megaphone-style fluid
  strategies, in-flight delta forwarding, and fenced term bumps;
* :class:`~repro.elastic.exchange.ElasticExchangeCoordinator` — the
  UpPar analogue: a route-table flip with per-channel reroute markers;
* :class:`~repro.elastic.autoscale.AutoscaleController` — reactive
  rescaling on sustained credit starvation / queue growth.
"""

from repro.elastic.plan import ElasticPlan, PartitionMove, subrange_of
from repro.elastic.planner import MigrationPlanner

__all__ = [
    "ElasticPlan",
    "MigrationPlanner",
    "PartitionMove",
    "subrange_of",
]
