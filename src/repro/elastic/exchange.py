"""Live rescaling for the partitioned (UpPar) exchange architecture.

The exchange engine has no partition directory to re-point: every
partitioner hashes each record straight to the consumer that owns its
key.  Elasticity therefore needs a level of indirection — a shared
**route table** of ``base_consumers x fluid_ranges`` buckets
(``bucket = hash(key) % buckets``, ``consumer = route[bucket]``),
initialised so routing is bit-identical to the static hash:
``route[b] = b % base_consumers`` and ``base_consumers`` divides the
bucket count, so ``(h % buckets) % base_consumers == h % base_consumers``.
The table only exists when an :class:`ElasticPlan` is attached; static
runs keep the original modulo routing untouched.

A rescale round then works like Megaphone's sub-moves, adapted to a
record-at-a-time exchange:

1. the coordinator flips the moved buckets' route entries atomically —
   records partitioned afterwards flow to the new owner;
2. every live partitioner flushes its fan-out buffers and emits a
   :class:`RerouteMarker` on all channels, so per-channel FIFO puts the
   marker after every old-routed record;
3. the involved consumers' triggers are gated from the flip on: once a
   bucket's state is split between the old owner (pre-flip records) and
   the new owner (post-flip records), neither may fire a window until
   they are re-united;
4. when old and new owners have sealed the round (marker or channel
   EOS on every input), the old owner's bucket state transfers (a
   line-rate stall), CRDT-merges into the new owner, the moved windows
   are forced back to pending there, and the gates lift.

The **all-at-once** strategy runs one round moving every bucket at
once (the stop-the-world rescale); **fluid** spreads the buckets over
``fluid_ranges`` rounds with catch-up gaps in between, so each stall is
a fraction of the bulk one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Generator, Optional

import numpy as np

from repro.common.errors import ConfigError, StateError
from repro.core.windows import SlidingWindow
from repro.elastic.plan import (
    ACTION_JOIN,
    ACTION_LEAVE,
    ACTION_REBALANCE,
    ElasticPlan,
    transfer_seconds,
)
from repro.simnet.kernel import Timeout
from repro.simnet.trace import trace
from repro.state.partition import stable_hash_array

#: Simulated seconds between seal-condition polls during a round.
SEAL_POLL_S = 1e-4

#: Polls without seal before a round is declared stalled.
SEAL_STALL_POLLS = 100_000

#: Sanitizer scope tag for exchange bucket ownership.
SCOPE = "exchange"


@dataclass(frozen=True)
class RerouteMarker:
    """In-band cut marker: all pre-flip records precede it per channel."""

    round_id: int
    from_gid: int


class ElasticExchangeCoordinator:
    """Executes route-table rescale rounds against a partitioned run."""

    def __init__(self, ctx: Any, plan: ElasticPlan, base_nodes: int):
        if plan.autoscale:
            raise ConfigError(
                "autoscale-driven rescaling is not supported on exchange "
                "engines (fixed rescale_at schedules only)"
            )
        self.ctx = ctx
        self.plan = plan
        self.base_nodes = base_nodes
        self.buckets = 0
        #: bucket -> owning consumer gid; partitioners fancy-index this
        #: on the hot path, so it is a plain int64 array.
        self.route: Optional[np.ndarray] = None
        self.base_consumers = 0
        self.missed_rescale = False
        self.events: list[dict] = []
        self._suppressed: set[int] = set()
        self._markers: dict[tuple[int, int], set[int]] = {}
        self._open_rounds = 0
        self._started_at: Optional[float] = None
        self._ended_at: Optional[float] = None

    # -- wiring ----------------------------------------------------------
    def install(self) -> None:
        """Build the route table once the generation is wired."""
        gen = self.ctx.gen
        if gen.consumer_count <= 0:
            raise StateError("exchange rescale needs at least one consumer")
        self.base_consumers = self.base_nodes * self.ctx.consumers_per_node
        self.buckets = self.base_consumers * max(1, self.plan.fluid_ranges)
        # b % buckets % base == b % base (base divides buckets), so the
        # initial table reproduces the static hash routing exactly and
        # spare-node consumers own nothing until a join moves buckets.
        self.route = (
            np.arange(self.buckets, dtype=np.int64) % self.base_consumers
        )
        san = self.ctx.sim.sanitize
        if san is not None:
            for bucket in range(self.buckets):
                san.note_migration_owner(SCOPE, bucket, int(self.route[bucket]))

    def arm(self) -> None:
        self.ctx.sim.process(self._body(), name="elastic.exchange")

    # -- hooks consulted by the workers ----------------------------------
    def triggers_suppressed(self, gid: int) -> bool:
        """Consumer ``gid`` holds a split bucket; window firing is gated."""
        return gid in self._suppressed

    def holds_finish(self, gid: int) -> bool:
        """Consumer ``gid`` must not run its final trigger sweep yet."""
        return gid in self._suppressed

    def marker_for(self, round_id: int, from_gid: int) -> RerouteMarker:
        """Marker payload a partitioner sends after its reroute flush."""
        return RerouteMarker(round_id, from_gid)

    def on_consumer_payload(self, consumer: Any, index: int, payload: Any) -> bool:
        """True when ``payload`` is a reroute marker (consumed here)."""
        if not isinstance(payload, RerouteMarker):
            return False
        self._markers.setdefault(
            (consumer.gid, payload.round_id), set()
        ).add(index)
        return True

    # -- the coordinator body --------------------------------------------
    def _body(self) -> Generator[Any, Any, None]:
        yield Timeout(self.plan.rescale_at)
        gen = self.ctx.gen
        if all(consumer.done for consumer in gen.consumers):
            self.missed_rescale = True
            return
        self._started_at = self.ctx.sim.now
        rounds = self._plan_rounds()
        trace(
            self.ctx.sim, "elastic",
            f"exchange rescale ({self.plan.strategy}): "
            f"{sum(len(r) for r in rounds)} bucket move(s), "
            f"{len(rounds)} round(s)",
        )
        for round_id, moves in enumerate(rounds):
            if not moves:
                continue
            stall = yield from self._run_round(round_id, moves)
            gap = stall * self.plan.fluid_spread
            if self.plan.strategy == "fluid" and gap > 0:
                yield Timeout(gap)
        self._ended_at = self.ctx.sim.now

    # -- planning ---------------------------------------------------------
    def _consumer_gids_on(self, node_indexes: set[int]) -> list[int]:
        gen = self.ctx.gen
        return [
            gid
            for gid in range(gen.consumer_count)
            if gen.consumer_node(gid) in node_indexes
        ]

    def _plan_moves(self) -> list[tuple[int, int, int]]:
        """(bucket, src_gid, dst_gid) moves realising the plan's action."""
        gen = self.ctx.gen
        owned: dict[int, list[int]] = {
            gid: [] for gid in range(gen.consumer_count)
        }
        for bucket in range(self.buckets):
            owned[int(self.route[bucket])].append(bucket)
        if self.plan.action == ACTION_JOIN:
            spare_nodes = set(range(self.base_nodes, self.ctx.nodes))
            joining = set(self._consumer_gids_on(spare_nodes))
            if not joining:
                raise ConfigError("join planned but no spare consumers exist")
            fair = max(1, self.buckets // gen.consumer_count)
            moves = []
            for dst in sorted(joining):
                for _ in range(fair):
                    donor = max(
                        (g for g in owned if g not in joining and owned[g]),
                        key=lambda g: (len(owned[g]), -g),
                        default=None,
                    )
                    if donor is None:
                        break
                    bucket = owned[donor].pop()
                    owned[dst].append(bucket)
                    moves.append((bucket, donor, dst))
            return moves
        if self.plan.action == ACTION_LEAVE:
            if not 0 <= (self.plan.drain_node or 0) < self.ctx.nodes:
                raise ConfigError(
                    f"drain_node {self.plan.drain_node!r} outside the "
                    f"{self.ctx.nodes}-node cluster"
                )
            leaving = set(self._consumer_gids_on({self.plan.drain_node}))
            survivors = sorted(set(owned) - leaving)
            if not survivors:
                raise ConfigError(
                    f"node {self.plan.drain_node} cannot leave: its "
                    "consumers are the only ones"
                )
            moves = []
            index = 0
            for src in sorted(leaving):
                for bucket in sorted(owned[src]):
                    moves.append(
                        (bucket, src, survivors[index % len(survivors)])
                    )
                    index += 1
            return moves
        if self.plan.action == ACTION_REBALANCE:
            fair = -(-self.buckets // gen.consumer_count)
            surplus = [
                (gid, bucket)
                for gid, buckets in sorted(owned.items())
                for bucket in buckets[fair:]
            ]
            deficit = [
                gid
                for gid, buckets in sorted(owned.items())
                for _ in range(fair - len(buckets))
                if len(buckets) < fair
            ]
            return [
                (bucket, src, dst)
                for (src, bucket), dst in zip(surplus, deficit)
            ]
        raise ConfigError(f"unknown rescale action {self.plan.action!r}")

    def _plan_rounds(self) -> list[list[tuple[int, int, int]]]:
        moves = self._plan_moves()
        if self.plan.strategy == "all-at-once" or len(moves) <= 1:
            return [moves]
        ranges = max(1, self.plan.fluid_ranges)
        per_round = -(-len(moves) // ranges)
        return [
            moves[start:start + per_round]
            for start in range(0, len(moves), per_round)
        ]

    # -- one rescale round -------------------------------------------------
    def _run_round(
        self, round_id: int, moves: list[tuple[int, int, int]]
    ) -> Generator[Any, Any, float]:
        ctx = self.ctx
        gen = ctx.gen
        san = ctx.sim.sanitize
        srcs = {src for _b, src, _d in moves}
        dsts = {dst for _b, _s, dst in moves}
        watched = sorted(srcs | dsts)
        self._open_rounds += 1
        self._suppressed.update(watched)
        # 1. Atomic route flip: records partitioned from now on flow to
        # the new owners.  The flip and the flush requests happen in one
        # coordinator step (no yields), so no partitioner routes between.
        for bucket, src, dst in moves:
            if int(self.route[bucket]) != src:
                raise StateError(
                    f"bucket {bucket} owned by {int(self.route[bucket])}, "
                    f"not the planned source {src}"
                )
            if san is not None:
                san.note_range_copy(SCOPE, bucket, 0, src, dst)
            self.route[bucket] = dst
        for partitioner in gen.partitioners:
            if not partitioner.finished_body and not partitioner.halted:
                partitioner.reroute_request = round_id
        # 2. Seal: every involved consumer has seen the round's marker
        # (or end-of-stream) on every input channel — all old-routed
        # records for the moved buckets have merged at the old owners.
        stalled = 0
        while True:
            pending = [
                gid
                for gid in watched
                if not self._sealed(gen.consumers[gid], round_id)
            ]
            if not pending:
                break
            yield Timeout(SEAL_POLL_S)
            stalled += 1
            if stalled > SEAL_STALL_POLLS:
                raise StateError(
                    f"rescale round {round_id} never sealed: consumers "
                    f"{pending} still miss reroute markers"
                )
        # 3. Extract the moved buckets' state from the old owners (one
        # coordinator step: the gates are up, nobody else touches it).
        crdt = ctx.plan.crdt
        entry_bytes = 16 + crdt.payload_bytes
        moved_buckets: dict[int, set[int]] = {}
        for bucket, src, _dst in moves:
            moved_buckets.setdefault(src, set()).add(bucket)
        dst_of = {bucket: dst for bucket, _src, dst in moves}
        extracted: list[tuple[int, Any, Any]] = []  # (dst, key, payload)
        for src, buckets in moved_buckets.items():
            consumer = gen.consumers[src]
            taken = 0
            for key in list(consumer.state):
                bucket = self._bucket_of(key)
                if bucket not in buckets:
                    continue
                payload = consumer.state.pop(key)
                extracted.append((dst_of[bucket], key, payload))
                taken += 1
            consumer.state_bytes = max(
                0.0, consumer.state_bytes - taken * entry_bytes
            )
        moved_bytes = len(extracted) * entry_bytes
        # 4. The transfer itself: the moved state crosses the wire while
        # the involved consumers stay gated — this is the latency window.
        stall = transfer_seconds(
            ctx.cluster.config, moved_bytes, ctx.engine.buffer_bytes
        )
        yield Timeout(stall)
        # 5. Re-unite at the new owners, atomically, and lift the gates.
        now = ctx.sim.now
        touched_windows: dict[int, set[int]] = {}
        for dst, key, payload in extracted:
            consumer = gen.consumers[dst]
            if key in consumer.state:
                consumer.state[key] = crdt.merge(consumer.state[key], payload)
            else:
                consumer.state[key] = payload
            consumer.state_bytes += entry_bytes
            if isinstance(key, tuple):
                touched_windows.setdefault(dst, set()).update(
                    self._windows_of(int(key[0]))
                )
        for dst, window_ids in touched_windows.items():
            consumer = gen.consumers[dst]
            if consumer.trigger is not None:
                consumer.trigger.restore_pending(sorted(window_ids))
            for window_id in window_ids:
                current = consumer._last_contribution.get(
                    window_id, float("-inf")
                )
                if now > current:
                    consumer._last_contribution[window_id] = now
        if san is not None:
            for bucket, src, dst in moves:
                san.note_ownership_handoff(
                    SCOPE, bucket, src, dst, ranges_copied=1, ranges_total=1
                )
        self._suppressed.difference_update(watched)
        self._open_rounds -= 1
        # Re-fire even already-done consumers: windows restored after a
        # consumer drained still fire here and are collected post-run.
        for gid in watched:
            consumer = gen.consumers[gid]
            if not consumer.halted:
                ctx.sim.process(
                    consumer._check_triggers(), name=f"elastic.refire.c{gid}"
                )
        self.events.append(
            {
                "round": round_id,
                "buckets": len(moves),
                "srcs": sorted(srcs),
                "dsts": sorted(dsts),
                "strategy": self.plan.strategy,
                "moved_keys": len(extracted),
                "moved_bytes": moved_bytes,
                "stall_s": stall,
                "at_s": ctx.sim.now,
            }
        )
        trace(
            ctx.sim, "elastic",
            f"round {round_id} moved {len(moves)} bucket(s), "
            f"{len(extracted)} key(s), {moved_bytes} B",
        )
        return stall

    def _sealed(self, consumer: Any, round_id: int) -> bool:
        markered = self._markers.get((consumer.gid, round_id), set())
        return all(
            index in markered or consumer.channel_wm[index] == float("inf")
            for index in range(len(consumer.channel_wm))
        )

    def _bucket_of(self, key: Any) -> int:
        group_key = key[1] if isinstance(key, tuple) else key
        return int(
            (
                stable_hash_array(np.asarray([int(group_key)], dtype=np.int64))
                % np.uint64(self.buckets)
            )[0]
        )

    def _windows_of(self, slice_id: int) -> list[int]:
        window = self.ctx.plan.window
        if isinstance(window, SlidingWindow):
            return list(window.windows_of_slice(slice_id))
        return [slice_id]

    # -- post-run accounting ----------------------------------------------
    def check_complete(self) -> None:
        if self.missed_rescale:
            raise ConfigError(
                f"rescale_at {self.plan.rescale_at!r} lands after the "
                "workload horizon: every consumer finished before the "
                "rescale instant (pick an earlier rescale_at)"
            )
        if self._open_rounds:
            raise StateError(
                f"run ended with {self._open_rounds} rescale round(s) "
                "still open (consumers gated at drain)"
            )

    def report(self) -> dict:
        return {
            "strategy": self.plan.strategy,
            "action": self.plan.action,
            "events": list(self.events),
            "rounds": len(self.events),
            "moved_bytes": sum(e["moved_bytes"] for e in self.events),
            "started_at_s": self._started_at,
            "ended_at_s": self._ended_at,
            "autoscale": None,
        }
