"""Greedy minimization of a failing scenario.

Given a scenario that fails (an invariant violation or an oracle
mismatch) and a predicate that re-checks a candidate, :func:`shrink`
walks a fixed candidate order — halve the record count, drop the fault
plan, drop the overload plane, remove nodes, remove threads, halve the
batch size, halve the key space — keeping any candidate that still
fails and restarting from the
top, until no candidate fails or the attempt budget runs out.  Each
accepted step strictly reduces the scenario, so the loop terminates.

The result is the smallest repro the greedy walk can find; the harness
prints its :meth:`~repro.sanitizer.scenarios.Scenario.repro_command`.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable, Iterator

from repro.faults.plan import MULTI_CRASH_PRESETS
from repro.sanitizer.scenarios import (
    Scenario,
    scenario_without_fault,
    scenario_without_overload,
)

#: Floors below which shrinking a dimension stops.  Records must keep at
#: least one batch per worker flowing; two nodes and two threads are the
#: minimum at which the distributed protocol (and UpPar) still runs.
MIN_RECORDS = 20
MIN_NODES = 2
MIN_THREADS = 2
MIN_BATCH = 16
MIN_KEYSPACE = 4


def _min_nodes(scenario: Scenario) -> int:
    """The node floor for this scenario's shape.

    Multi-crash fault presets kill two executors and need a third to
    survive; shrinking below that would make the preset itself invalid
    (an artificial failure the shrinker would then chase).
    """
    if scenario.fault in MULTI_CRASH_PRESETS:
        return max(MIN_NODES, 3)
    return MIN_NODES


def _candidates(scenario: Scenario) -> Iterator[Scenario]:
    """Strictly-smaller variants, most-impactful reduction first."""
    if scenario.records // 2 >= MIN_RECORDS:
        yield replace(scenario, records=scenario.records // 2)
    if scenario.fault is not None:
        yield scenario_without_fault(scenario)
    if scenario.overload is not None:
        yield scenario_without_overload(scenario)
    if scenario.nodes - 1 >= _min_nodes(scenario):
        yield replace(scenario, nodes=scenario.nodes - 1)
    if scenario.threads - 1 >= MIN_THREADS:
        yield replace(scenario, threads=scenario.threads - 1)
    if scenario.batch // 2 >= MIN_BATCH:
        yield replace(scenario, batch=scenario.batch // 2)
    if scenario.keyspace // 2 >= MIN_KEYSPACE:
        yield replace(scenario, keyspace=scenario.keyspace // 2)


def shrink(
    scenario: Scenario,
    still_fails: Callable[[Scenario], bool],
    max_attempts: int = 48,
) -> tuple[Scenario, int]:
    """Minimize ``scenario`` under the ``still_fails`` predicate.

    Returns ``(smallest_failing_scenario, attempts_used)``.  The input
    scenario must already fail; it is returned unchanged if no smaller
    candidate reproduces the failure.
    """
    current = scenario
    attempts = 0
    progress = True
    while progress and attempts < max_attempts:
        progress = False
        for candidate in _candidates(current):
            if attempts >= max_attempts:
                break
            attempts += 1
            if still_fails(candidate):
                current = candidate
                progress = True
                break
    return current, attempts
