"""Runtime invariant checkers and the differential oracle harness.

The sanitizer turns the protocol contracts the paper states in prose —
credit conservation (Sec. 6.2), buffer lifecycle under footer polling
(Sec. 6.3), vector-clock monotonicity and watermark-safe triggering
(property P1, Sec. 5.1), and exactly-once epoch admission (Sec. 7.2.2)
— into machine-checked assertions that run *inside* a simulation.

Three layers:

* :mod:`repro.sanitizer.invariants` — the :class:`Sanitizer` attached at
  ``sim.sanitize`` plus the structured :class:`InvariantViolation` it
  raises (off by default; every hook is a single attribute check when
  disabled);
* :mod:`repro.sanitizer.scenarios` — seed-reproducible random scenarios
  (workload x cluster size x epoch length x optional fault plan) run
  through Slash with sanitizers on and differentially compared against
  the sequential reference oracle and the partitioned baseline;
* :mod:`repro.sanitizer.shrinker` — greedy minimization of a failing
  scenario down to the smallest input that still fails, so the repro
  command the harness prints is as small as the bug allows.
"""

from repro.sanitizer.invariants import InvariantViolation, Sanitizer
from repro.sanitizer.scenarios import Scenario, generate_scenario, run_scenario
from repro.sanitizer.shrinker import shrink

__all__ = [
    "InvariantViolation",
    "Sanitizer",
    "Scenario",
    "generate_scenario",
    "run_scenario",
    "shrink",
]
