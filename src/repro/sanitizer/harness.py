"""The ``python -m repro sanitize`` driver.

Generates ``--scenarios`` seed-reproducible scenarios, runs each through
:func:`~repro.sanitizer.scenarios.run_scenario` (sanitized Slash vs the
sequential reference oracle vs the partitioned baseline), and on failure
greedily shrinks the scenario and prints a copy-pasteable repro command.
``--replay`` re-runs one exact scenario from its JSON description — the
format ``repro_command`` emits — instead of generating fresh ones.
"""

from __future__ import annotations

from dataclasses import asdict
from typing import Callable, Optional

from repro.metrics.reporting import Report, TextTable
from repro.sanitizer.scenarios import (
    Scenario,
    ScenarioOutcome,
    generate_scenario,
    run_scenario,
)
from repro.sanitizer.shrinker import shrink


def run_sanitize(
    scenarios: int = 25,
    seed: int = 1,
    replay: Optional[str] = None,
    shrink_failures: bool = True,
    progress: Optional[Callable[[str], None]] = print,
    runner: Callable[[Scenario], ScenarioOutcome] = run_scenario,
) -> Report:
    """Run the differential oracle harness; returns a renderable report.

    The report's ``rows`` carry one machine-readable dict per scenario;
    a ``failures`` note count of zero means the gate passed (the CLI
    exits non-zero otherwise).  ``runner`` is injectable for tests.
    """
    emit = progress if progress is not None else (lambda _line: None)
    if replay is not None:
        plan = [Scenario.from_json(replay)]
        title = "sanitize: replay"
    else:
        plan = [generate_scenario(seed, index) for index in range(scenarios)]
        title = f"sanitize: {scenarios} scenarios (seed {seed})"

    report = Report(title)
    table = TextTable(title, ["#", "scenario", "checks", "verdict"])
    failed: list[ScenarioOutcome] = []
    for position, scenario in enumerate(plan):
        outcome = runner(scenario)
        verdict = "PASS" if outcome.ok else "FAIL"
        emit(f"[{position + 1}/{len(plan)}] {scenario.label()} ... {verdict}")
        total_checks = sum(outcome.checks.values())
        table.add_row(position + 1, scenario.label(), total_checks, verdict)
        report.rows.append(
            {
                "scenario": asdict(scenario),
                "ok": outcome.ok,
                "failures": list(outcome.failures),
                "checks": dict(outcome.checks),
                "horizon_s": outcome.horizon_s,
            }
        )
        if not outcome.ok:
            failed.append(outcome)
            for line in outcome.failures:
                emit(f"    {line}")
    report.tables.append(table)

    if not failed:
        report.notes.append("0 failures: zero invariant violations, zero oracle mismatches")
        return report

    report.notes.append(f"{len(failed)} of {len(plan)} scenarios FAILED")
    for outcome in failed:
        scenario = outcome.scenario
        if shrink_failures:
            emit(f"shrinking failing scenario: {scenario.label()}")

            def still_fails(candidate: Scenario) -> bool:
                return not runner(candidate).ok

            smallest, attempts = shrink(scenario, still_fails)
            emit(
                f"  shrunk {scenario.records} -> {smallest.records} records "
                f"({scenario.nodes}x{scenario.threads} -> "
                f"{smallest.nodes}x{smallest.threads}) in {attempts} attempts"
            )
        else:
            smallest = scenario
        report.notes.append(
            "repro (minimized): " + smallest.repro_command()
            if shrink_failures
            else "repro: " + smallest.repro_command()
        )
        emit("  " + smallest.repro_command())
    return report


def report_failed(report: Report) -> bool:
    """Whether a :func:`run_sanitize` report recorded any failure."""
    return any(not row["ok"] for row in report.rows)
