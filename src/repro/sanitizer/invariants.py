"""Pluggable runtime invariant checkers (``sim.sanitize``).

A :class:`Sanitizer` keeps *shadow* accounts — independent of the data
structures it audits — and raises a structured
:class:`InvariantViolation` the instant an invariant breaks, with the
simulated time and the tail of the trace timeline attached.  Because
the shadow state is maintained from hook calls at the call sites (not
inside the audited methods), a bug *inside* e.g.
:meth:`~repro.state.epoch.EpochLedger.admit` is still caught: the
sanitizer re-derives what the correct answer would have been.

Invariant catalog (see ``docs/testing.md``):

``event-time``
    Simulated time never moves backwards across kernel events (guards
    the heap + ready-deque merge of the fast run loop).
``credit-conservation``
    Per channel: consumers return no more credits than buffers sent,
    producers apply no more credits than consumers returned, and at
    most ``credits`` buffers are ever outstanding.  Channel resets
    write off in-flight buffers instead of resetting the cumulative
    counters, so conservation holds *across* resets.
``buffer-lifecycle``
    A producer never posts a WRITE into a ring slot whose footer is
    still set (reuse before the consumer released the buffer).
``clock-monotonic`` / ``watermark-monotonic``
    Vector-clock entries and local watermarks never regress.
``ledger-exactly-once``
    Each ``(operator, partition, helper, epoch)`` delta is admitted at
    most once, admitted epochs are dense per helper, and a delta that
    extends the dense sequence is never rejected as a duplicate.
``window-fire``
    A window fires only when the clock frontier has passed its end
    (property P1: no executor can still contribute to it).
``snapshot-consistency``
    A completed Chandy–Lamport round forms a consistent cut: no
    post-marker record leaks into any capture (receiver frontiers never
    pass the sender's marker boundary; aligned rounds report zero
    post-marker merges), and every pre-marker record still in flight at
    capture time is accounted for as channel state — the recorded
    epochs per ``(operator, partition)`` stream fill ``(frontier,
    boundary]`` exactly, with no gaps and nothing beyond the marker.
``backpressure-conservation``
    Per ingress source, every admission splits its batch exactly:
    ``offered = admitted + shed`` both per batch and cumulatively
    (re-derived from shadow counters, so the coordinator cannot lose a
    record in its own books), the offered count never regresses, a
    record is only ever shed while a shedding policy is active, and the
    backlog estimate never goes negative.
``no-silent-drop``
    End of run, per executor: every offered record is accounted for
    (``offered = admitted + shed``) and every admitted record was
    actually processed by the worker pipeline — nothing vanished
    between admission and processing without being logged as shed.
"""

from __future__ import annotations

from collections import Counter
from typing import Any, Optional

from repro.common.errors import ReproError


class InvariantViolation(ReproError):
    """A runtime invariant check failed.

    Carries enough structure for the harness to report and shrink:
    which invariant, at what simulated time, with what context, and the
    tail of the trace timeline if a tracer was attached.
    """

    def __init__(
        self,
        invariant: str,
        message: str,
        sim_time: float = 0.0,
        context: Optional[dict] = None,
        trace_tail: str = "",
    ):
        self.invariant = invariant
        self.message = message
        self.sim_time = sim_time
        self.context = dict(context or {})
        self.trace_tail = trace_tail
        super().__init__(self.render())

    def render(self) -> str:
        parts = [f"[{self.invariant}] {self.message} (sim t={self.sim_time:.9g}s)"]
        if self.context:
            parts.append(
                "  context: "
                + " ".join(f"{k}={v}" for k, v in sorted(self.context.items()))
            )
        if self.trace_tail:
            parts.append(self.trace_tail)
        return "\n".join(parts)


class _ChannelAccount:
    """Cumulative shadow counters for one channel's credit protocol.

    Counters never reset: a channel reset *writes off* the buffers that
    were in flight when the ring was torn down (``forgiven``), so a
    credit that was already on the wire at reset time still satisfies
    ``applied <= returned`` when it lands afterwards.
    """

    __slots__ = ("name", "credits", "sent", "returned", "applied", "forgiven", "resets")

    def __init__(self, name: str, credits: int):
        self.name = name
        self.credits = credits
        self.sent = 0       # buffers posted by the producer (incl. EOS)
        self.returned = 0   # credit messages posted by the consumer
        self.applied = 0    # credits folded into the producer's balance
        self.forgiven = 0   # in-flight buffers written off by resets
        self.resets = 0


class Sanitizer:
    """The invariant-checker bundle attached at ``sim.sanitize``.

    Construction does not change any behaviour by itself; components
    consult ``sim.sanitize`` at their hook points and call the ``note_``
    / ``check_`` methods below.  Every successful check increments
    :attr:`checks` so a run can prove the hooks actually fired.
    """

    def __init__(self, sim: Any, trace_limit: int = 25):
        self.sim = sim
        self.trace_limit = trace_limit
        #: invariant name -> number of checks performed (not violations).
        self.checks: Counter = Counter()
        self._channels: dict[int, _ChannelAccount] = {}
        self._clock_entries: dict[tuple[int, int], float] = {}
        self._clock_names: dict[int, str] = {}
        self._watermarks: dict[int, float] = {}
        self._admitted: dict[int, set] = {}
        self._ledger_last: dict[tuple, int] = {}
        self._last_event_time = float("-inf")
        # Live-migration shadow state: (scope, partition) -> owner,
        # copied sub-range ids, and seen transfer-apply tokens.
        self._owners: dict[tuple, int] = {}
        self._range_copies: dict[tuple, set] = {}
        self._transfer_tokens: set = set()
        # Overload shadow accounting: source -> (offered, admitted, shed)
        # cumulative counters re-derived from the per-batch deltas.
        self._overload_accounts: dict[str, tuple[int, int, int]] = {}

    # -- violation plumbing -------------------------------------------------
    def fail(self, invariant: str, message: str, **context: Any) -> None:
        """Raise an :class:`InvariantViolation` with trace context."""
        tracer = getattr(self.sim, "tracer", None)
        tail = (
            tracer.render_timeline(limit=self.trace_limit)
            if tracer is not None and len(tracer)
            else ""
        )
        raise InvariantViolation(
            invariant, message, sim_time=self.sim.now, context=context,
            trace_tail=tail,
        )

    def check_counts(self) -> dict[str, int]:
        """JSON-able snapshot of how many checks ran, per invariant."""
        return dict(self.checks)

    # -- kernel: event-time monotonicity ------------------------------------
    def note_event(self, when: float, now: float) -> None:
        """One kernel event about to fire at ``when`` (current time ``now``)."""
        self.checks["event-time"] += 1
        if when < now or when < self._last_event_time:
            self.fail(
                "event-time",
                f"event scheduled at {when!r} fires after time reached "
                f"{max(now, self._last_event_time)!r} (kernel ordering broken)",
                when=when, now=now,
            )
        self._last_event_time = when

    # -- channel: credit conservation + buffer lifecycle --------------------
    def _account(self, key: int, name: str, credits: int) -> _ChannelAccount:
        account = self._channels.get(key)
        if account is None:
            account = self._channels[key] = _ChannelAccount(name, credits)
        return account

    def note_send(self, key: int, name: str, credits: int) -> None:
        """Producer posted one buffer (after spending a credit)."""
        self.checks["credit-conservation"] += 1
        account = self._account(key, name, credits)
        account.sent += 1
        outstanding = account.sent - account.applied - account.forgiven
        if outstanding > account.credits:
            self.fail(
                "credit-conservation",
                f"{name}: {outstanding} buffers outstanding exceeds the "
                f"channel's {account.credits} credits (overspend)",
                sent=account.sent, applied=account.applied,
                forgiven=account.forgiven, credits=account.credits,
            )

    def note_credit_return(self, key: int, name: str, count: int, credits: int) -> None:
        """Consumer posted ``count`` credits back to the producer."""
        self.checks["credit-conservation"] += 1
        account = self._account(key, name, credits)
        account.returned += count
        if account.returned > account.sent:
            self.fail(
                "credit-conservation",
                f"{name}: consumer returned {account.returned} credits but "
                f"only {account.sent} buffers were ever sent (phantom credit)",
                returned=account.returned, sent=account.sent,
            )

    def note_credit_apply(self, key: int, name: str, count: int, credits: int) -> None:
        """Producer folded ``count`` received credits into its balance."""
        self.checks["credit-conservation"] += 1
        account = self._account(key, name, credits)
        account.applied += count
        if account.applied > account.returned:
            self.fail(
                "credit-conservation",
                f"{name}: producer applied {account.applied} credits but the "
                f"consumer only returned {account.returned} (credit forged)",
                applied=account.applied, returned=account.returned,
            )

    def note_channel_reset(self, key: int, name: str, credits: int) -> None:
        """The channel was torn down; write off in-flight buffers."""
        self.checks["credit-conservation"] += 1
        account = self._account(key, name, credits)
        in_flight = account.sent - account.applied - account.forgiven
        if in_flight > 0:
            account.forgiven += in_flight
        account.resets += 1

    def check_buffer_write(self, name: str, queue: Any, slot: int) -> None:
        """Producer is about to post into ring slot ``slot``."""
        self.checks["buffer-lifecycle"] += 1
        if queue.poll_slot(slot):
            self.fail(
                "buffer-lifecycle",
                f"{name}: posting into ring slot {slot % queue.credits} whose "
                "footer is still set (buffer reused before the consumer "
                "released it)",
                slot=slot, ring_slot=slot % queue.credits,
                credits=queue.credits,
            )

    # -- state: clock / watermark monotonicity ------------------------------
    def note_clock_entry(self, key: int, name: str, executor_id: int, value: float) -> None:
        """A vector-clock entry now reads ``value`` after an advance."""
        self.checks["clock-monotonic"] += 1
        self._clock_names[key] = name
        shadow_key = (key, executor_id)
        previous = self._clock_entries.get(shadow_key, float("-inf"))
        if value < previous:
            self.fail(
                "clock-monotonic",
                f"vector clock {name}: entry for executor {executor_id} "
                f"regressed from {previous!r} to {value!r}",
                executor=executor_id, previous=previous, value=value,
            )
        self._clock_entries[shadow_key] = value

    def note_watermark(self, key: int, executor_id: int, value: float) -> None:
        """An executor's local watermark now reads ``value``."""
        self.checks["watermark-monotonic"] += 1
        previous = self._watermarks.get(key, float("-inf"))
        if value < previous:
            self.fail(
                "watermark-monotonic",
                f"executor {executor_id}: watermark regressed from "
                f"{previous!r} to {value!r}",
                executor=executor_id, previous=previous, value=value,
            )
        self._watermarks[key] = value

    # -- state: ledger exactly-once admission --------------------------------
    def note_ledger_seed(
        self, key: int, operator_id: str, partition: int, helper: int, epoch: int
    ) -> None:
        """The ledger installed an admission floor (checkpoint restore)."""
        self.checks["ledger-exactly-once"] += 1
        shadow_key = (key, operator_id, partition, helper)
        if epoch > self._ledger_last.get(shadow_key, -1):
            self._ledger_last[shadow_key] = epoch

    def note_ledger_admit(self, key: int, delta: Any, fresh: bool) -> None:
        """The ledger ruled on ``delta``; verify the ruling independently.

        Called *outside* :meth:`~repro.state.epoch.EpochLedger.admit`
        (from the merge path), so a broken ``admit`` cannot silently
        skip its own audit.  Checks three things: a fresh delta was not
        already admitted (exactly-once), fresh admissions stay dense per
        helper, and a dense-sequence-extending delta is never dropped
        as a duplicate (lost update).
        """
        self.checks["ledger-exactly-once"] += 1
        identity = (delta.operator_id, delta.partition, delta.from_executor, delta.epoch)
        shadow_key = (key, delta.operator_id, delta.partition, delta.from_executor)
        last = self._ledger_last.get(shadow_key, -1)
        admitted = self._admitted.setdefault(key, set())
        if fresh:
            if identity in admitted:
                self.fail(
                    "ledger-exactly-once",
                    f"delta (op={delta.operator_id!r}, p{delta.partition}, "
                    f"helper {delta.from_executor}, epoch {delta.epoch}) "
                    "admitted twice — exactly-once merging is broken",
                    partition=delta.partition, helper=delta.from_executor,
                    epoch=delta.epoch,
                )
            if delta.epoch <= last:
                self.fail(
                    "ledger-exactly-once",
                    f"duplicate delta re-admitted: epoch {delta.epoch} from "
                    f"helper {delta.from_executor} on partition "
                    f"{delta.partition} was already at or below the admission "
                    f"frontier {last}",
                    partition=delta.partition, helper=delta.from_executor,
                    epoch=delta.epoch, frontier=last,
                )
            if last >= 0 and delta.epoch != last + 1:
                self.fail(
                    "ledger-exactly-once",
                    f"epoch skip admitted: {delta.epoch} after {last} from "
                    f"helper {delta.from_executor} on partition {delta.partition}",
                    partition=delta.partition, helper=delta.from_executor,
                    epoch=delta.epoch, frontier=last,
                )
            admitted.add(identity)
            self._ledger_last[shadow_key] = max(last, delta.epoch)
        elif delta.epoch > last:
            self.fail(
                "ledger-exactly-once",
                f"fresh delta dropped as a duplicate: epoch {delta.epoch} "
                f"from helper {delta.from_executor} on partition "
                f"{delta.partition} extends the admission frontier {last} "
                "but was rejected (lost update)",
                partition=delta.partition, helper=delta.from_executor,
                epoch=delta.epoch, frontier=last,
            )

    # -- faults: consistent-cut audit for async snapshots ---------------------
    def note_snapshot_round(
        self,
        round_id: int,
        participants: list,
        boundaries: dict,
        frontiers: dict,
        channel_state: dict,
    ) -> None:
        """A Chandy–Lamport round completed; audit the cut it froze.

        ``boundaries`` maps sender -> epoch-cut boundary at which its
        marker shipped; ``frontiers`` maps receiver -> the admission
        ledger frozen inside its capture (keys ``(operator, partition,
        sender)`` -> last admitted epoch); ``channel_state`` maps
        ``(receiver, sender)`` -> recorded in-flight ``(operator,
        partition, epoch)`` triples.  For every audited stream the
        recorded epochs must bridge the receiver's frozen frontier to
        the sender's marker boundary exactly — a record beyond the
        boundary is a post-marker leak, a gap is a lost pre-marker
        record.
        """
        self.checks["snapshot-consistency"] += 1
        for dst in participants:
            frontier = frontiers.get(dst)
            if frontier is None:
                continue
            for src in participants:
                if src == dst:
                    continue
                boundary = boundaries.get(src)
                if boundary is None:
                    # The channel closed before a marker arrived; the
                    # sender contributed nothing in-flight to audit.
                    continue
                streams: dict[tuple, set] = {}
                for op, partition, epoch in channel_state.get((dst, src), ()):
                    streams.setdefault((op, partition), set()).add(epoch)
                audited = set(streams)
                audited.update(
                    (op, partition)
                    for (op, partition, helper) in frontier
                    if helper == src
                )
                for op, partition in sorted(audited):
                    frozen = frontier.get((op, partition, src), -1)
                    if frozen > boundary:
                        self.fail(
                            "snapshot-consistency",
                            f"round {round_id}: executor {dst}'s capture "
                            f"admitted (op={op!r}, p{partition}) up to epoch "
                            f"{frozen}, past executor {src}'s marker boundary "
                            f"{boundary} — a post-marker record leaked into "
                            "the cut",
                            round=round_id, dst=dst, src=src,
                            partition=partition, frontier=frozen,
                            boundary=boundary,
                        )
                    recorded = {
                        e for e in streams.get((op, partition), ()) if e > frozen
                    }
                    beyond = {e for e in recorded if e > boundary}
                    if beyond:
                        self.fail(
                            "snapshot-consistency",
                            f"round {round_id}: channel state {src}->{dst} "
                            f"(op={op!r}, p{partition}) records epochs "
                            f"{sorted(beyond)} beyond the marker boundary "
                            f"{boundary} — post-marker records in the cut",
                            round=round_id, dst=dst, src=src,
                            partition=partition, boundary=boundary,
                        )
                    expected = set(range(frozen + 1, boundary + 1))
                    if recorded != expected:
                        missing = sorted(expected - recorded)
                        self.fail(
                            "snapshot-consistency",
                            f"round {round_id}: channel state {src}->{dst} "
                            f"(op={op!r}, p{partition}) is missing epochs "
                            f"{missing} between the frozen frontier {frozen} "
                            f"and the marker boundary {boundary} — a "
                            "pre-marker record was lost from the cut",
                            round=round_id, dst=dst, src=src,
                            partition=partition, frontier=frozen,
                            boundary=boundary,
                        )

    def note_aligned_round(
        self, round_id: int, captures: int, post_marker_merges: int
    ) -> None:
        """An aligned (partitioned-engine) snapshot round completed."""
        self.checks["snapshot-consistency"] += 1
        if post_marker_merges:
            self.fail(
                "snapshot-consistency",
                f"aligned round {round_id}: {post_marker_merges} post-marker "
                f"payloads merged into consumer state before capture "
                "(alignment spill bypassed — the cut is not consistent)",
                round=round_id, captures=captures,
                post_marker_merges=post_marker_merges,
            )

    # -- elastic: ownership exactness during live migration -------------------
    def note_migration_owner(self, scope: str, partition: int, owner: int) -> None:
        """Record the initial owner of ``partition`` (coordinator arm)."""
        self.checks["ownership-exactness"] += 1
        self._owners[(scope, partition)] = owner

    def note_range_copy(
        self, scope: str, partition: int, range_id: int, src: int, dst: int
    ) -> None:
        """One fluid sub-range copy ``src -> dst`` starts for ``partition``.

        The copier must be the partition's current owner (only the
        leader holds the primary state a sub-move transfers), and no
        sub-range may be copied twice within one migration — a re-copy
        would re-apply the range's deltas at the destination.
        """
        self.checks["ownership-exactness"] += 1
        key = (scope, partition)
        owner = self._owners.get(key, src)
        if src != owner:
            self.fail(
                "ownership-exactness",
                f"executor {src} copied sub-range {range_id} of partition "
                f"{partition} but executor {owner} owns it — a non-owner "
                "holds (and is moving) primary state",
                scope=scope, partition=partition, range_id=range_id,
                src=src, dst=dst, owner=owner,
            )
        copied = self._range_copies.setdefault(key, set())
        if range_id in copied:
            self.fail(
                "ownership-exactness",
                f"sub-range {range_id} of partition {partition} copied twice "
                f"({src} -> {dst}) — its deltas would apply twice at the "
                "destination",
                scope=scope, partition=partition, range_id=range_id,
                src=src, dst=dst,
            )
        copied.add(range_id)

    def note_ownership_handoff(
        self,
        scope: str,
        partition: int,
        src: int,
        dst: int,
        ranges_copied: int,
        ranges_total: int,
    ) -> None:
        """Ownership of ``partition`` flips ``src -> dst`` atomically.

        The handoff must come from the current owner (each key range
        owned by exactly one leader, before and after), and a fluid
        handoff must cover every sub-range exactly — a partial handoff
        would leave a key range with no (or two) owners.
        """
        self.checks["ownership-exactness"] += 1
        key = (scope, partition)
        owner = self._owners.get(key, src)
        if src != owner:
            self.fail(
                "ownership-exactness",
                f"executor {src} handed off partition {partition} but "
                f"executor {owner} owns it — two leaders claimed the same "
                "key range",
                scope=scope, partition=partition, src=src, dst=dst,
                owner=owner,
            )
        if ranges_copied != ranges_total:
            self.fail(
                "ownership-exactness",
                f"partition {partition} handed off with {ranges_copied} of "
                f"{ranges_total} sub-ranges copied — partial handoff leaves "
                "key ranges without exactly one owner",
                scope=scope, partition=partition, src=src, dst=dst,
                ranges_copied=ranges_copied, ranges_total=ranges_total,
            )
        copied = self._range_copies.pop(key, set())
        if ranges_total and len(copied) != ranges_total:
            self.fail(
                "ownership-exactness",
                f"partition {partition} handed off but only sub-ranges "
                f"{sorted(copied)} of {ranges_total} were ever copied",
                scope=scope, partition=partition, src=src, dst=dst,
                ranges_total=ranges_total,
            )
        self._owners[key] = dst

    def check_delta_owner(self, scope: str, partition: int, executor: int) -> None:
        """``executor`` is about to merge a delta for ``partition``."""
        self.checks["ownership-exactness"] += 1
        owner = self._owners.get((scope, partition))
        if owner is not None and executor != owner:
            self.fail(
                "ownership-exactness",
                f"executor {executor} merged a delta for partition "
                f"{partition} but executor {owner} owns it — state is "
                "splitting across two leaders",
                scope=scope, partition=partition, executor=executor,
                owner=owner,
            )

    def note_transfer_apply(self, scope: str, token: tuple) -> None:
        """One forwarded (relayed) delta applies at the new leader."""
        self.checks["ownership-exactness"] += 1
        key = (scope, token)
        if key in self._transfer_tokens:
            self.fail(
                "ownership-exactness",
                f"forwarded delta {token} applied twice at the new leader — "
                "exactly-once forwarding is broken",
                scope=scope, token=str(token),
            )
        self._transfer_tokens.add(key)

    # -- overload: admission conservation + silent-drop audit -----------------
    def note_overload_admission(
        self,
        source: str,
        offered: int,
        admitted: int,
        shed: int,
        batch_offered: int,
        batch_admitted: int,
        batch_shed: int,
        policy_active: bool,
        queue_depth: int,
    ) -> None:
        """One ingress batch was admitted (possibly shedding records).

        ``offered`` / ``admitted`` / ``shed`` are the coordinator's
        cumulative counters for ``source``; the ``batch_*`` values are
        this admission's deltas.  The sanitizer keeps its own cumulative
        shadow from the deltas, so a coordinator that mis-folds a batch
        into its books is caught even though both views come from the
        same call site.
        """
        self.checks["backpressure-conservation"] += 1
        if batch_offered != batch_admitted + batch_shed:
            self.fail(
                "backpressure-conservation",
                f"{source}: batch of {batch_offered} records split into "
                f"{batch_admitted} admitted + {batch_shed} shed — records "
                "created or destroyed at admission",
                source=source, batch_offered=batch_offered,
                batch_admitted=batch_admitted, batch_shed=batch_shed,
            )
        if batch_shed > 0 and not policy_active:
            self.fail(
                "backpressure-conservation",
                f"{source}: {batch_shed} records shed with no shedding "
                "policy active — a drop that nothing decided to make",
                source=source, batch_shed=batch_shed,
            )
        if queue_depth < 0:
            self.fail(
                "backpressure-conservation",
                f"{source}: ingress backlog estimate went negative "
                f"({queue_depth}) — more records processed than offered",
                source=source, queue_depth=queue_depth,
            )
        prev_offered, prev_admitted, prev_shed = self._overload_accounts.get(
            source, (0, 0, 0)
        )
        shadow = (
            prev_offered + batch_offered,
            prev_admitted + batch_admitted,
            prev_shed + batch_shed,
        )
        if offered < prev_offered:
            self.fail(
                "backpressure-conservation",
                f"{source}: cumulative offered count regressed from "
                f"{prev_offered} to {offered}",
                source=source, previous=prev_offered, offered=offered,
            )
        if (offered, admitted, shed) != shadow:
            self.fail(
                "backpressure-conservation",
                f"{source}: coordinator accounts (offered={offered}, "
                f"admitted={admitted}, shed={shed}) drifted from the "
                f"shadow ledger (offered={shadow[0]}, admitted={shadow[1]}, "
                f"shed={shadow[2]})",
                source=source, offered=offered, admitted=admitted,
                shed=shed, shadow_offered=shadow[0],
                shadow_admitted=shadow[1], shadow_shed=shadow[2],
            )
        if offered != admitted + shed:
            self.fail(
                "backpressure-conservation",
                f"{source}: cumulative offered {offered} != admitted "
                f"{admitted} + shed {shed}",
                source=source, offered=offered, admitted=admitted,
                shed=shed,
            )
        self._overload_accounts[source] = shadow

    def check_no_silent_drop(
        self, source: str, offered: int, admitted: int, shed: int, processed: int
    ) -> None:
        """End-of-run audit: ``source`` processed every admitted record."""
        self.checks["no-silent-drop"] += 1
        if offered != admitted + shed:
            self.fail(
                "no-silent-drop",
                f"{source}: offered {offered} records but only "
                f"{admitted} admitted + {shed} shed are accounted for",
                source=source, offered=offered, admitted=admitted,
                shed=shed,
            )
        if processed != admitted:
            self.fail(
                "no-silent-drop",
                f"{source}: admitted {admitted} records but the pipeline "
                f"processed {processed} — records dropped without being "
                "logged as shed",
                source=source, admitted=admitted, processed=processed,
            )

    # -- core: watermark-safe window triggering ------------------------------
    def check_window_fire(
        self, executor_id: int, window_id: int, window_end: float, frontier: float
    ) -> None:
        """Executor ``executor_id`` is about to fire ``window_id``."""
        self.checks["window-fire"] += 1
        if window_end > frontier:
            self.fail(
                "window-fire",
                f"executor {executor_id} fired window {window_id} ending at "
                f"{window_end!r} while the clock frontier is only "
                f"{frontier!r} — property P1 violated (a straggler could "
                "still contribute)",
                executor=executor_id, window=window_id,
                window_end=window_end, frontier=frontier,
            )
