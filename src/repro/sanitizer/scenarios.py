"""Seed-reproducible random scenarios for the differential oracle.

A :class:`Scenario` is a plain, JSON-round-trippable description of one
randomized end-to-end check: which workload (query plan + generator
parameters), at which cluster scale, with which channel/epoch knobs, and
optionally under which fault preset.  :func:`generate_scenario` draws one
deterministically from ``(seed, index)`` via :class:`~repro.common.rng.RngTree`,
so ``python -m repro sanitize --scenarios N --seed S`` always replays the
same N scenarios; :func:`run_scenario` executes one with sanitizers on
and differentially compares Slash against the sequential reference
oracle and the partitioned UpPar baseline.  Engines come from the
:mod:`repro.runtime` registry and are armed through the generic
``attach_sanitizer``/``attach_faults`` hooks, so UpPar runs under the
same invariant checkers as Slash.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field, replace
from typing import Any, Optional

from repro.common.errors import ReproError
from repro.common.rng import RngTree

#: Workloads the generator draws from.  The join workloads (nb8, nb11)
#: never get a fault plan: crash recovery deliberately rejects joins and
#: session windows (FaultInjector.register raises), and the chaos
#: invariants are defined over windowed aggregates.
AGG_WORKLOADS = ("ysb", "cm", "nb7")
JOIN_WORKLOADS = ("nb8", "nb11")
SCENARIO_WORKLOADS = AGG_WORKLOADS + JOIN_WORKLOADS

#: Which generator kwarg bounds the key space of each workload.
_KEYSPACE_PARAM = {
    "ysb": "key_range",
    "cm": "jobs",
    "nb7": "key_range",
    "nb8": "sellers",
    "nb11": "sellers",
}

_EPOCH_CHOICES = (8 * 1024, 32 * 1024, 128 * 1024)
_BATCH_CHOICES = (32, 64, 128)
_CREDIT_CHOICES = (4, 8)


@dataclass(frozen=True)
class Scenario:
    """One randomized differential check, fully described by plain data."""

    workload: str
    records: int
    batch: int
    keyspace: int
    nodes: int
    threads: int
    epoch_bytes: int
    credits: int
    workload_seed: int
    fault: Optional[str] = None
    fault_seed: int = 0
    #: Shedding policy to arm the overload plane with (unpaced, so the
    #: admission hook audits every batch without shedding anything and
    #: the differential comparison stays exact); ``None`` = no overload.
    overload: Optional[str] = None
    #: Provenance: the (seed, index) the scenario was drawn from, or
    #: (-1, -1) for hand-built / shrunk scenarios.
    seed: int = -1
    index: int = -1

    def label(self) -> str:
        fault = f" fault={self.fault}" if self.fault else ""
        overload = f" overload={self.overload}" if self.overload else ""
        return (
            f"{self.workload} x{self.records} (batch {self.batch}, "
            f"keys {self.keyspace}) on {self.nodes}x{self.threads}, "
            f"epoch {self.epoch_bytes // 1024}K, credits {self.credits}"
            f"{fault}{overload}"
        )

    def to_json(self) -> str:
        return json.dumps(asdict(self), sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "Scenario":
        data = json.loads(text)
        unknown = set(data) - set(cls.__dataclass_fields__)
        if unknown:
            raise ReproError(f"unknown scenario fields: {sorted(unknown)}")
        return cls(**data)

    def repro_command(self) -> str:
        """A copy-pasteable command that re-runs exactly this scenario."""
        return f"python -m repro sanitize --replay '{self.to_json()}'"

    def workload_overrides(self) -> dict[str, Any]:
        return {
            "records_per_thread": self.records,
            "batch_records": self.batch,
            "seed": self.workload_seed,
            _KEYSPACE_PARAM[self.workload]: self.keyspace,
        }


def generate_scenario(seed: int, index: int) -> Scenario:
    """Draw scenario ``index`` of the stream derived from ``seed``.

    Each index gets an independent generator
    (``RngTree(seed).generator("sanitize", index)``), so scenarios can
    be generated out of order or in parallel without changing any draw.
    """
    rng = RngTree(seed).generator("sanitize", index)
    workload = str(rng.choice(list(SCENARIO_WORKLOADS)))
    records = int(rng.integers(150, 501))
    batch = int(rng.choice(_BATCH_CHOICES))
    # Small key spaces force cross-partition contention (every executor
    # helps on most partitions); larger ones exercise sparse deltas.
    keyspace = int(rng.integers(8, 200))
    nodes = int(rng.integers(2, 5))
    threads = int(rng.integers(2, 4))  # UpPar needs >= 2 threads/node
    epoch_bytes = int(rng.choice(_EPOCH_CHOICES))
    credits = int(rng.choice(_CREDIT_CHOICES))
    workload_seed = int(rng.integers(0, 2**31))
    fault: Optional[str] = None
    fault_seed = 0
    if workload in AGG_WORKLOADS and rng.random() < 0.5:
        from repro.faults.plan import MULTI_CRASH_PRESETS, PRESETS

        # Multi-crash presets (cascade, buddy-crash) need a third
        # executor to survive; keep them out of 2-node scenarios so the
        # shrinker never has to learn that constraint.
        candidates = [
            p for p in PRESETS
            if nodes >= 3 or p not in MULTI_CRASH_PRESETS
        ]
        fault = str(rng.choice(candidates))
        fault_seed = int(rng.integers(0, 2**31))
    overload: Optional[str] = None
    if rng.random() < 0.3:
        from repro.core.system import SHED_POLICIES

        overload = str(rng.choice(list(SHED_POLICIES)))
    return Scenario(
        workload=workload, records=records, batch=batch, keyspace=keyspace,
        nodes=nodes, threads=threads, epoch_bytes=epoch_bytes,
        credits=credits, workload_seed=workload_seed,
        fault=fault, fault_seed=fault_seed, overload=overload,
        seed=seed, index=index,
    )


@dataclass
class ScenarioOutcome:
    """What one scenario run found."""

    scenario: Scenario
    failures: list = field(default_factory=list)
    #: Sanitizer check counts from the (last) sanitized Slash run —
    #: proof the invariant hooks actually fired.
    checks: dict = field(default_factory=dict)
    horizon_s: float = 0.0

    @property
    def ok(self) -> bool:
        return not self.failures


def _compare(kind: str, failures: list, expected, actual) -> None:
    """Append a failure line if two result sets differ."""
    from repro.runtime.oracle import diff_results

    diff = diff_results(expected, actual)
    if not diff.ok:
        failures.append(f"{kind}: {diff.describe()}")


def run_scenario(scenario: Scenario) -> ScenarioOutcome:
    """Execute one scenario: sanitized Slash vs oracle vs baseline.

    Never raises for a *finding*: invariant violations and oracle
    mismatches come back as ``outcome.failures`` lines so the harness
    can count, report, and shrink them.  (Programming errors in the
    harness itself still propagate.)
    """
    from repro.runtime import REGISTRY, make_workload
    from repro.sanitizer.invariants import InvariantViolation

    outcome = ScenarioOutcome(scenario)
    workload = make_workload(scenario.workload, **scenario.workload_overrides())
    query = workload.build_query()
    flows = workload.flows(scenario.nodes, scenario.threads)

    oracle = REGISTRY.create("reference").run(query, flows)

    # Sanitized fail-free Slash run: every invariant checker armed.
    try:
        engine = REGISTRY.create(
            "slash", scenario.nodes,
            credits=scenario.credits, epoch_bytes=scenario.epoch_bytes,
        ).attach_sanitizer()
        if scenario.overload is not None:
            from repro.overload.config import OverloadConfig

            # Unpaced admission with an unreachable SLO: nothing sheds,
            # so the differential comparison stays exact, but every
            # batch crosses the admission hook — arming the
            # backpressure-conservation invariant per batch and the
            # end-of-run no-silent-drop audit.
            engine.attach_overload(OverloadConfig(
                shed_policy=scenario.overload,
                ingest_rate_records_per_s=None,
                slo_p99_ms=1e9,
                seed=scenario.workload_seed,
            ))
        slash = engine.run(query, flows)
    except InvariantViolation as violation:
        outcome.failures.append(f"invariant: {violation}")
        return outcome
    except ReproError as exc:
        outcome.failures.append(f"slash run failed: {type(exc).__name__}: {exc}")
        return outcome
    outcome.checks = dict(slash.extra.get("sanitizer_checks", {}))
    outcome.horizon_s = slash.sim_seconds
    _compare("slash vs reference oracle", outcome.failures, oracle, slash)

    # Partitioned baseline: UpPar re-partitions instead of sharing state,
    # so agreement here rules out bugs the two architectures share with
    # neither the oracle nor each other.  Sanitized through the same
    # generic hook as Slash — its channels feed the same checkers.
    try:
        uppar = (
            REGISTRY.create("uppar", scenario.nodes)
            .attach_sanitizer()
            .run(query, flows)
        )
    except InvariantViolation as violation:
        outcome.failures.append(f"invariant (uppar): {violation}")
        return outcome
    except ReproError as exc:
        outcome.failures.append(f"uppar run failed: {type(exc).__name__}: {exc}")
        return outcome
    _compare("uppar baseline vs reference oracle", outcome.failures, oracle, uppar)

    if scenario.fault is not None:
        from repro.faults.plan import FaultPlan

        horizon = slash.sim_seconds
        try:
            plan = FaultPlan.preset(
                scenario.fault, scenario.fault_seed, scenario.nodes, horizon
            )
        except ReproError as exc:
            # A preset that cannot be built at this shape (e.g. a
            # multi-crash preset after the shrinker removed a node) is a
            # finding about the scenario, not a harness crash.
            outcome.failures.append(
                f"fault preset {scenario.fault!r} invalid at this shape: {exc}"
            )
            return outcome
        # Same horizon-proportional tunables the chaos harness uses, so
        # detection and retransmission operate at simulation scale.
        overrides = dict(
            detect_s=horizon * 0.02,
            watchdog_period_s=horizon * 0.01,
            rto_s=max(5e-6, horizon * 0.001),
            credit_timeout_s=max(2e-5, horizon * 0.005),
        )
        try:
            faulted = (
                REGISTRY.create(
                    "slash", scenario.nodes,
                    credits=scenario.credits, epoch_bytes=scenario.epoch_bytes,
                )
                .attach_sanitizer()
                .attach_faults(plan, overrides)
                .run(query, flows)
            )
        except InvariantViolation as violation:
            outcome.failures.append(f"invariant (under {scenario.fault}): {violation}")
            return outcome
        except ReproError as exc:
            outcome.failures.append(
                f"faulted slash run failed ({scenario.fault}): "
                f"{type(exc).__name__}: {exc}"
            )
            return outcome
        outcome.checks = dict(faulted.extra.get("sanitizer_checks", {}))
        _compare(
            f"slash under {scenario.fault} vs reference oracle",
            outcome.failures, oracle, faulted,
        )
    return outcome


def scenario_without_fault(scenario: Scenario) -> Scenario:
    """The same scenario with its fault plan removed (shrinking step)."""
    return replace(scenario, fault=None, fault_seed=0)


def scenario_without_overload(scenario: Scenario) -> Scenario:
    """The same scenario with its overload plane removed (shrinking step)."""
    return replace(scenario, overload=None)
