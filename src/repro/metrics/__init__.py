"""Measurement rendering: tables, series, and top-down breakdowns.

These helpers turn :class:`~repro.simnet.counters.HwCounters` and harness
measurements into the text tables/figures the benchmark scripts print —
one renderer per artifact shape the paper uses (throughput bar groups,
parameter-sweep series, top-down stacked breakdowns, Table 1's counter
matrix).
"""

from repro.metrics.reporting import TextTable, format_si, series_block
from repro.metrics.breakdown import breakdown_percentages, breakdown_table, table1_row
from repro.metrics.slo import (
    SLO_QUANTILES,
    fairness_shares,
    lag_quantiles,
    percentile,
    weighted_percentile,
    window_lags,
)

__all__ = [
    "TextTable",
    "format_si",
    "series_block",
    "breakdown_percentages",
    "breakdown_table",
    "table1_row",
    "SLO_QUANTILES",
    "fairness_shares",
    "lag_quantiles",
    "percentile",
    "weighted_percentile",
    "window_lags",
]
