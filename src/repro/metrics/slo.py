"""SLO-style latency statistics shared across the reporting stack.

One home for the percentile and window-lag helpers that used to live as
private copies inside ``harness/experiments.py`` (the elastic runner),
``overload/coordinator.py`` (the delay report), and the per-figure
report builders.  Everything here is pure arithmetic over plain data —
no simulation imports — so the grid layer, the overload plane, and the
harness can all share it without layering violations (``metrics`` sits
at rank 3, below ``overload``/``elastic`` and far below ``harness``).

Two percentile conventions coexist deliberately:

* :func:`percentile` takes ``q`` in ``[0, 1]`` (the harness convention:
  ``percentile(lags, 0.99)``);
* :func:`weighted_percentile` takes ``q`` in ``[0, 100]`` (the overload
  coordinator convention: ``weighted_percentile(samples, 99.9)``), and
  weights each sample value by a record count.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence

#: The SLO quantiles every latency report prints, as (label, q) pairs.
SLO_QUANTILES: tuple[tuple[str, float], ...] = (
    ("p50", 0.50),
    ("p99", 0.99),
    ("p999", 0.999),
)


def percentile(values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile (``q`` in ``[0, 1]``); 0.0 for an empty sample."""
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = min(len(ordered) - 1, max(0, int(round(q * (len(ordered) - 1)))))
    return ordered[rank]


def weighted_percentile(pairs: list[tuple[float, int]], q: float) -> float:
    """Nearest-rank percentile over (value, weight) samples (``q`` in %)."""
    if not pairs:
        return 0.0
    ordered = sorted(pairs)
    total = sum(weight for _value, weight in ordered)
    rank = max(1, math.ceil(q / 100.0 * total))
    cumulative = 0
    for value, weight in ordered:
        cumulative += weight
        if cumulative >= rank:
            return value
    return ordered[-1][0]


def window_lags(result, start_s: Optional[float] = None) -> list[float]:
    """Trigger lags of windows fired at or after ``start_s``.

    ``result.extra["trigger_events"]`` is a run's ``(fire_time_s, lag_s)``
    timeline; passing a start instant keeps only the lags from that
    moment onward (e.g. everything after a migration's first stall).
    """
    events = result.extra.get("trigger_events", [])
    if start_s is None:
        return [lag for _t, lag in events]
    return [lag for t, lag in events if t >= start_s]


def lag_quantiles(lags: Sequence[float]) -> dict[str, float]:
    """The standard SLO quantiles of a lag sample, keyed by label."""
    return {label: percentile(lags, q) for label, q in SLO_QUANTILES}


def fairness_shares(
    tenant_offered: Sequence[int], tenant_shed: Sequence[int]
) -> list[dict]:
    """Per-tenant traffic vs shed shares, one plain dict per tenant.

    ``traffic_share`` is the tenant's fraction of all offered records and
    ``shed_share`` its fraction of all shed records; a fair shedder keeps
    the two aligned, a hot-key-blind one concentrates shedding on whoever
    is unlucky enough to be queued when pressure spikes.
    """
    offered_total = sum(tenant_offered) or 1
    shed_total = sum(tenant_shed) or 1
    return [
        {
            "tenant": tenant,
            "offered": int(offered),
            "shed": int(shed),
            "traffic_share": offered / offered_total,
            "shed_share": shed / shed_total,
        }
        for tenant, (offered, shed) in enumerate(
            zip(tenant_offered, tenant_shed)
        )
    ]
