"""Plain-text tables and series for benchmark output.

The benchmark harness prints the same rows/series the paper's figures
plot; these utilities keep that output aligned and parseable (each table
renders with a title line, a header, and `|`-separated columns).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Sequence


def format_si(value: float, unit: str = "", digits: int = 2) -> str:
    """Format with SI magnitude suffix: ``2.04 G``, ``11.8 G`` etc."""
    if value == 0:
        return f"0 {unit}".strip()
    magnitude = abs(value)
    for factor, suffix in ((1e12, "T"), (1e9, "G"), (1e6, "M"), (1e3, "K")):
        if magnitude >= factor:
            return f"{value / factor:.{digits}f} {suffix}{unit}".strip()
    return f"{value:.{digits}f} {unit}".strip()


class TextTable:
    """A fixed-column text table with a title."""

    def __init__(self, title: str, headers: Sequence[str]):
        self.title = title
        self.headers = list(headers)
        self.rows: list[list[str]] = []

    def add_row(self, *cells: Any) -> "TextTable":
        """Append a row; cells are stringified."""
        if len(cells) != len(self.headers):
            raise ValueError(
                f"row has {len(cells)} cells but table {self.title!r} has "
                f"{len(self.headers)} columns"
            )
        self.rows.append([str(cell) for cell in cells])
        return self

    def render(self) -> str:
        """Render title + header + rows with aligned columns."""
        widths = [len(h) for h in self.headers]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))

        def line(cells: Sequence[str]) -> str:
            return " | ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells))

        separator = "-+-".join("-" * w for w in widths)
        body = [line(self.headers), separator] + [line(row) for row in self.rows]
        return "\n".join([f"== {self.title} =="] + body)

    def __str__(self) -> str:
        return self.render()


@dataclass
class Report:
    """A rendered experiment: tables plus machine-readable rows.

    The shared output envelope of every harness entry point (figures,
    chaos, sanitize): ``tables`` render for humans, ``rows`` carry the
    same data as plain dicts for JSON output.
    """

    name: str
    tables: list[TextTable] = field(default_factory=list)
    rows: list[dict] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def render(self) -> str:
        parts = [f"#### Experiment {self.name} ####"]
        parts.extend(table.render() for table in self.tables)
        parts.extend(f"note: {note}" for note in self.notes)
        return "\n\n".join(parts)


def fault_timeline_table(faults_info: dict) -> TextTable:
    """Per-victim detection/promotion/MTTR latency columns for chaos runs.

    Every latency is measured in *simulated* seconds from the fault's
    onset (crash instant or partition start, as recorded by the
    injector): ``detection`` is the first time any survivor's phi-accrual
    view crossed the suspicion threshold, ``promotion`` is when the
    quorum-backed fence executed, and ``mttr`` is when recovery finished
    merging and replaying the victim's state.
    """
    from repro.common.units import fmt_time

    table = TextTable(
        "fault timeline (per victim, from fault onset)",
        ["victim", "detection", "promotion", "mttr", "leader", "votes"],
    )

    def cell(info: dict, key: str) -> str:
        value = info.get(key)
        return fmt_time(value) if value is not None else "-"

    for victim, info in sorted(faults_info.get("crashes", {}).items()):
        table.add_row(
            victim,
            cell(info, "detection_s"),
            cell(info, "promotion_s"),
            cell(info, "mttr_s"),
            info.get("promoted", "-"),
            info.get("votes", "-"),
        )
    return table


def series_block(title: str, x_label: str, series: dict[str, Iterable[tuple[Any, Any]]]) -> str:
    """Render named (x, y) series, one line per point, grouped by name.

    Mirrors a figure: each series is a curve, each line one plotted point.
    """
    lines = [f"== {title} =="]
    for name in sorted(series):
        for x, y in series[name]:
            lines.append(f"{name:<12} {x_label}={x!s:<12} y={y}")
    return "\n".join(lines)
