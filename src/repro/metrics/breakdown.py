"""Top-down breakdowns and the Table 1 counter matrix.

Figures 9 and 10 of the paper plot, per system/role/thread-count, the
share of CPU cycles in each top-down category; Table 1 reports IPC,
instructions/record, cycles/record, per-level cache misses/record, and
aggregate memory bandwidth.  These helpers derive all of that from
:class:`~repro.simnet.counters.HwCounters`.
"""

from __future__ import annotations

from repro.metrics.reporting import TextTable
from repro.simnet.counters import CycleCategory, HwCounters

_ORDER = (
    CycleCategory.RETIRING,
    CycleCategory.FRONTEND,
    CycleCategory.BAD_SPEC,
    CycleCategory.MEMORY,
    CycleCategory.CORE,
)
_LABEL = {
    CycleCategory.RETIRING: "Retiring",
    CycleCategory.FRONTEND: "FeB",
    CycleCategory.BAD_SPEC: "BadS",
    CycleCategory.MEMORY: "MemB",
    CycleCategory.CORE: "CoreB",
}


def breakdown_percentages(counters: HwCounters) -> dict[str, float]:
    """Category shares as percentages keyed by the paper's labels."""
    shares = counters.breakdown()
    return {_LABEL[c]: shares[c] * 100.0 for c in _ORDER}


def dominant_category(counters: HwCounters) -> str:
    """The paper's 'X-bound' verdict: the largest stall category.

    Retiring is excluded — being 'retiring-bound' means efficient, and
    the paper's verdicts (front-end / memory / core bound) refer to the
    dominant *inefficiency*.
    """
    shares = counters.breakdown()
    stall_categories = [c for c in _ORDER if c is not CycleCategory.RETIRING]
    return _LABEL[max(stall_categories, key=lambda c: shares[c])]


def breakdown_table(title: str, rows: dict[str, HwCounters]) -> TextTable:
    """One breakdown table: a row per (system, role) label."""
    table = TextTable(title, ["who", "Retiring%", "FeB%", "BadS%", "MemB%", "CoreB%", "bound"])
    for label in rows:
        shares = breakdown_percentages(rows[label])
        table.add_row(
            label,
            f"{shares['Retiring']:.1f}",
            f"{shares['FeB']:.1f}",
            f"{shares['BadS']:.1f}",
            f"{shares['MemB']:.1f}",
            f"{shares['CoreB']:.1f}",
            dominant_category(rows[label]),
        )
    return table


def table1_row(counters: HwCounters, elapsed_s: float) -> dict[str, float]:
    """The Table 1 metrics for one system/role.

    Cycle-derived columns use busy cycles (spin waits excluded): a PMU
    sample attributes useful-work counters to the instructions actually
    executing, and the paper's per-record figures are work figures.
    """
    return {
        "ipc": counters.busy_ipc,
        "instr_per_rec": counters.instructions_per_record,
        "cyc_per_rec": counters.busy_cycles_per_record,
        "l1d_miss_per_rec": counters.l1_misses_per_record,
        "l2d_miss_per_rec": counters.l2_misses_per_record,
        "llc_miss_per_rec": counters.llc_misses_per_record,
        "mem_bw_bytes_per_s": counters.memory_bandwidth(elapsed_s),
    }
