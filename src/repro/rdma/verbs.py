"""Queue pairs, work requests, and completion queues.

The API mirrors the verbs calls the paper's C++ prototype would issue:

* ``post_write`` — one-sided RDMA WRITE into a remote
  :class:`~repro.rdma.region.MemoryRegion`.  One network trip; the remote
  CPU is never involved (Sec. 6.3 of the paper selects WRITE over READ for
  exactly this reason).  With ``signaled=False`` (selective signaling) no
  completion entry is generated, saving the poster a CQ poll.
* ``post_send`` / ``recv_queue`` — two-sided SEND/RECV used for small
  control messages (credit returns, epoch tokens).
* ``poll_cq`` — drain the send completion queue.

Calls that occupy the CPU (posting a doorbell, polling a CQ) are
generators to be driven with ``yield from`` inside a worker process; they
charge the calling :class:`~repro.simnet.cluster.Core`.  The wire-side
work runs asynchronously in its own simulation process, which is what
lets a coroutine scheduler overlap compute with in-flight RDMA.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from enum import Enum
from typing import Any, Generator, Optional

from repro.common.errors import ProtocolError
from repro.rdma.region import MemoryRegion
from repro.simnet.cluster import Core, Link, Node
from repro.simnet.cost_model import OpCost
from repro.simnet.kernel import Signal, Store, Timeout

_wr_ids = itertools.count(1)


class WorkKind(str, Enum):
    """The verb a completion refers to."""

    WRITE = "write"
    SEND = "send"
    RECV = "recv"


@dataclass(frozen=True)
class Completion:
    """One completion-queue entry."""

    wr_id: int
    kind: WorkKind
    nbytes: int


class CompletionQueue:
    """A polled queue of :class:`Completion` entries."""

    def __init__(self, name: str = ""):
        self.name = name
        self._entries: list[Completion] = []

    def __len__(self) -> int:
        return len(self._entries)

    def push(self, completion: Completion) -> None:
        """NIC-side: append a completion."""
        self._entries.append(completion)

    def drain(self, max_entries: Optional[int] = None) -> list[Completion]:
        """Remove and return up to ``max_entries`` completions (FIFO)."""
        if max_entries is None or max_entries >= len(self._entries):
            drained, self._entries = self._entries, []
            return drained
        drained = self._entries[:max_entries]
        del self._entries[:max_entries]
        return drained


class QueuePair:
    """One endpoint of a reliable connection.

    Writes and sends posted on the same QP are delivered in order (the
    underlying simulated TX/RX pipes are FIFO per node pair, matching the
    in-order guarantee of an IB reliable connection).
    """

    def __init__(self, local: Node, remote: Node, link: Link, name: str = ""):
        self.local = local
        self.remote = remote
        self.link = link
        self.name = name or f"qp:{local.index}->{remote.index}"
        self.send_cq = CompletionQueue(name=f"{self.name}.scq")
        self.recv_queue: Store = local.sim.store(name=f"{self.name}.rq")
        self.peer: Optional["QueuePair"] = None
        self.outstanding = 0

    # -- one-sided -----------------------------------------------------------
    def post_write(
        self,
        core: Core,
        payload: Any,
        nbytes: int,
        remote_region: MemoryRegion,
        remote_offset: int,
        rkey: Optional[int] = None,
        signaled: bool = True,
        ack_signal: Optional[Signal] = None,
        xfer_state: Optional[dict] = None,
    ) -> Generator[Any, Any, int]:
        """Post an RDMA WRITE; returns the work-request id immediately.

        Drive with ``yield from``.  Only the doorbell occupies the caller;
        the transfer itself proceeds asynchronously and, on delivery,
        atomically stores the payload into the remote region (footer
        semantics).  A signaled completion reaches :attr:`send_cq` after
        the hardware ACK returns.

        Fault-mode extras (used by reliable channel transfers):
        ``ack_signal`` fires once when the payload lands, after the ACK
        propagates back; ``xfer_state`` is a shared first-delivery-wins
        record, so a retransmission of a slow-but-delivered WRITE is
        discarded instead of trampling the occupied ring slot.
        """
        if remote_region.node_index != self.remote.index:
            raise ProtocolError(
                f"{self.name}: WRITE targets region on node "
                f"{remote_region.node_index}, but QP peers node {self.remote.index}"
            )
        wr_id = next(_wr_ids)
        yield from core.execute(_doorbell_cost(self.local), 1.0)
        core.counters.count_network(nbytes)
        self.outstanding += 1
        key = rkey if rkey is not None else remote_region.rkey
        self.local.sim.process(
            self._write_proc(
                wr_id, payload, nbytes, remote_region, remote_offset, key,
                signaled, ack_signal, xfer_state,
            ),
            name=f"{self.name}.write",
        )
        return wr_id

    # Outstanding WQEs beyond roughly this many thrash the NIC's on-chip
    # WQE cache, inflating per-message processing (Kalia et al., ATC'16;
    # the effect behind the paper's 'c=64 regresses by ~10%' finding).
    WQE_CACHE_DEPTH = 48

    def _write_proc(
        self,
        wr_id: int,
        payload: Any,
        nbytes: int,
        remote_region: MemoryRegion,
        remote_offset: int,
        rkey: int,
        signaled: bool,
        ack_signal: Optional[Signal] = None,
        xfer_state: Optional[dict] = None,
    ) -> Generator[Any, Any, None]:
        nic = self.local.config.nic
        pressure = 1.0 + max(0, self.outstanding - 1) / self.WQE_CACHE_DEPTH
        yield self.link.send(nbytes, overhead_s=nic.nic_processing_s * pressure)
        faults = self.local.sim.faults
        if faults is not None and (
            faults.should_drop_write(self.local.index, nbytes)
            or faults.is_crashed_node(self.remote.index)
            or faults.is_crashed_node(self.local.index)
        ):
            # The WRITE is lost on the wire (injected drop), lands on a
            # dead node, or was held across a partition by a sender that
            # got fenced in the meantime (its NIC is admin-down; the
            # retained copy of the delta is what recovery re-delivers).
            # Either way it never stores, and the poster's missing ACK
            # triggers retransmission or peer-death handling.
            self.outstanding -= 1
            return
        if xfer_state is not None and xfer_state.get("delivered"):
            # A retransmission raced the original, which was slow but not
            # lost: first delivery wins, the duplicate is discarded.
            self.outstanding -= 1
            return
        remote_region.remote_store(rkey, remote_offset, payload, nbytes)
        if xfer_state is not None:
            xfer_state["delivered"] = True
        self.outstanding -= 1
        if ack_signal is not None and not ack_signal.fired:
            yield Timeout(nic.propagation_latency_s)
            if not ack_signal.fired:
                ack_signal.fire(nbytes)
        if signaled:
            # The ACK crosses the fabric back to the sender NIC.
            yield Timeout(self.local.config.nic.propagation_latency_s)
            self.send_cq.push(Completion(wr_id, WorkKind.WRITE, nbytes))

    # -- two-sided -------------------------------------------------------------
    def post_send(
        self, core: Core, payload: Any, nbytes: int, signaled: bool = False
    ) -> Generator[Any, Any, int]:
        """Post a two-sided SEND; the peer receives it on its recv queue."""
        if self.peer is None:
            raise ProtocolError(f"{self.name}: SEND on an unpaired QP")
        wr_id = next(_wr_ids)
        yield from core.execute(_doorbell_cost(self.local), 1.0)
        core.counters.count_network(nbytes)
        self.local.sim.process(
            self._send_proc(wr_id, payload, nbytes, signaled), name=f"{self.name}.send"
        )
        return wr_id

    def _send_proc(
        self, wr_id: int, payload: Any, nbytes: int, signaled: bool
    ) -> Generator[Any, Any, None]:
        yield self.link.send(nbytes)
        assert self.peer is not None
        self.peer.recv_queue.put((payload, nbytes))
        if signaled:
            yield Timeout(self.local.config.nic.propagation_latency_s)
            self.send_cq.push(Completion(wr_id, WorkKind.SEND, nbytes))

    # -- polling ----------------------------------------------------------------
    def poll_cq(self, core: Core, max_entries: Optional[int] = None) -> Generator[Any, Any, list[Completion]]:
        """Drain the send CQ, charging one CQ-poll cost to the caller."""
        yield from core.execute(_cq_poll_cost(self.local), 1.0)
        return self.send_cq.drain(max_entries)

    def try_recv(self) -> tuple[bool, Any, int]:
        """Non-blocking RECV: ``(ok, payload, nbytes)``."""
        ok, item = self.recv_queue.try_get()
        if not ok:
            return False, None, 0
        payload, nbytes = item
        return True, payload, nbytes

    def recv(self) -> Signal:
        """Blocking RECV: a signal that fires with ``(payload, nbytes)``."""
        return self.recv_queue.get()

    def __repr__(self) -> str:
        return f"QueuePair({self.name!r}, outstanding={self.outstanding})"


def _doorbell_cost(node: Node) -> OpCost:
    """CPU price of ringing the NIC doorbell (an MMIO write)."""
    cycles = node.config.nic.doorbell_cycles
    return OpCost(instructions=cycles / 3.0, retiring=cycles * 0.2, core=cycles * 0.8)


def _cq_poll_cost(node: Node) -> OpCost:
    """CPU price of one completion-queue poll."""
    cycles = node.config.nic.cq_poll_cycles
    return OpCost(instructions=cycles / 2.0, retiring=cycles * 0.3, core=cycles * 0.7)
