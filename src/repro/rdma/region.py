"""Registered memory regions.

A real RDMA application registers a memory area with the NIC and receives
a local key (lkey) and a remote key (rkey); remote peers may only access
the region when they present the right rkey.  We model a region as a
sparse slot map from byte offset to a ``(payload, nbytes)`` pair: the
payload is the Python object the engines exchange, the byte count is what
timing and bounds checks operate on.

Delivery atomicity mirrors the paper's footer-polling argument (Sec. 6.3):
a slot becomes visible *only* when the simulated transfer has fully
completed, so polling a slot is equivalent to polling the final footer
byte of a real buffer — a reader can never observe a half-written buffer.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Optional

from repro.common.errors import ProtocolError

_rkey_counter = itertools.count(0x1000)


class MemoryRegion:
    """An rkey-protected, byte-addressed slot map owned by one node.

    ``on_store`` (if set) is invoked with the offset after every store.
    The channel layer uses it to wake a blocked poller the instant a
    footer byte would flip in real memory; it is a simulation-efficiency
    device, not extra information — the payload is identical to what a
    poll at that instant would observe.
    """

    def __init__(self, node_index: int, nbytes: int, name: str = ""):
        if nbytes <= 0:
            raise ProtocolError(f"region {name!r}: size must be positive")
        self.node_index = node_index
        self.nbytes = nbytes
        self.name = name
        self.rkey = next(_rkey_counter)
        self.on_store: Optional[Callable[[int], None]] = None
        self._slots: dict[int, tuple[Any, int]] = {}

    # -- local access -----------------------------------------------------
    def store(self, offset: int, payload: Any, nbytes: int) -> None:
        """Place ``payload`` (occupying ``nbytes``) at ``offset``."""
        self._check_range(offset, nbytes)
        self._slots[offset] = (payload, nbytes)
        if self.on_store is not None:
            self.on_store(offset)

    def load(self, offset: int) -> tuple[Any, int]:
        """Return the ``(payload, nbytes)`` stored at ``offset``."""
        try:
            return self._slots[offset]
        except KeyError:
            raise ProtocolError(
                f"region {self.name!r}: load from empty offset {offset}"
            ) from None

    def poll(self, offset: int) -> bool:
        """Return whether a fully-delivered payload sits at ``offset``.

        This is the simulation analogue of polling a buffer's footer byte.
        """
        return offset in self._slots

    def clear(self, offset: int) -> None:
        """Mark the slot at ``offset`` writable again (consume its payload)."""
        if offset not in self._slots:
            raise ProtocolError(
                f"region {self.name!r}: clear of empty offset {offset}"
            )
        del self._slots[offset]

    # -- remote access ------------------------------------------------------
    def remote_store(self, rkey: int, offset: int, payload: Any, nbytes: int) -> None:
        """A remote NIC writes into this region; the rkey must match."""
        if rkey != self.rkey:
            raise ProtocolError(
                f"region {self.name!r}: remote access with bad rkey "
                f"{rkey:#x} (expected {self.rkey:#x})"
            )
        if offset in self._slots:
            raise ProtocolError(
                f"region {self.name!r}: remote write would overwrite an "
                f"unconsumed buffer at offset {offset} — flow control violated"
            )
        self.store(offset, payload, nbytes)

    def remote_load(self, rkey: int, offset: int) -> tuple[Any, int]:
        """A remote NIC reads from this region; the rkey must match."""
        if rkey != self.rkey:
            raise ProtocolError(
                f"region {self.name!r}: remote read with bad rkey {rkey:#x}"
            )
        return self.load(offset)

    # -- helpers -------------------------------------------------------------
    def occupied_offsets(self) -> list[int]:
        """Offsets currently holding a payload, in ascending order."""
        return sorted(self._slots)

    def _check_range(self, offset: int, nbytes: int) -> None:
        if offset < 0 or nbytes < 0 or offset + nbytes > self.nbytes:
            raise ProtocolError(
                f"region {self.name!r}: access [{offset}, {offset + nbytes}) "
                f"out of bounds for size {self.nbytes}"
            )

    def __repr__(self) -> str:
        return (
            f"MemoryRegion({self.name!r}, node={self.node_index}, "
            f"size={self.nbytes}, occupied={len(self._slots)})"
        )
