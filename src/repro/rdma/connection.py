"""Reliable-connection setup between nodes.

Mirrors the connection-manager handshake of an RDMA application: each side
creates a QP, the pair is transitioned to ready-to-send, and memory
regions are registered so their rkeys can be exchanged out of band.

The :class:`ConnectionManager` also tracks how many QPs exist, which lets
tests assert the paper's ``n^2`` channel count for SSB state
synchronisation (Sec. 7.2.2, setup phase).
"""

from __future__ import annotations

from typing import Optional

from repro.common.errors import ProtocolError
from repro.rdma.region import MemoryRegion
from repro.rdma.verbs import QueuePair
from repro.simnet.cluster import Cluster


class ConnectionManager:
    """Creates and tracks QP pairs and registered regions on a cluster."""

    def __init__(self, cluster: Cluster):
        self.cluster = cluster
        self._qps: list[QueuePair] = []
        self._regions: list[MemoryRegion] = []

    @property
    def queue_pair_count(self) -> int:
        """Total QPs created (both endpoints of a connection count)."""
        return len(self._qps)

    @property
    def connection_count(self) -> int:
        """Number of reliable connections (QP pairs)."""
        return len(self._qps) // 2

    def connect(self, a: int, b: int, name: str = "") -> tuple[QueuePair, QueuePair]:
        """Establish a reliable connection between nodes ``a`` and ``b``.

        Returns ``(qp_a, qp_b)``: the endpoint owned by each side.  The two
        QPs are peered, so SENDs posted on one arrive on the other.
        """
        if a == b:
            raise ProtocolError(f"cannot connect node {a} to itself")
        node_a = self.cluster.node(a)
        node_b = self.cluster.node(b)
        label = name or f"conn:{a}<->{b}"
        qp_a = QueuePair(node_a, node_b, self.cluster.link(a, b), name=f"{label}.a")
        qp_b = QueuePair(node_b, node_a, self.cluster.link(b, a), name=f"{label}.b")
        qp_a.peer = qp_b
        qp_b.peer = qp_a
        self._qps.extend((qp_a, qp_b))
        return qp_a, qp_b

    def register_region(self, node: int, nbytes: int, name: str = "") -> MemoryRegion:
        """Register an RDMA-capable memory region on ``node``."""
        node_obj = self.cluster.node(node)
        if nbytes > node_obj.config.dram_bytes:
            raise ProtocolError(
                f"cannot register {nbytes} bytes on node {node}: exceeds DRAM"
            )
        region = MemoryRegion(node, nbytes, name=name or f"mr:node{node}")
        self._regions.append(region)
        return region

    def registered_bytes(self, node: Optional[int] = None) -> int:
        """Total registered bytes, optionally restricted to one node."""
        return sum(
            region.nbytes
            for region in self._regions
            if node is None or region.node_index == node
        )
