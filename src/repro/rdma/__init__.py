"""Simulated RDMA verbs: memory regions, queue pairs, completion queues.

This package reproduces the *shape* of the InfiniBand verbs API on top of
the :mod:`repro.simnet` substrate:

* :class:`~repro.rdma.region.MemoryRegion` — registered, rkey-protected
  memory that remote queue pairs can write into;
* :class:`~repro.rdma.verbs.QueuePair` — a reliable connection endpoint
  with one-sided ``post_write`` (RDMA WRITE) and two-sided
  ``post_send``/``recv`` (SEND/RECV), plus per-QP completion queues and
  selective signaling;
* :class:`~repro.rdma.connection.ConnectionManager` — QP pairing and
  registration bookkeeping per node pair.

Payloads are Python objects tagged with an explicit byte size: the byte
size drives all timing and bandwidth accounting, while the object rides
along so engines exchange real data.
"""

from repro.rdma.region import MemoryRegion
from repro.rdma.verbs import Completion, QueuePair, CompletionQueue, WorkKind
from repro.rdma.connection import ConnectionManager

__all__ = [
    "MemoryRegion",
    "QueuePair",
    "CompletionQueue",
    "Completion",
    "WorkKind",
    "ConnectionManager",
]
