"""Per-executor membership agents over the simulated network.

One agent runs per executor as a simulation process (the membership
daemon of a real deployment).  Every heartbeat period it:

1. sends a heartbeat **datagram** to each peer it still believes in —
   datagrams traverse the NIC pipes but are *dropped* at a cut link, so
   the failure detector genuinely sees partitions while the reliable
   data plane holds-and-retransmits across them;
2. evaluates its own :class:`~repro.membership.detector.PhiAccrualDetector`
   and, for any newly suspected peer, starts a **fence proposal**.

A fence proposal polls every other member the proposer believes alive;
a member acks only if *its own* detector also suspects the victim at
receipt time (views can disagree — an asymmetric cut makes the majority
suspect the victim while the victim suspects nobody).  With
``quorum_size`` votes the proposer waits a confirmation grace period,
re-checks its detector (a healed partition resumes heartbeats and
aborts the fence), and only then executes the takeover through the
injector: term bump, death announcement, promotion, recovery.

Death announcements travel as **reliable** sends, so members on the far
side of a partition learn the outcome when the partition heals — that,
plus the term bump, is the heal-reconciliation protocol: a stale leader
is already fenced by term, and its retained deltas replay through the
epoch ledger.
"""

from __future__ import annotations

from typing import Any

from repro.common.errors import ConfigError
from repro.membership.detector import PhiAccrualDetector
from repro.membership.quorum import quorum_size
from repro.simnet.kernel import AllOf, Timeout
from repro.simnet.trace import trace

#: Wire size of one heartbeat datagram (UD send: GRH + sequence + term).
HEARTBEAT_BYTES = 64
#: Wire size of one fence proposal / ack / death announcement.
CONTROL_MSG_BYTES = 96


class _AgentState:
    """One executor's private membership view."""

    __slots__ = ("detector", "confirmed_dead", "proposing", "retry_after")

    def __init__(self, detector: PhiAccrualDetector):
        self.detector = detector
        #: Peers whose fence committed and whose announcement reached us.
        self.confirmed_dead: set[int] = set()
        #: Victims this agent currently has a fence proposal in flight for.
        self.proposing: set[int] = set()
        #: Victim -> earliest time a new proposal may start (backoff).
        self.retry_after: dict[int, float] = {}


class MembershipService:
    """All membership agents of one deployment, plus shared bookkeeping."""

    def __init__(
        self,
        injector: Any,
        *,
        heartbeat_period_s: float,
        phi_threshold: float,
        confirm_s: float,
        ack_timeout_s: float,
    ):
        if heartbeat_period_s <= 0 or confirm_s < 0 or ack_timeout_s <= 0:
            raise ConfigError("membership timing parameters must be positive")
        self.injector = injector
        self.sim = injector.sim
        self.cluster = injector.cluster
        self.heartbeat_period_s = heartbeat_period_s
        self.phi_threshold = phi_threshold
        self.confirm_s = confirm_s
        self.ack_timeout_s = ack_timeout_s

        self._member_ids = [e.executor_id for e in injector.executors]
        self._node_of = {
            e.executor_id: e.node.index for e in injector.executors
        }
        self.agents: dict[int, _AgentState] = {}
        for member in self._member_ids:
            peers = [m for m in self._member_ids if m != member]
            self.agents[member] = _AgentState(
                PhiAccrualDetector(
                    member, peers, heartbeat_period_s, threshold=phi_threshold
                )
            )
        #: Victim -> sim time any agent first crossed the phi threshold.
        self.first_suspected: dict[int, float] = {}
        self.stats = {
            "heartbeats_sent": 0,
            "heartbeats_delivered": 0,
            "heartbeats_lost": 0,
            "fence_proposals": 0,
            "fences_rejected": 0,
            "fences_aborted": 0,
        }

    # -- wiring -------------------------------------------------------------
    def start(self) -> None:
        """Launch one agent process per executor."""
        for member in self._member_ids:
            self.sim.process(
                self._agent_proc(member), name=f"membership.agent{member}"
            )

    # -- per-node views (consumed by the executors' watchdogs) --------------
    def dead_peers_for(self, executor_id: int) -> list[int]:
        """Peers ``executor_id``'s own view has confirmed dead, ascending.

        This replaces the injector's old oracle-style ``suspected_peers``:
        an executor severs channels to a peer only once the cluster fenced
        it *and* the announcement reached this node — which a partition
        can delay until heal.
        """
        return sorted(self.agents[executor_id].confirmed_dead)

    def view(self, executor_id: int) -> PhiAccrualDetector:
        """The raw suspicion view of one executor (tests, diagnostics)."""
        return self.agents[executor_id].detector

    # -- the agent loop -----------------------------------------------------
    def _agent_proc(self, me: int):
        state = self.agents[me]
        injector = self.injector
        while True:
            if injector.is_crashed(me) or injector.deployment_finished():
                return
            now = self.sim.now
            for peer in state.detector.peers:
                if peer in state.confirmed_dead:
                    continue
                self.stats["heartbeats_sent"] += 1
                self.sim.process(
                    self._heartbeat_proc(me, peer),
                    name=f"hb:{me}->{peer}",
                )
            for peer in state.detector.suspects(now):
                if (
                    peer in state.confirmed_dead
                    or peer in state.proposing
                    or now < state.retry_after.get(peer, 0.0)
                    or injector.takeover_started(peer)
                ):
                    continue
                if peer not in self.first_suspected:
                    self.first_suspected[peer] = now
                state.proposing.add(peer)
                self.stats["fence_proposals"] += 1
                self.sim.process(
                    self._fence_proc(me, peer), name=f"fence:{me}!{peer}"
                )
            yield Timeout(self.heartbeat_period_s)

    def _heartbeat_proc(self, src: int, dst: int):
        link = self.cluster.link(self._node_of[src], self._node_of[dst])
        delivered = yield link.send_datagram(HEARTBEAT_BYTES)
        if delivered and not self.injector.is_crashed(dst):
            self.agents[dst].detector.heartbeat(src, self.sim.now)
            self.stats["heartbeats_delivered"] += 1
        else:
            self.stats["heartbeats_lost"] += 1

    # -- fencing ------------------------------------------------------------
    def _fence_proc(self, proposer: int, victim: int):
        state = self.agents[proposer]
        # Quorum is a majority of the membership *as the proposer sees
        # it*: members it has confirmed dead through earlier fences no
        # longer vote (Raft-style reconfiguration), which is what lets a
        # shrinking cluster fence a second victim.
        members = [
            m for m in self._member_ids if m not in state.confirmed_dead
        ]
        needed = quorum_size(len(members))
        voters = [m for m in members if m not in (proposer, victim)]
        votes = 1  # the proposer's own vote
        if voters:
            polls = [
                self.sim.process(
                    self._poll_proc(proposer, peer, victim),
                    name=f"poll:{proposer}->{peer}!{victim}",
                )
                for peer in voters
            ]
            results = yield AllOf(polls)
            votes += sum(1 for acked in results if acked)
        else:
            yield Timeout(0.0)
        if votes < needed:
            # An isolated minority lands here forever: it can suspect the
            # whole majority but can never collect a majority of acks, so
            # it can never promote — no split-brain.
            self.stats["fences_rejected"] += 1
            trace(
                self.sim, "membership",
                f"fence of {victim} by {proposer} rejected",
                votes=votes, needed=needed,
            )
            state.proposing.discard(victim)
            state.retry_after[victim] = self.sim.now + 2 * self.heartbeat_period_s
            self.injector.check_quorum_feasible()
            return
        self.injector.note_quorum(victim, proposer, votes, self.sim.now)
        # Confirmation grace: a short partition heals here — heartbeats
        # resume, phi collapses, and the fence aborts without a takeover.
        yield Timeout(self.confirm_s)
        if self.injector.takeover_started(victim):
            state.proposing.discard(victim)
            return  # someone else's quorum executed first
        if not state.detector.is_suspect(victim, self.sim.now):
            self.stats["fences_aborted"] += 1
            trace(
                self.sim, "membership",
                f"fence of {victim} by {proposer} aborted (peer recovered)",
            )
            state.proposing.discard(victim)
            state.retry_after[victim] = self.sim.now + 2 * self.heartbeat_period_s
            return
        self.injector.execute_takeover(victim, proposer=proposer, votes=votes)
        state.proposing.discard(victim)

    def _poll_proc(self, proposer: int, peer: int, victim: int):
        """One PROPOSE/ACK round trip; returns whether ``peer`` acked."""
        out = self.cluster.link(self._node_of[proposer], self._node_of[peer])
        delivered = yield out.send_datagram(CONTROL_MSG_BYTES)
        if not delivered or self.injector.is_crashed(peer):
            yield Timeout(self.ack_timeout_s)  # no response: wait it out
            return False
        peer_state = self.agents[peer]
        vote = (
            victim in peer_state.confirmed_dead
            or peer_state.detector.is_suspect(victim, self.sim.now)
        )
        back = self.cluster.link(self._node_of[peer], self._node_of[proposer])
        returned = yield back.send_datagram(CONTROL_MSG_BYTES)
        if not returned:
            yield Timeout(self.ack_timeout_s)
            return False
        return vote

    # -- death announcements ------------------------------------------------
    def announce_death(self, victim: int, announcer: int) -> None:
        """Broadcast a committed fence to every live member.

        The announcer's own view updates immediately; everyone else's
        when the (reliable) announcement lands — across a partition that
        is at heal time, which is exactly when their watchdogs may
        safely sever channels to the fenced peer.
        """
        for member in self._member_ids:
            if member == victim or self.injector.is_crashed(member):
                continue
            if member == announcer:
                self.agents[member].confirmed_dead.add(victim)
                continue
            self.sim.process(
                self._announce_proc(announcer, member, victim),
                name=f"announce:{announcer}->{member}!{victim}",
            )

    def _announce_proc(self, src: int, dst: int, victim: int):
        link = self.cluster.link(self._node_of[src], self._node_of[dst])
        yield link.send(CONTROL_MSG_BYTES)
        if not self.injector.is_crashed(dst):
            self.agents[dst].confirmed_dead.add(victim)

    # -- reporting ----------------------------------------------------------
    def report(self) -> dict:
        return {
            **self.stats,
            "first_suspected": {
                str(v): t for v, t in sorted(self.first_suspected.items())
            },
        }
