"""Phi-accrual failure detection (Hayashibara et al., SRDS 2004).

Each executor runs one detector fed by the heartbeats *it* receives.
Instead of a binary alive/dead timeout, the detector outputs a suspicion
level phi that grows continuously with the silence since the last
heartbeat, scaled by the observed inter-arrival distribution:

    phi(now) = (now - last_arrival) / (mean_interval * ln 10)

which is the classic exponential-distribution approximation of
``-log10 P(heartbeat still in flight)``.  A peer is *suspected* once phi
crosses the configured threshold.  Because every node estimates the
distribution from its own arrival stream, two nodes' views of the same
peer can legitimately disagree — the property the quorum fence is built
on top of.
"""

from __future__ import annotations

import math
from collections import deque

from repro.common.errors import ConfigError

#: Sliding window of inter-arrival samples kept per peer.
DEFAULT_WINDOW = 16

#: Suspicion threshold: phi >= threshold means "suspect".  With regular
#: heartbeats of period P, phi crosses 3.0 after ~3·ln(10)·P ≈ 6.9·P of
#: silence.
DEFAULT_PHI_THRESHOLD = 3.0

_LN10 = math.log(10.0)


class PhiAccrualDetector:
    """One executor's suspicion view over its peers.

    ``expected_interval_s`` bootstraps the mean before any heartbeat
    arrives and floors/caps the estimate afterwards: an arrival gap is
    clamped to ``4x`` the expected period so one long partition does not
    blind the detector to the next fault, and the mean never drops below
    half a period so jittery arrivals do not make it hair-triggered.
    """

    def __init__(
        self,
        owner: int,
        peers: list[int],
        expected_interval_s: float,
        *,
        threshold: float = DEFAULT_PHI_THRESHOLD,
        window: int = DEFAULT_WINDOW,
    ):
        if expected_interval_s <= 0:
            raise ConfigError("heartbeat interval must be positive")
        if threshold <= 0:
            raise ConfigError("phi threshold must be positive")
        if window < 1:
            raise ConfigError("sample window must hold at least one sample")
        self.owner = owner
        self.threshold = threshold
        self.expected_interval_s = expected_interval_s
        # A peer enters _last only once its first heartbeat arrives: a
        # node we have never heard from cannot be *suspected* (there is
        # no arrival distribution to fall out of), which keeps the
        # first-heartbeat flight time from reading as silence at boot.
        self._members: set[int] = set(peers)
        self._last: dict[int, float] = {}
        self._intervals: dict[int, deque] = {
            peer: deque(maxlen=window) for peer in peers
        }
        self.heartbeats_seen = 0

    @property
    def peers(self) -> list[int]:
        return sorted(self._members)

    def heartbeat(self, peer: int, now: float) -> None:
        """Record a heartbeat arrival from ``peer`` at simulated ``now``."""
        if peer not in self._members:
            return  # not a configured member; ignore
        last = self._last.get(peer)
        if last is not None:
            interval = now - last
            if interval > 0:
                self._intervals[peer].append(
                    min(interval, 4.0 * self.expected_interval_s)
                )
        self._last[peer] = now
        self.heartbeats_seen += 1

    def mean_interval(self, peer: int) -> float:
        samples = self._intervals.get(peer)
        if not samples:
            return self.expected_interval_s
        mean = sum(samples) / len(samples)
        return max(mean, 0.5 * self.expected_interval_s)

    def phi(self, peer: int, now: float) -> float:
        """Suspicion level for ``peer`` at time ``now`` (0 = just heard).

        A peer that has never been heard from reports phi 0: silence
        only starts accruing once an arrival stream exists.
        """
        last = self._last.get(peer)
        if last is None:
            return 0.0
        silence = max(0.0, now - last)
        return silence / (self.mean_interval(peer) * _LN10)

    def is_suspect(self, peer: int, now: float) -> bool:
        """Whether this view currently suspects ``peer``."""
        return self.phi(peer, now) >= self.threshold

    def suspects(self, now: float) -> list[int]:
        """All peers this view suspects at ``now``, ascending."""
        return [peer for peer in sorted(self._members) if self.is_suspect(peer, now)]
