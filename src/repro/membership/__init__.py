"""Cluster membership: failure detection, quorum fencing, and terms.

This package upgrades recovery from "one crash, oracle detection" to
arbitrary fault sequences:

* :mod:`repro.membership.detector` — a phi-accrual failure detector fed
  by per-node heartbeat arrival streams, so every executor holds its own
  suspicion view and two views can legitimately disagree (e.g. across an
  asymmetric partition);
* :mod:`repro.membership.quorum` — per-partition term numbers, the
  quorum rule that gates leader promotion, and the commit registry the
  tests use to prove no two executors ever commit deltas for the same
  partition under the same term;
* :mod:`repro.membership.service` — the per-executor membership agents:
  heartbeat coroutines over the simnet, fence proposals/acks, and the
  death announcements that drive each executor's channel-severing
  watchdog.
"""

from repro.membership.detector import PhiAccrualDetector
from repro.membership.quorum import TermRegistry, quorum_size
from repro.membership.service import (
    CONTROL_MSG_BYTES,
    HEARTBEAT_BYTES,
    MembershipService,
)

__all__ = [
    "PhiAccrualDetector",
    "TermRegistry",
    "quorum_size",
    "MembershipService",
    "HEARTBEAT_BYTES",
    "CONTROL_MSG_BYTES",
]
