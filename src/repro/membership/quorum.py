"""Per-partition terms, the quorum rule, and the split-brain registry.

Leadership of a partition carries a monotonically increasing **term**
number (Raft-style).  A fence that promotes a new leader bumps the term
of every partition that changes hands; anything a stale leader does
under an old term is fenced out by construction, because the takeover
only executes after a *majority* of the membership acked the fence —
and no two disjoint majorities of the same member set exist.

The :class:`TermRegistry` also keeps a commit registry: every fresh
delta merge records ``(partition, term) -> committer``.  The registry is
the machine-checkable form of the no-split-brain invariant — at no point
may two executors commit deltas for the same partition under the same
term.  Tests assert :meth:`TermRegistry.split_brain_commits` is empty.
"""

from __future__ import annotations


def quorum_size(members: int) -> int:
    """Votes needed to fence a member out of a group of ``members``.

    Strict majority for three or more members, so two disjoint groups
    can never both promote.  A two-member group degenerates to 1 — a
    witness-less HA pair cannot distinguish a dead peer from a cut link,
    and like any two-node cluster it trades split-brain safety for
    availability (documented in docs/fault_tolerance.md).
    """
    if members <= 2:
        return 1
    return members // 2 + 1


class TermRegistry:
    """Terms per partition plus the (partition, term) commit registry."""

    def __init__(self):
        self._terms: dict[int, int] = {}
        #: (partition, term) -> executor ids that committed a delta merge.
        self._commits: dict[tuple[int, int], set[int]] = {}
        #: Fence history: (victim, partition, old_term, new_term, at_s).
        self.fences: list[dict] = []

    def term_of(self, partition: int) -> int:
        """Current term of ``partition`` (0 before any promotion)."""
        return self._terms.get(partition, 0)

    def bump(self, partition: int, victim: int, at_s: float) -> int:
        """Advance ``partition`` to a new term (a fence executed)."""
        old = self.term_of(partition)
        new = old + 1
        self._terms[partition] = new
        self.fences.append(
            {
                "victim": victim,
                "partition": partition,
                "old_term": old,
                "new_term": new,
                "at_s": at_s,
            }
        )
        return new

    def note_commit(self, partition: int, executor: int) -> None:
        """Record that ``executor`` committed a delta merge for ``partition``
        under the partition's current term."""
        key = (partition, self.term_of(partition))
        self._commits.setdefault(key, set()).add(executor)

    def committers(self, partition: int) -> dict[int, list[int]]:
        """term -> sorted committer ids, for one partition."""
        return {
            term: sorted(execs)
            for (p, term), execs in sorted(self._commits.items())
            if p == partition
        }

    def split_brain_commits(self) -> list[tuple[int, int, list[int]]]:
        """Every (partition, term) with more than one committer.

        Must be empty: two committers under one term would mean two
        executors simultaneously believed they led the partition — the
        double-commit the quorum fence exists to prevent.
        """
        return [
            (partition, term, sorted(execs))
            for (partition, term), execs in sorted(self._commits.items())
            if len(execs) > 1
        ]

    def summary(self) -> dict:
        """JSON-able view for the chaos report."""
        return {
            "terms": {str(p): t for p, t in sorted(self._terms.items())},
            "fences": list(self.fences),
            "commits": {
                f"{partition}:{term}": sorted(execs)
                for (partition, term), execs in sorted(self._commits.items())
            },
            "split_brain": [
                {"partition": p, "term": t, "committers": execs}
                for p, t, execs in self.split_brain_commits()
            ],
        }
