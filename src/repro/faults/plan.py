"""Fault plans: the declarative, seed-reproducible chaos schedule.

A :class:`FaultPlan` is an ordered tuple of :class:`FaultEvent` items.
Each event names a *kind*, a simulated instant ``at_s``, a *target*
(executor/node index, or a ``(src, dst)`` pair for channel-level
faults), and kind-specific knobs (duration, degradation factor, count).
Plans are plain data: they can be built explicitly, from the named
presets the ``chaos`` harness command exposes, or drawn from a seeded
:class:`~repro.common.rng.RngTree` stream — the same seed always yields
the same schedule, which is what makes chaos runs regression-testable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Iterable, Optional

from repro.common.errors import FaultError
from repro.common.rng import RngTree


class FaultKind(str, Enum):
    """The failure modes the injector knows how to apply."""

    #: Kill one executor/node: its schedulers halt at the next task
    #: switch, peers detect the death after a timeout, and epoch-based
    #: recovery promotes a surviving helper.
    NODE_CRASH = "node-crash"
    #: Degrade one node's NIC TX/RX bandwidth to ``factor`` of nominal
    #: for ``duration_s`` (a flapping link / congested uplink).
    NIC_FLAP = "nic-flap"
    #: Drop up to ``count`` RDMA WRITEs posted by the target node inside
    #: the window — the sender detects the missing ACK and retransmits
    #: with bounded exponential backoff.
    DROP_CHUNK = "drop-chunk"
    #: Re-send up to ``count`` epoch deltas shipped by the target
    #: executor (a retransmission-induced duplicate); the leader's epoch
    #: ledger must deduplicate them.
    DUPLICATE_DELTA = "duplicate-delta"
    #: Pause the target executor's worker schedulers for ``duration_s``
    #: (a descheduled / GC-stalled helper).
    STALL = "stall"
    #: The target executor withholds credit returns on all its inbound
    #: channels for ``duration_s``, starving its producers.
    CREDIT_STARVATION = "credit-starvation"


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault."""

    kind: FaultKind
    at_s: float
    target: int
    duration_s: float = 0.0
    factor: float = 1.0
    count: int = 1

    def __post_init__(self) -> None:
        if self.at_s < 0:
            raise FaultError(f"fault {self.kind.value} scheduled in the past: {self.at_s}")
        if self.duration_s < 0:
            raise FaultError(f"fault {self.kind.value}: negative duration {self.duration_s}")
        if self.count <= 0:
            raise FaultError(f"fault {self.kind.value}: count must be positive, got {self.count}")
        if self.factor <= 0:
            raise FaultError(f"fault {self.kind.value}: factor must be positive, got {self.factor}")


#: Named single-fault presets understood by ``repro chaos --fault``.
#: Each maps to a builder on :class:`FaultPlan`.
PRESETS = (
    "leader-crash",
    "nic-flap",
    "drop-chunk",
    "duplicate-delta",
    "stalled-helper",
    "credit-starvation",
    "mixed",
)


@dataclass(frozen=True)
class FaultPlan:
    """An immutable, validated schedule of fault events."""

    events: tuple[FaultEvent, ...] = ()
    #: Seed the plan was derived from (0 for hand-built plans); recorded
    #: so reports can name the exact chaos configuration.
    seed: int = 0

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    def validate(self, executors: int) -> None:
        """Reject events that target executors outside the deployment."""
        for event in self.events:
            if not 0 <= event.target < executors:
                raise FaultError(
                    f"fault {event.kind.value} targets executor {event.target}, "
                    f"but the deployment has {executors}"
                )
        crashes = [e for e in self.events if e.kind is FaultKind.NODE_CRASH]
        if len({e.target for e in crashes}) < len(crashes):
            raise FaultError("a node can only crash once per plan")
        if crashes and len(crashes) >= executors:
            raise FaultError(
                f"plan crashes all {executors} executors; at least one must survive"
            )

    def crash_targets(self) -> list[int]:
        """Executor ids the plan will crash, in schedule order."""
        return [e.target for e in sorted(self.events, key=lambda e: e.at_s)
                if e.kind is FaultKind.NODE_CRASH]

    # -- builders ---------------------------------------------------------
    @classmethod
    def preset(
        cls,
        name: str,
        seed: int,
        executors: int,
        horizon_s: float,
    ) -> "FaultPlan":
        """Build a named single-fault (or ``mixed``) plan.

        ``horizon_s`` is the expected fail-free run length; fault times
        are placed at seed-drawn fractions of it, so the same seed with
        the same workload always produces the same schedule.
        """
        if executors < 2:
            raise FaultError("chaos plans need at least 2 executors")
        rng = RngTree(seed).generator("faults", name)
        at = float(horizon_s) * (0.3 + 0.3 * float(rng.random()))
        # The victim is a seed-drawn non-zero executor, so executor 0 —
        # the deterministic promotion target (lowest id) — survives.
        victim = 1 + int(rng.integers(0, executors - 1))
        if name == "leader-crash":
            events = (FaultEvent(FaultKind.NODE_CRASH, at, victim),)
        elif name == "nic-flap":
            events = (
                FaultEvent(
                    FaultKind.NIC_FLAP, at, victim,
                    duration_s=horizon_s * 0.2, factor=0.05,
                ),
            )
        elif name == "drop-chunk":
            events = (
                FaultEvent(
                    FaultKind.DROP_CHUNK, at, victim,
                    duration_s=horizon_s, count=3,
                ),
            )
        elif name == "duplicate-delta":
            events = (
                FaultEvent(
                    FaultKind.DUPLICATE_DELTA, at, victim,
                    duration_s=horizon_s, count=3,
                ),
            )
        elif name == "stalled-helper":
            events = (
                FaultEvent(
                    FaultKind.STALL, at, victim, duration_s=horizon_s * 0.15,
                ),
            )
        elif name == "credit-starvation":
            events = (
                FaultEvent(
                    FaultKind.CREDIT_STARVATION, at, victim,
                    duration_s=horizon_s * 0.1,
                ),
            )
        elif name == "mixed":
            flap_at = float(horizon_s) * (0.1 + 0.1 * float(rng.random()))
            dup_victim = 1 + int(rng.integers(0, executors - 1))
            events = (
                FaultEvent(
                    FaultKind.NIC_FLAP, flap_at, 0,
                    duration_s=horizon_s * 0.1, factor=0.1,
                ),
                FaultEvent(
                    FaultKind.DUPLICATE_DELTA, flap_at, dup_victim,
                    duration_s=horizon_s, count=2,
                ),
                FaultEvent(FaultKind.NODE_CRASH, at, victim),
            )
        else:
            raise FaultError(f"unknown fault preset {name!r}; known: {PRESETS}")
        return cls(events=events, seed=seed)
