"""Fault plans: the declarative, seed-reproducible chaos schedule.

A :class:`FaultPlan` is an ordered tuple of :class:`FaultEvent` items.
Each event names a *kind*, a simulated instant ``at_s``, a *target*
(executor/node index, or a ``(src, dst)`` pair for channel-level
faults), and kind-specific knobs (duration, degradation factor, count).
Plans are plain data: they can be built explicitly, from the named
presets the ``chaos`` harness command exposes, or drawn from a seeded
:class:`~repro.common.rng.RngTree` stream — the same seed always yields
the same schedule, which is what makes chaos runs regression-testable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Iterable, Optional

from repro.common.errors import FaultError
from repro.common.rng import RngTree
from repro.common.suggest import unknown_name_message


class FaultKind(str, Enum):
    """The failure modes the injector knows how to apply."""

    #: Kill one executor/node: its schedulers halt at the next task
    #: switch, peers detect the death after a timeout, and epoch-based
    #: recovery promotes a surviving helper.
    NODE_CRASH = "node-crash"
    #: Degrade one node's NIC TX/RX bandwidth to ``factor`` of nominal
    #: for ``duration_s`` (a flapping link / congested uplink).
    NIC_FLAP = "nic-flap"
    #: Drop up to ``count`` RDMA WRITEs posted by the target node inside
    #: the window — the sender detects the missing ACK and retransmits
    #: with bounded exponential backoff.
    DROP_CHUNK = "drop-chunk"
    #: Re-send up to ``count`` epoch deltas shipped by the target
    #: executor (a retransmission-induced duplicate); the leader's epoch
    #: ledger must deduplicate them.
    DUPLICATE_DELTA = "duplicate-delta"
    #: Pause the target executor's worker schedulers for ``duration_s``
    #: (a descheduled / GC-stalled helper).
    STALL = "stall"
    #: The target executor withholds credit returns on all its inbound
    #: channels for ``duration_s``, starving its producers.
    CREDIT_STARVATION = "credit-starvation"
    #: Symmetric partition: cut both link directions between the target
    #: node and every other node for ``duration_s``.  Heartbeats are
    #: lost (the detector sees the cut); data-plane transfers hold and
    #: complete at heal (transport-level retransmission).
    NET_PARTITION = "net-partition"
    #: Asymmetric partition: cut only the target's *outbound* links for
    #: ``duration_s`` — the target hears everyone, nobody hears the
    #: target.  The majority suspects (and may fence out) a perfectly
    #: healthy leader; the isolated side never reaches quorum.
    ASYM_PARTITION = "asym-partition"
    #: Gray failure, compute flavour: the target node's cores run at
    #: ``factor`` of nominal speed (``0 < factor < 1``) for
    #: ``duration_s`` — thermal throttling, a noisy neighbour, a
    #: background compaction.  Unlike the binary STALL the node keeps
    #: making (slow) progress, so heartbeats flow and the failure
    #: detector sees a healthy peer; only service-time statistics give
    #: the straggler away.
    SLOW_NODE = "slow-node"
    #: Gray failure, network flavour: data-plane transfers touching the
    #: target node (or just the ``peer`` link when one is named) take
    #: ``factor``x (``factor > 1``) the nominal propagation + switch
    #: latency for ``duration_s``.  Nothing is dropped; everything is
    #: late — the loss-oriented recovery plane never triggers.
    JITTER = "jitter"


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault."""

    kind: FaultKind
    at_s: float
    target: int
    duration_s: float = 0.0
    factor: float = 1.0
    count: int = 1
    #: For JITTER only: inflate just the ``target <-> peer`` link pair
    #: instead of every link touching ``target`` (``None`` = all links).
    peer: Optional[int] = None

    def __post_init__(self) -> None:
        # Every kind currently takes a scalar executor/node index; a
        # (src, dst) pair (or any other non-int) used to slip through
        # here and fail later with an opaque TypeError inside the
        # injector — reject it eagerly with a usable message.
        if isinstance(self.target, bool) or not isinstance(self.target, int):
            raise FaultError(
                f"fault {self.kind.value}: target must be a single executor "
                f"index, got {self.target!r} (pair targets are not a valid "
                "scalar target)"
            )
        if self.at_s < 0:
            raise FaultError(f"fault {self.kind.value} scheduled in the past: {self.at_s}")
        if self.duration_s < 0:
            raise FaultError(f"fault {self.kind.value}: negative duration {self.duration_s}")
        if self.count <= 0:
            raise FaultError(f"fault {self.kind.value}: count must be positive, got {self.count}")
        if self.factor <= 0:
            raise FaultError(f"fault {self.kind.value}: factor must be positive, got {self.factor}")
        if self.kind in (FaultKind.NET_PARTITION, FaultKind.ASYM_PARTITION):
            if self.duration_s <= 0:
                raise FaultError(
                    f"fault {self.kind.value}: a partition needs a positive "
                    "duration (permanent partitions would deadlock the run)"
                )
        if self.kind is FaultKind.SLOW_NODE:
            # factor <= 0 is already rejected above; >= 1 means "not
            # slow at all" (or a speed-up), which is always a confused
            # plan rather than a gray failure.
            if not self.factor < 1.0:
                raise FaultError(
                    f"fault {self.kind.value}: slowdown factor must be in "
                    f"(0, 1) — the fraction of nominal speed — got {self.factor}"
                )
            if self.duration_s <= 0:
                raise FaultError(
                    f"fault {self.kind.value}: needs a positive duration "
                    "(a zero-length slowdown never degrades anything)"
                )
        if self.kind is FaultKind.JITTER:
            if self.factor <= 1.0:
                raise FaultError(
                    f"fault {self.kind.value}: latency factor must be > 1 "
                    f"(a multiplier on nominal link latency), got {self.factor}"
                )
            if self.duration_s <= 0:
                raise FaultError(
                    f"fault {self.kind.value}: needs a positive duration "
                    "(a zero-length jitter window never delays anything)"
                )
        if self.peer is not None:
            if self.kind is not FaultKind.JITTER:
                raise FaultError(
                    f"fault {self.kind.value}: peer is only meaningful for "
                    "jitter (it names the far end of the inflated link)"
                )
            if isinstance(self.peer, bool) or not isinstance(self.peer, int):
                raise FaultError(
                    f"fault {self.kind.value}: peer must be a single executor "
                    f"index, got {self.peer!r}"
                )
            if self.peer == self.target:
                raise FaultError(
                    f"fault {self.kind.value}: peer {self.peer} equals the "
                    "target; a node has no link to itself"
                )


#: Named single-fault presets understood by ``repro chaos --fault``.
#: Each maps to a builder on :class:`FaultPlan`.
PRESETS = (
    "leader-crash",
    "nic-flap",
    "drop-chunk",
    "duplicate-delta",
    "stalled-helper",
    "credit-starvation",
    "mixed",
    "net-partition",
    "asym-partition",
    "cascade",
    "buddy-crash",
    "slow-node",
    "jitter",
)

#: Presets that schedule two NODE_CRASH events and therefore need a
#: third executor to survive.
MULTI_CRASH_PRESETS = ("cascade", "buddy-crash")

#: Fixed part of the spacing between the two crashes of a multi-crash
#: preset.  Fencing a victim costs roughly one heartbeat flight drain
#: plus one poll round trip at the default NIC timings (~2.9 us) no
#: matter how short the run is; a second crash inside that window kills
#: a second *unconfirmed* member, and a 3-node cluster then permanently
#: loses quorum (a correct dead end — the injector raises FaultError).
#: The presets therefore land the second crash after the first fence has
#: confirmed but while the far slower recovery (checkpoint restore +
#: input replay) is still in flight.
_SECOND_CRASH_GAP_S = 3.5e-6


@dataclass(frozen=True)
class FaultPlan:
    """An immutable, validated schedule of fault events."""

    events: tuple[FaultEvent, ...] = ()
    #: Seed the plan was derived from (0 for hand-built plans); recorded
    #: so reports can name the exact chaos configuration.
    seed: int = 0

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    def validate(self, executors: int, horizon_s: Optional[float] = None) -> None:
        """Reject malformed plans before the injector arms them.

        Checks: every target is inside the deployment; no node crashes
        twice; no event targets a node at/after the instant an earlier
        event crashed it (it would silently no-op); at least one
        executor survives; and, when ``horizon_s`` is given (the chaos
        CLI passes the fail-free run length), every event fires inside
        the horizon — an event scheduled past the end of the run would
        never fire, which is almost always a mis-scaled plan.
        """
        for event in self.events:
            if not 0 <= event.target < executors:
                raise FaultError(
                    f"fault {event.kind.value} targets executor {event.target}, "
                    f"but the deployment has {executors}"
                )
        crashes = [e for e in self.events if e.kind is FaultKind.NODE_CRASH]
        if len({e.target for e in crashes}) < len(crashes):
            raise FaultError("a node can only crash once per plan")
        if crashes and len(crashes) >= executors:
            raise FaultError(
                f"plan crashes all {executors} executors; at least one must survive"
            )
        crash_time = {e.target: e.at_s for e in crashes}
        for event in self.events:
            if event.kind is FaultKind.NODE_CRASH:
                continue
            crashed_at = crash_time.get(event.target)
            if crashed_at is not None and event.at_s >= crashed_at:
                raise FaultError(
                    f"fault {event.kind.value} targets executor {event.target} "
                    f"at t={event.at_s}, but the plan crashes it at "
                    f"t={crashed_at}; events against a dead node never fire"
                )
        for event in self.events:
            if event.peer is not None and not 0 <= event.peer < executors:
                raise FaultError(
                    f"fault {event.kind.value} names peer {event.peer} for "
                    f"the link from executor {event.target}, but the "
                    f"deployment has {executors}; there is no such link"
                )
        # Overlapping slow-node windows on one target would stack
        # multiplicatively on apply and restore to the *first* window's
        # nominal speed when the shorter one ends — silently wrong
        # either way, so reject the plan outright.
        slowdowns = sorted(
            (e for e in self.events if e.kind is FaultKind.SLOW_NODE),
            key=lambda e: (e.target, e.at_s),
        )
        for prev, event in zip(slowdowns, slowdowns[1:]):
            if prev.target == event.target and event.at_s < prev.at_s + prev.duration_s:
                raise FaultError(
                    f"overlapping slow-node windows on executor {event.target}: "
                    f"[{prev.at_s}, {prev.at_s + prev.duration_s}) and "
                    f"[{event.at_s}, {event.at_s + event.duration_s}); "
                    "slowdowns do not compose — merge them into one window"
                )
        if horizon_s is not None:
            for event in self.events:
                if event.at_s >= horizon_s:
                    raise FaultError(
                        f"fault {event.kind.value} scheduled at t={event.at_s} "
                        f"but the run's horizon is {horizon_s}; it would "
                        "never fire"
                    )

    def crash_targets(self) -> list[int]:
        """Executor ids the plan will crash, in schedule order."""
        return [e.target for e in sorted(self.events, key=lambda e: e.at_s)
                if e.kind is FaultKind.NODE_CRASH]

    # -- builders ---------------------------------------------------------
    @classmethod
    def preset(
        cls,
        name: str,
        seed: int,
        executors: int,
        horizon_s: float,
    ) -> "FaultPlan":
        """Build a named single-fault (or ``mixed``) plan.

        ``horizon_s`` is the expected fail-free run length; fault times
        are placed at seed-drawn fractions of it, so the same seed with
        the same workload always produces the same schedule.
        """
        if executors < 2:
            raise FaultError("chaos plans need at least 2 executors")
        rng = RngTree(seed).generator("faults", name)
        at = float(horizon_s) * (0.3 + 0.3 * float(rng.random()))
        # The victim is a seed-drawn non-zero executor, so executor 0 —
        # the deterministic promotion target (lowest id) — survives.
        victim = 1 + int(rng.integers(0, executors - 1))
        if name == "leader-crash":
            events = (FaultEvent(FaultKind.NODE_CRASH, at, victim),)
        elif name == "nic-flap":
            events = (
                FaultEvent(
                    FaultKind.NIC_FLAP, at, victim,
                    duration_s=horizon_s * 0.2, factor=0.05,
                ),
            )
        elif name == "drop-chunk":
            events = (
                FaultEvent(
                    FaultKind.DROP_CHUNK, at, victim,
                    duration_s=horizon_s, count=3,
                ),
            )
        elif name == "duplicate-delta":
            events = (
                FaultEvent(
                    FaultKind.DUPLICATE_DELTA, at, victim,
                    duration_s=horizon_s, count=3,
                ),
            )
        elif name == "stalled-helper":
            events = (
                FaultEvent(
                    FaultKind.STALL, at, victim, duration_s=horizon_s * 0.15,
                ),
            )
        elif name == "credit-starvation":
            events = (
                FaultEvent(
                    FaultKind.CREDIT_STARVATION, at, victim,
                    duration_s=horizon_s * 0.1,
                ),
            )
        elif name == "mixed":
            flap_at = float(horizon_s) * (0.1 + 0.1 * float(rng.random()))
            dup_victim = 1 + int(rng.integers(0, executors - 1))
            events = (
                FaultEvent(
                    FaultKind.NIC_FLAP, flap_at, 0,
                    duration_s=horizon_s * 0.1, factor=0.1,
                ),
                FaultEvent(
                    FaultKind.DUPLICATE_DELTA, flap_at, dup_victim,
                    duration_s=horizon_s, count=2,
                ),
                FaultEvent(FaultKind.NODE_CRASH, at, victim),
            )
        elif name == "net-partition":
            # Short symmetric cut: heals before the confirmation grace
            # expires, so the fence aborts and the cluster rides it out
            # with zero takeovers (the data plane holds-and-delivers).
            events = (
                FaultEvent(
                    FaultKind.NET_PARTITION, at, victim,
                    duration_s=horizon_s * 0.02,
                ),
            )
        elif name == "asym-partition":
            # Long one-way cut of the victim's outbound links: the
            # majority suspects a perfectly healthy node, reaches quorum,
            # and fences it out; the victim itself never reaches quorum.
            events = (
                FaultEvent(
                    FaultKind.ASYM_PARTITION, at, victim,
                    duration_s=horizon_s * 0.2,
                ),
            )
        elif name == "cascade":
            # Second crash lands while the first victim's recovery is in
            # flight; executor 0 is the first promotion target, so losing
            # it forces a takeover-of-the-takeover.
            if executors < 3:
                raise FaultError(
                    f"preset {name!r} crashes two executors and needs at "
                    f"least 3; the deployment has {executors}"
                )
            gap = _SECOND_CRASH_GAP_S + horizon_s * 0.1
            events = (
                FaultEvent(FaultKind.NODE_CRASH, at, victim),
                FaultEvent(FaultKind.NODE_CRASH, at + gap, 0),
            )
        elif name == "buddy-crash":
            # The victim's checkpoint buddy dies first, so when the
            # victim follows there is no committed checkpoint to restore
            # from and recovery falls back to full input replay.
            if executors < 3:
                raise FaultError(
                    f"preset {name!r} crashes two executors and needs at "
                    f"least 3; the deployment has {executors}"
                )
            buddy = (victim + 1) % executors
            if buddy == 0:
                # Keep executor 0 (the deterministic promotion target)
                # alive: shift the victim so its buddy is non-zero.
                victim = 1
                buddy = 2
            gap = _SECOND_CRASH_GAP_S + horizon_s * 0.1
            events = (
                FaultEvent(FaultKind.NODE_CRASH, at, buddy),
                FaultEvent(FaultKind.NODE_CRASH, at + gap, victim),
            )
        elif name == "slow-node":
            # A long fractional slowdown: the victim keeps heartbeating
            # and processing, just at a quarter speed — the straggler
            # detector, not the failure detector, has to catch it.
            events = (
                FaultEvent(
                    FaultKind.SLOW_NODE, at, victim,
                    duration_s=horizon_s * 0.3, factor=0.25,
                ),
            )
        elif name == "jitter":
            # Inflate every link touching the victim: transfers complete
            # (no retransmission, no loss) but arrive late.
            events = (
                FaultEvent(
                    FaultKind.JITTER, at, victim,
                    duration_s=horizon_s * 0.3, factor=8.0,
                ),
            )
        else:
            raise FaultError(unknown_name_message("fault preset", name, PRESETS))
        return cls(events=events, seed=seed)
