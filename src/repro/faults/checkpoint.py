"""Epoch-boundary checkpoints of a leader's recoverable state.

Epoch boundaries are the natural synchronisation points of the Slash
protocol (paper Sec. 7.2.2): right after ``collect_deltas`` every helper
fragment has just been drained, so a snapshot of the partitions an
executor *leads* — together with the epoch ledger's admission frontier —
is a consistent cut of the operator's distributed state.

A :class:`Checkpoint` additionally freezes the executor's *output* (the
windows it has fired so far) and the per-flow input positions of the
boundary.  Output "commits" at checkpoint boundaries: after a crash, the
executor's post-checkpoint emissions are discarded and the promoted
leader re-fires those windows from restored + replayed state, so the
merged cluster output is exactly the fail-free output.

Checkpoints replicate asynchronously to a buddy node (the transfer is
charged to the simulated network); only a fully replicated checkpoint is
eligible for restore.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Any, Optional

from repro.common.errors import RecoveryError

# Serialized overhead of a checkpoint message beyond its state payload
# (header, ledger frontier, positions, pending-window ids).
CHECKPOINT_HEADER_BYTES = 256


@dataclass
class Checkpoint:
    """One epoch-boundary cut of an executor's recoverable state."""

    executor_id: int
    #: Index of the epoch-ship call this checkpoint was taken at (-1 for
    #: the implicit empty checkpoint installed at deployment time).  The
    #: executor has shipped epochs ``0 .. boundary`` when the cut is
    #: taken, so recovery replays input from this boundary's positions
    #: and continues the per-partition epoch sequence at ``boundary+1``.
    boundary: int
    #: Per-flow batch positions at the cut (``positions[thread]`` batches
    #: of flow ``thread`` are reflected in the checkpointed state).
    positions: list[int]
    #: ``{partition: [(key, payload), ...]}`` for every partition the
    #: executor led at the cut (deep-copied; later mutation of the live
    #: stores cannot leak in).
    partitions: dict[int, list[tuple[Any, Any]]]
    #: Epoch-ledger admission frontier (:meth:`EpochLedger.snapshot`).
    ledger: dict[tuple[str, int, int], int]
    #: Window ids noted but not yet fired at the cut.
    pending: set[int]
    #: Per-window last local ingest time (trigger-lag reference).
    last_contribution: dict[Any, float]
    #: Committed output: everything fired before the cut.
    aggregates: dict = field(default_factory=dict)
    join_pairs: list = field(default_factory=list)
    emitted: int = 0
    #: Estimated wire size of the replication transfer.
    nbytes: int = 0
    #: Simulated time the cut was taken (None for the implicit initial
    #: checkpoint).  Recovery durability is decided against this: a
    #: recovered victim's state only becomes durable once its new leader
    #: commits a checkpoint *captured after* the recovery completed.
    captured_at: Optional[float] = None
    #: Simulated time replication finished (None while in flight).
    committed_at: Optional[float] = None

    @property
    def epochs_shipped(self) -> int:
        """Per-partition epoch sequence position at the cut."""
        return self.boundary + 1

    @classmethod
    def initial(cls, executor_id: int, flow_count: int) -> "Checkpoint":
        """The empty checkpoint every executor implicitly starts from."""
        return cls(
            executor_id=executor_id,
            boundary=-1,
            positions=[0] * flow_count,
            partitions={},
            ledger={},
            pending=set(),
            last_contribution={},
            committed_at=0.0,
        )

    @classmethod
    def capture(cls, executor: Any, boundary: int) -> "Checkpoint":
        """Freeze ``executor``'s recoverable state at an epoch boundary.

        Must be called synchronously inside the epoch-ship step (no
        simulated time may pass between the delta collection and this
        capture), so the snapshot, the ledger frontier, and the flow
        positions describe the same instant.
        """
        directory = executor.directory
        led = directory.partitions_led_by(executor.executor_id)
        partitions: dict[int, list] = {}
        state_bytes = 0
        for partition in led:
            store = executor.handle.store_for(partition)
            partitions[partition] = copy.deepcopy(list(store.scan()))
            state_bytes += store.size_bytes
        results = executor.results
        return cls(
            executor_id=executor.executor_id,
            boundary=boundary,
            positions=list(executor._flow_pos),
            partitions=partitions,
            ledger=executor.backend.ledger.snapshot(),
            pending=(
                set(executor.trigger.pending) if executor.trigger is not None else set()
            ),
            last_contribution=dict(executor._last_contribution),
            aggregates=copy.deepcopy(results.aggregates),
            join_pairs=list(results.join_pairs),
            emitted=results.emitted,
            nbytes=state_bytes
            + CHECKPOINT_HEADER_BYTES
            + 32 * len(results.aggregates),
        )


class CheckpointStore:
    """All executors' checkpoint histories, ordered by boundary."""

    def __init__(self):
        self._by_executor: dict[int, list[Checkpoint]] = {}

    def install_initial(self, executor_id: int, flow_count: int) -> Checkpoint:
        """Seed an executor's history with the empty deployment checkpoint."""
        checkpoint = Checkpoint.initial(executor_id, flow_count)
        self._by_executor[executor_id] = [checkpoint]
        return checkpoint

    def add(self, checkpoint: Checkpoint) -> None:
        """Record a freshly captured (not yet replicated) checkpoint."""
        self._by_executor.setdefault(checkpoint.executor_id, []).append(checkpoint)

    def latest_committed(self, executor_id: int) -> Checkpoint:
        """The newest fully replicated checkpoint of ``executor_id``."""
        history = self._by_executor.get(executor_id, [])
        for checkpoint in reversed(history):
            if checkpoint.committed_at is not None:
                return checkpoint
        raise RecoveryError(
            f"executor {executor_id} has no committed checkpoint to restore"
        )

    def initial_for(self, executor_id: int) -> Checkpoint:
        """The implicit empty deployment checkpoint of ``executor_id``.

        The restore of last resort: when an executor's buddy node (the
        only holder of its replicated checkpoints) is itself dead,
        recovery falls back to this and replays the full input.
        """
        history = self._by_executor.get(executor_id, [])
        if not history or history[0].boundary != -1:
            raise RecoveryError(
                f"executor {executor_id} has no initial checkpoint installed"
            )
        return history[0]

    def counts(self) -> tuple[int, int]:
        """``(taken, committed)`` across all executors, excluding initials."""
        taken = committed = 0
        for history in self._by_executor.values():
            for checkpoint in history:
                if checkpoint.boundary < 0:
                    continue
                taken += 1
                if checkpoint.committed_at is not None:
                    committed += 1
        return taken, committed
