"""The fault injector: applies a :class:`FaultPlan` and drives recovery.

The injector is attached to the simulation kernel (``sim.faults``), which
flips every layer of the stack into its fault-tolerant code path:

* the RDMA layer consults :meth:`should_drop_write` per WRITE and the
  producer endpoints switch to ACK-tracked transfers with bounded
  exponential-backoff retransmission;
* the channel layer arms credit timeouts and the poison/reset handshake;
* executors run a watchdog coroutine that reacts to peer-death suspicion;
* the injector itself records epoch cuts (``note_epoch_cut``): flow
  positions, retained deltas, and replicated checkpoints — the raw
  material of recovery.

Detection and promotion are **not** oracle-driven: a
:class:`~repro.membership.MembershipService` runs one agent per executor
over the simulated network.  Heartbeat datagrams feed per-node
phi-accrual detectors (views can disagree across a partition); a
suspicion becomes a takeover only after a *quorum* of the membership
acks the fence and a confirmation grace elapses (so a healed partition
aborts the fence).  The fence bumps the term of every partition that
changes hands; the commit registry proves no two executors ever commit
deltas for the same partition under the same term.

Recovery after a fence commits (paper Sec. 7.2.2 frames epochs as the
classic synchronisation point for exactly this):

1. the fence administratively halts the victim (it may still be alive —
   an asymmetric partition makes the majority fence a healthy node);
   survivors' watchdogs sever channels to the victim once the death
   announcement reaches them, and the lowest-id survivor is promoted;
2. the promoted leader atomically (same simulated instant) restores the
   victim's last *committed* checkpoint, seeds its epoch ledger from the
   checkpoint's admission frontier, takes over the victim's partitions in
   the shared directory, and merges every retained delta — the ledger
   deduplicates anything the checkpoint already contains, so CRDT merges
   stay exactly-once;
3. the victim's own retained deltas (shipped but possibly never merged)
   are re-delivered to the surviving leaders, again ledger-deduplicated;
4. the promoted leader replays the victim's input flows from the
   checkpoint's cut, re-absorbing its primary-partition contributions and
   re-shipping the other partitions' partials under their original epoch
   identities (watermark ``-inf``: replayed data must not advance clocks);
5. recovery finishes by broadcasting a ``+inf`` clock entry for the
   victim to every survivor (the victim will never contribute again) and
   re-checking triggers, so windows stalled on the dead peer fire from
   complete state.

Window triggers on the promoted leader are suppressed between steps 2 and
5 so no window can fire from partially restored state.

Cascades: if the promoted leader itself dies mid-recovery, the recovery
aborts (the partially restored state died with it) and retries on the
next survivor once the cluster has fenced the dead leader — every merge
is ledger-deduplicated, so the retry is idempotent.  A *completed*
recovery stays "undurable" until the new leader commits a checkpoint
captured after it; a leader crash inside that window re-queues the
victim's recovery.  If a victim's checkpoint buddy is dead, restore
falls back to the empty deployment checkpoint (full input replay).
"""

from __future__ import annotations

import copy
import dataclasses
from typing import Any

from repro.common.errors import FaultError, RecoveryError
from repro.core.costs import quantize_working_set
from repro.core.system import (
    RECOVERY_STRATEGIES,
    STRATEGY_ASYNC_SNAPSHOT,
    STRATEGY_EPOCH_BUDDY,
)
from repro.core.windows import SessionWindows, SlidingWindow
from repro.faults.checkpoint import Checkpoint, CheckpointStore
from repro.faults.plan import FaultEvent, FaultKind, FaultPlan
from repro.membership import MembershipService, TermRegistry, quorum_size
from repro.simnet.kernel import Simulator, Timeout
from repro.simnet.trace import trace
from repro.state.epoch import EpochDelta
from repro.state.ssb import DELTA_HEADER_BYTES

# Default fault-handling tunables; the chaos harness scales these to the
# workload's horizon.  All in simulated seconds.
DEFAULT_DETECT_S = 1e-3
DEFAULT_WATCHDOG_PERIOD_S = 5e-4
DEFAULT_RTO_S = 2e-5
DEFAULT_CREDIT_TIMEOUT_S = 5e-4
DEFAULT_MAX_RETRIES = 8

# Membership timing, derived from detect_s so one knob scales the whole
# detection pipeline: with heartbeats every detect_s/8 and threshold 3.0,
# phi crosses after ~3·ln(10)·(detect_s/8) ≈ 0.86·detect_s of silence;
# quorum polling plus the confirm grace lands the fence near
# ~1.4·detect_s after the fault.
HEARTBEAT_DIVISOR = 8.0
PHI_THRESHOLD = 3.0
CONFIRM_FRACTION = 0.5
ACK_TIMEOUT_FRACTION = 0.25

#: Fault kinds that act purely on the data plane (NIC rates, posted
#: WRITEs, credit machinery).  They need no checkpoints, membership, or
#: promotion, so any engine whose channels consult ``sim.faults`` can
#: absorb them via :meth:`FaultInjector.register_data_plane`.
DATA_PLANE_KINDS = frozenset(
    {
        FaultKind.NIC_FLAP,
        FaultKind.DROP_CHUNK,
        FaultKind.CREDIT_STARVATION,
        FaultKind.SLOW_NODE,
        FaultKind.JITTER,
    }
)


@dataclasses.dataclass
class FaultTarget:
    """One injectable unit of a non-Slash deployment.

    The generic StreamSystem path: engines without Slash's executor
    objects describe each node's data plane as the node itself plus its
    inbound consumer endpoints, and the injector aims events at these.
    """

    node: Any
    in_channels: list
    #: Extra bandwidth pipes a NIC flap must also degrade (e.g. the
    #: IPoIB fabric's per-node tx/rx pipes, which sit beside the node's
    #: RDMA NIC pipes).
    extra_pipes: list = dataclasses.field(default_factory=list)


class _RecoveryAborted(Exception):
    """The promoted leader died mid-recovery; retry on the next survivor."""


class FaultInjector:
    """Applies a fault plan to one simulation and orchestrates recovery."""

    def __init__(
        self,
        sim: Simulator,
        plan: FaultPlan,
        *,
        detect_s: float = DEFAULT_DETECT_S,
        watchdog_period_s: float = DEFAULT_WATCHDOG_PERIOD_S,
        rto_s: float = DEFAULT_RTO_S,
        credit_timeout_s: float = DEFAULT_CREDIT_TIMEOUT_S,
        max_retries: int = DEFAULT_MAX_RETRIES,
        strategy: str = STRATEGY_EPOCH_BUDDY,
        snapshot_interval_s: float | None = None,
    ):
        if detect_s <= 0 or watchdog_period_s <= 0 or rto_s <= 0 or credit_timeout_s <= 0:
            raise FaultError("fault-handling timeouts must be positive")
        if max_retries < 1:
            raise FaultError(f"max_retries must be >= 1, got {max_retries}")
        if strategy not in RECOVERY_STRATEGIES:
            raise FaultError(
                f"unknown recovery strategy {strategy!r}; known: "
                f"{sorted(RECOVERY_STRATEGIES)}"
            )
        if snapshot_interval_s is not None and snapshot_interval_s <= 0:
            raise FaultError("snapshot_interval_s must be positive")
        self.sim = sim
        self.plan = plan
        self.detect_s = detect_s
        self.watchdog_period_s = watchdog_period_s
        self.rto_s = rto_s
        self.credit_timeout_s = credit_timeout_s
        self.max_retries = max_retries
        self.strategy = strategy
        #: Period of the marker rounds under async-snapshot; defaults to
        #: twice the detection budget so a round usually completes
        #: between fault and fence.
        self.snapshot_interval_s = (
            snapshot_interval_s if snapshot_interval_s is not None
            else 2.0 * detect_s
        )
        #: Chandy-Lamport round driver (Slash under async-snapshot).
        self.coordinator: Any = None
        #: Aligned-snapshot/global-restart controller (partitioned engines).
        self.partitioned: Any = None

        self.executors: list[Any] = []
        self.cluster: Any = None
        self.directory: Any = None
        self._node_to_exec: dict[int, int] = {}

        self.checkpoints = CheckpointStore()
        #: Per executor: one flow-position snapshot per epoch-ship call.
        self._cuts: dict[int, list[list[int]]] = {}
        #: Retained deltas by (from_executor, partition), in epoch order.
        #: Helpers keep every shipped delta (un-pruned; see docs) so a
        #: promoted leader can re-merge anything a crash left in flight.
        self._retained: dict[tuple[int, int], list[EpochDelta]] = {}

        self.crashed: set[int] = set()
        self._crash_time: dict[int, float] = {}
        self._suspected_at: dict[int, float] = {}
        self._recovery_pending: set[int] = set()
        # Executor id -> number of in-flight recoveries it is the
        # promoted leader of.  A refcount, not a set: concurrent
        # recoveries (a cascade) can promote the same survivor, and one
        # completing must not lift the window-fire suppression the other
        # still depends on.
        self._suppressed: dict[int, int] = {}
        self._recovery: dict[int, dict] = {}

        # Membership, fencing, and multi-fault bookkeeping.
        self.membership: MembershipService | None = None
        self.terms = TermRegistry()
        #: Victims whose fence committed (takeover executing or done).
        self._takeover_started: set[int] = set()
        #: First fault instant per victim (crash time or partition onset);
        #: the zero point of the detection/promotion/MTTR columns.
        self._fault_at: dict[int, float] = {}
        #: partition -> victim whose in-flight recovery owns its restore.
        self._recovering: dict[int, int] = {}
        #: victim -> {leader, led, completed_at}: recoveries whose result
        #: lives only in the new leader's memory (no checkpoint captured
        #: after completion has committed yet).
        self._undurable: dict[int, dict] = {}
        #: victim -> checkpoint its completed recovery restored from (the
        #: committed-output cut; later post-mortem checkpoint commits must
        #: not move it, or replayed output would double-count).
        self._restored_from: dict[int, Checkpoint] = {}
        #: Applied partition events, for the report.
        self._partitions: list[dict] = []

        # Drop/duplicate windows: target -> [start, end, remaining].
        self._drop_windows: dict[int, list[float]] = {}
        self._dup_windows: dict[int, list[float]] = {}

        self.stats = {
            "writes_dropped": 0,
            "deltas_duplicated": 0,
            "credit_timeouts": 0,
            "blackholed_sends": 0,
            "checkpoint_bytes_replicated": 0,
            "snapshot_rounds_started": 0,
            "snapshot_rounds_complete": 0,
            "snapshot_rounds_failed": 0,
            "snapshot_captures": 0,
            "snapshot_markers_seen": 0,
            "snapshot_deltas_spilled": 0,
            "snapshot_channel_deltas": 0,
        }

    # -- wiring ------------------------------------------------------------
    def register(self, cluster: Any, directory: Any, executors: list[Any]) -> None:
        """Bind the injector to a freshly built deployment."""
        self.cluster = cluster
        self.directory = directory
        self.executors = list(executors)
        self.plan.validate(len(executors))
        crashes = self.plan.crash_targets()
        # Partitions can fence a live node (asymmetric cut) and therefore
        # trigger the same crash-recovery path; apply the recovery
        # restrictions to them too.
        recovery_capable = bool(crashes) or any(
            e.kind in (FaultKind.NET_PARTITION, FaultKind.ASYM_PARTITION)
            for e in self.plan
        )
        if recovery_capable:
            plan0 = executors[0].plan
            # Crash recovery re-fires restored windows; that is only
            # exactly-once when a fire *extracts* all of a window's state
            # (non-overlapping windows).  Overlapping sliding windows and
            # session windows share state across fires, so a re-fire
            # would emit slice-incomplete values — reject those up front.
            window = plan0.window
            unsupported = (
                plan0.is_join
                or isinstance(window, SessionWindows)
                or (
                    isinstance(window, SlidingWindow)
                    and window.slices_per_window > 1
                )
            )
            if unsupported:
                raise FaultError(
                    "leader-crash recovery supports windowed aggregations with "
                    "non-overlapping windows (tumbling, or sliding with "
                    "slide == size); use a non-crash fault for this query"
                )
        for executor in executors:
            self._node_to_exec[executor.node.index] = executor.executor_id
            self._cuts[executor.executor_id] = []
            self.checkpoints.install_initial(
                executor.executor_id, len(executor.flows)
            )
        self.membership = MembershipService(
            self,
            heartbeat_period_s=self.detect_s / HEARTBEAT_DIVISOR,
            phi_threshold=PHI_THRESHOLD,
            confirm_s=self.detect_s * CONFIRM_FRACTION,
            ack_timeout_s=self.detect_s * ACK_TIMEOUT_FRACTION,
        )
        if self.strategy == STRATEGY_ASYNC_SNAPSHOT:
            from repro.faults.snapshots import SnapshotCoordinator

            self.coordinator = SnapshotCoordinator(self)

    def register_partitioned(self, cluster: Any, controller: Any) -> None:
        """Bind the injector to a partitioned deployment's recovery plane.

        ``controller`` is a
        :class:`~repro.faults.snapshots.PartitionedChaosController`; its
        per-node proxies become the injector's (and the membership
        service's) executors, so detection, quorum fencing, and the
        report pipeline are byte-identical to the Slash path.  The only
        strategy partitioned engines implement is async-snapshot —
        aligned marker rounds plus global restart.
        """
        if self.strategy != STRATEGY_ASYNC_SNAPSHOT:
            raise FaultError(
                "partitioned engines recover via async-snapshot only; "
                f"got strategy {self.strategy!r}"
            )
        self.cluster = cluster
        self.partitioned = controller
        controller.bind(self)
        self.executors = list(controller.proxies)
        self.plan.validate(len(self.executors))
        recovery_capable = bool(self.plan.crash_targets()) or any(
            e.kind in (FaultKind.NET_PARTITION, FaultKind.ASYM_PARTITION)
            for e in self.plan
        )
        if recovery_capable:
            # Same exactly-once restriction as register(): the global
            # restart re-fires windows restored from the snapshot, which
            # is only safe when a fire extracts all of a window's state.
            plan0 = controller.ctx.plan
            window = plan0.window
            unsupported = (
                plan0.is_join
                or isinstance(window, SessionWindows)
                or (
                    isinstance(window, SlidingWindow)
                    and window.slices_per_window > 1
                )
            )
            if unsupported:
                raise FaultError(
                    "leader-crash recovery supports windowed aggregations "
                    "with non-overlapping windows (tumbling, or sliding "
                    "with slide == size); use a non-crash fault for this "
                    "query"
                )
        for index, proxy in enumerate(self.executors):
            self._node_to_exec[proxy.node.index] = index
            self._cuts[index] = []
            self.checkpoints.install_initial(index, 0)
        self.membership = MembershipService(
            self,
            heartbeat_period_s=self.detect_s / HEARTBEAT_DIVISOR,
            phi_threshold=PHI_THRESHOLD,
            confirm_s=self.detect_s * CONFIRM_FRACTION,
            ack_timeout_s=self.detect_s * ACK_TIMEOUT_FRACTION,
        )

    def register_data_plane(self, cluster: Any, targets: list[Any]) -> None:
        """Bind the injector to a deployment without a recovery plane.

        The generic StreamSystem path (e.g. UpPar): ``targets`` is one
        :class:`FaultTarget` per node.  Only :data:`DATA_PLANE_KINDS`
        are allowed — there are no checkpoints, membership agents, or
        promotion here, so crash/partition/stall events are rejected up
        front rather than silently doing nothing.
        """
        unsupported = {e.kind for e in self.plan} - DATA_PLANE_KINDS
        if unsupported:
            raise FaultError(
                "data-plane fault injection supports "
                f"{sorted(k.value for k in DATA_PLANE_KINDS)}; plan contains "
                f"{sorted(k.value for k in unsupported)}"
            )
        self.plan.validate(len(targets))
        self.cluster = cluster
        self.executors = list(targets)
        for index, target in enumerate(targets):
            self._node_to_exec[target.node.index] = index

    def arm(self) -> None:
        """Launch the membership agents and one process per fault event."""
        if self.membership is not None:
            self.membership.start()
        if self.coordinator is not None:
            self.sim.process(
                self.coordinator.driver(), name="snapshot.coordinator"
            )
        if self.partitioned is not None:
            self.sim.process(
                self.partitioned.driver(), name="snapshot.controller"
            )
        for index, event in enumerate(self.plan):
            self.sim.process(
                self._event_proc(event), name=f"fault.{event.kind.value}.{index}"
            )

    # -- queries from the stack --------------------------------------------
    def is_crashed(self, executor_id: int) -> bool:
        """Whether ``executor_id`` has been killed by the plan."""
        return executor_id in self.crashed

    def is_crashed_node(self, node_index: int) -> bool:
        """Whether the executor on node ``node_index`` is dead."""
        return self._node_to_exec.get(node_index, -1) in self.crashed

    def alive(self) -> list[int]:
        """Surviving executor ids, ascending."""
        return [
            e.executor_id for e in self.executors
            if e.executor_id not in self.crashed
        ]

    def suspected_peers(self) -> list[int]:
        """Executors the cluster has fenced out (global view; legacy).

        Kept for diagnostics and backward compatibility — the executors'
        watchdogs now consult :meth:`dead_peers_for`, the per-node view
        that a partition can delay.
        """
        now = self.sim.now
        return sorted(v for v, t in self._suspected_at.items() if t <= now)

    def dead_peers_for(self, executor_id: int) -> list[int]:
        """Peers ``executor_id``'s own membership view confirmed dead.

        Per-node, announcement-driven: across a partition the death
        announcement only lands at heal, so two executors' views can
        legitimately differ at any instant.
        """
        if self.membership is None:
            return self.suspected_peers()
        return self.membership.dead_peers_for(executor_id)

    def deployment_finished(self) -> bool:
        """Whether every non-crashed executor has finalized (agents exit)."""
        if not self.executors:
            return False
        return all(
            e.executor_id in self.crashed or e._finalized or e.finished.fired
            for e in self.executors
        )

    def takeover_started(self, victim: int) -> bool:
        """Whether a quorum-backed fence of ``victim`` already executed."""
        return victim in self._takeover_started

    def link_blocked(self, src_node: int, dst_node: int) -> bool:
        """Whether a partition currently cuts ``src -> dst``."""
        if self.cluster is None:
            return False
        return not self.cluster.can_reach(src_node, dst_node)

    def heal_wait(self, src_node: int, dst_node: int):
        """Waitable signal that fires when ``src -> dst`` heals."""
        return self.cluster.heal_wait(src_node, dst_node)

    def note_quorum(self, victim: int, proposer: int, votes: int, now: float) -> None:
        """A fence proposal for ``victim`` reached quorum (timing metric)."""
        info = self._recovery.setdefault(victim, {})
        info.setdefault("quorum_at", now)
        info.setdefault("quorum_votes", votes)
        info.setdefault("quorum_proposer", proposer)

    def check_quorum_feasible(self) -> None:
        """Oracle fail-fast: raise rather than let a majority loss hang.

        Called by the membership service after a rejected fence.  A fence
        needs a majority of the membership minus *committed* fences; dead
        members never ack, and the membership only shrinks when a fence
        commits — so once fewer live members remain than that majority,
        no proposal can ever succeed again.  That wedge is the correct
        split-brain-safe outcome for a cluster that lost its majority,
        but simulated forever it is an infinite heartbeat loop; the
        omniscient injector turns it into a diagnosable failure.
        """
        if not self.crashed:
            return  # rejections without real deaths (e.g. victim-side
            # minority during an asymmetric cut) resolve on their own
        fenced = self._takeover_started & self.crashed
        members = [
            e.executor_id for e in self.executors
            if e.executor_id not in fenced
        ]
        needed = quorum_size(len(members))
        live = [m for m in members if m not in self.crashed]
        if len(live) < needed:
            raise FaultError(
                f"quorum permanently lost: {len(live)} of {len(members)} "
                f"unfenced members alive but fencing needs {needed} "
                f"(crashed={sorted(self.crashed)}, fenced={sorted(fenced)}); "
                "the cluster is wedged split-brain-safe and cannot recover"
            )

    def note_partition_commit(self, partition: int, executor_id: int) -> None:
        """Record a fresh delta merge in the (partition, term) registry.

        A fenced executor's same-instant stragglers are ignored — its
        schedulers halted at the fence, so anything arriving under its id
        afterwards is a stale merge that lost the race, not a commit.
        """
        if executor_id in self.crashed:
            return
        self.terms.note_commit(partition, executor_id)

    def triggers_suppressed(self, executor_id: int) -> bool:
        """Whether ``executor_id`` must not fire windows (mid-recovery)."""
        return self._suppressed.get(executor_id, 0) > 0

    def _suppress(self, executor_id: int) -> None:
        self._suppressed[executor_id] = self._suppressed.get(executor_id, 0) + 1

    def _unsuppress(self, executor_id: int) -> None:
        count = self._suppressed.get(executor_id, 0)
        if count <= 1:
            self._suppressed.pop(executor_id, None)
        else:
            self._suppressed[executor_id] = count - 1

    def holds_finalize(self, executor_id: int) -> bool:
        """Whether finalisation is held open (a recovery is in flight).

        Every survivor waits: the promoted leader because its windows are
        incomplete, the others because recovery may still re-deliver the
        victim's retained deltas to them.
        """
        return bool(self._recovery_pending)

    def should_drop_write(self, src_node_index: int, nbytes: int) -> bool:
        """Consult (and consume) the drop budget for a posted WRITE."""
        executor_id = self._node_to_exec.get(src_node_index)
        window = self._drop_windows.get(executor_id)
        if window is None:
            return False
        start, end, remaining = window
        if remaining <= 0 or not start <= self.sim.now <= end:
            return False
        window[2] = remaining - 1
        self.stats["writes_dropped"] += 1
        trace(self.sim, "fault", f"dropped WRITE from node {src_node_index}", bytes=nbytes)
        return True

    def should_duplicate_delta(self, executor_id: int) -> bool:
        """Consult (and consume) the duplicate budget for a shipped delta."""
        window = self._dup_windows.get(executor_id)
        if window is None:
            return False
        start, end, remaining = window
        if remaining <= 0 or not start <= self.sim.now <= end:
            return False
        window[2] = remaining - 1
        self.stats["deltas_duplicated"] += 1
        trace(self.sim, "fault", f"duplicating delta from exec {executor_id}")
        return True

    def note_credit_timeout(self, channel_name: str) -> None:
        """A producer's credit wait timed out (accounting only)."""
        self.stats["credit_timeouts"] += 1

    def note_blackholed_send(self, channel_name: str) -> None:
        """A send to a declared-dead peer was dropped (accounting only)."""
        self.stats["blackholed_sends"] += 1

    # -- epoch cuts (called by every executor at every boundary) ------------
    def note_epoch_cut(self, executor: Any, deltas: list[EpochDelta], final: bool):
        """Record a boundary; checkpoint per the active recovery strategy.

        Called synchronously from ``_enqueue_epoch_ship`` — the positions,
        the collected deltas, and any checkpoint snapshot all describe the
        same simulated instant, which is what makes the cut consistent.

        Under epoch-buddy, every cut captures a checkpoint (returns
        None).  Under async-snapshot, the coordinator captures only at
        the cut that meets an outstanding marker round, and the return
        value is the :class:`~repro.core.executor.SnapshotMarker` the
        shipper threads must emit right after this cut's deltas (or
        None when no round is waiting).
        """
        executor_id = executor.executor_id
        if executor_id in self.crashed:
            return None
        cuts = self._cuts[executor_id]
        cuts.append(list(executor._flow_pos))
        for delta in deltas:
            self._retained.setdefault(
                (executor_id, delta.partition), []
            ).append(delta)
        if self.coordinator is not None:
            return self.coordinator.on_cut(executor, len(cuts) - 1, final)
        checkpoint = Checkpoint.capture(executor, boundary=len(cuts) - 1)
        checkpoint.captured_at = self.sim.now
        self.checkpoints.add(checkpoint)
        self.sim.process(
            self._replicate_proc(checkpoint),
            name=f"ckpt.exec{executor_id}.b{checkpoint.boundary}",
        )
        return None

    # -- snapshot hooks (called by the merge tasks) --------------------------
    def note_snapshot_marker(self, executor: Any, peer_id: int, marker: Any) -> None:
        """A barrier marker arrived in-band at ``executor``."""
        if self.coordinator is not None:
            self.coordinator.on_marker(executor, peer_id, marker)

    def snapshot_intercept(
        self, executor: Any, peer_id: int, delta: EpochDelta, ingest_times: Any
    ) -> bool:
        """True if the delta was spilled for snapshot alignment (the
        merge task must skip it; it merges at the capture instant)."""
        if self.coordinator is None:
            return False
        return self.coordinator.intercept(executor, peer_id, delta, ingest_times)

    def note_channel_closed(self, dst_id: int, src_id: int) -> None:
        """(dst, src) delivered EOS/DoneToken or reset: no marker is coming."""
        if self.coordinator is not None:
            self.coordinator.on_channel_closed(dst_id, src_id)

    def _replicate_proc(self, checkpoint: Checkpoint):
        """Asynchronously copy a checkpoint to its buddy node."""
        executor = self.executors[checkpoint.executor_id]
        buddy = self.executors[
            (checkpoint.executor_id + 1) % len(self.executors)
        ]
        if buddy.executor_id != checkpoint.executor_id and checkpoint.nbytes:
            yield self.cluster.link(executor.node.index, buddy.node.index).send(
                checkpoint.nbytes
            )
        # The source may have died (or been fenced) mid-replication, or
        # the buddy holding the copy may be gone; an uncommitted
        # checkpoint must stay unusable, so commit only on full transfer
        # to a live buddy from a live source.
        if (
            checkpoint.executor_id in self.crashed
            or buddy.executor_id in self.crashed
        ):
            return
        checkpoint.committed_at = self.sim.now
        self.stats["checkpoint_bytes_replicated"] += checkpoint.nbytes
        self._release_undurable(checkpoint)
        yield Timeout(0.0)

    def _release_undurable(self, checkpoint: Checkpoint) -> None:
        """A committed checkpoint may make completed recoveries durable.

        A victim's recovered state is only as durable as its new
        leader's first checkpoint captured *after* the recovery
        completed: once that commits, a later crash of the leader
        restores the merged state from the leader's own checkpoint and
        the victim's recovery never needs re-running.
        """
        if checkpoint.captured_at is None:
            return
        for victim in sorted(self._undurable):
            rec = self._undurable[victim]
            if (
                rec["leader"] == checkpoint.executor_id
                and checkpoint.captured_at >= rec["completed_at"]
            ):
                del self._undurable[victim]
                trace(
                    self.sim, "fault",
                    f"recovery of exec {victim} now durable",
                    leader=checkpoint.executor_id,
                    boundary=checkpoint.boundary,
                )

    # -- event application --------------------------------------------------
    def _event_proc(self, event: FaultEvent):
        yield Timeout(event.at_s)
        trace(
            self.sim, "fault", f"applying {event.kind.value}",
            target=event.target, duration_s=event.duration_s,
        )
        if event.kind is FaultKind.NODE_CRASH:
            self._apply_crash(event.target)
        elif event.kind is FaultKind.NIC_FLAP:
            target = self.executors[event.target]
            node = target.node
            pipes = [node.nic_tx, node.nic_rx]
            pipes.extend(getattr(target, "extra_pipes", ()))
            for pipe in pipes:
                pipe.degrade(event.factor)
            yield Timeout(event.duration_s)
            for pipe in pipes:
                pipe.restore()
        elif event.kind is FaultKind.DROP_CHUNK:
            self._drop_windows[event.target] = [
                event.at_s, event.at_s + event.duration_s, float(event.count)
            ]
        elif event.kind is FaultKind.DUPLICATE_DELTA:
            self._dup_windows[event.target] = [
                event.at_s, event.at_s + event.duration_s, float(event.count)
            ]
        elif event.kind is FaultKind.STALL:
            executor = self.executors[event.target]
            until = self.sim.now + event.duration_s
            for scheduler in executor.schedulers:
                scheduler.pause_until(until)
        elif event.kind is FaultKind.CREDIT_STARVATION:
            executor = self.executors[event.target]
            endpoints = self._inbound_endpoints(executor)
            for consumer in endpoints:
                consumer.withhold_credits = True
            yield Timeout(event.duration_s)
            core = executor.node.core(0)
            for consumer in endpoints:
                consumer.withhold_credits = False
                yield from consumer.flush_withheld(core)
        elif event.kind is FaultKind.NET_PARTITION:
            yield from self._partition_proc(event, symmetric=True)
        elif event.kind is FaultKind.ASYM_PARTITION:
            yield from self._partition_proc(event, symmetric=False)
        elif event.kind is FaultKind.SLOW_NODE:
            # Gray failure: the node keeps running (heartbeats flow, no
            # fence) but every priced operation takes 1/factor longer.
            node = self.executors[event.target].node
            node.cost_model.slow_down(event.factor)
            yield Timeout(event.duration_s)
            node.cost_model.restore_speed()
        elif event.kind is FaultKind.JITTER:
            # Inflate the data-plane latency of the target's links (both
            # directions) to factor x nominal; datagrams stay untouched
            # so the failure detector never sees the fault.
            target_node = self.executors[event.target].node
            nic = target_node.config.nic
            extra = (event.factor - 1.0) * (
                nic.propagation_latency_s + self.cluster.config.switch_latency_s
            )
            if event.peer is not None:
                peers = [self.executors[event.peer].node.index]
            else:
                peers = [
                    e.node.index for e in self.executors
                    if e.node.index != target_node.index
                ]
            for peer in peers:
                self.cluster.set_extra_latency(target_node.index, peer, extra)
                self.cluster.set_extra_latency(peer, target_node.index, extra)
            yield Timeout(event.duration_s)
            for peer in peers:
                self.cluster.clear_extra_latency(target_node.index, peer)
                self.cluster.clear_extra_latency(peer, target_node.index)
        else:  # pragma: no cover - FaultKind is exhaustive
            raise FaultError(f"unhandled fault kind {event.kind!r}")

    @staticmethod
    def _inbound_endpoints(target: Any) -> list:
        """Credit-bearing inbound consumer endpoints of one target.

        Slash executors expose a peer-keyed ``_in_channels`` dict (flush
        order = sorted peer id, as before); generic
        :class:`FaultTarget`\\ s list their endpoints directly.  Local
        (same-node memcpy) channels have no credit messages to withhold
        and are skipped.
        """
        channels = getattr(target, "_in_channels", None)
        if channels is not None:
            endpoints = [consumer for _peer, consumer in sorted(channels.items())]
        else:
            endpoints = list(target.in_channels)
        return [c for c in endpoints if hasattr(c, "flush_withheld")]

    def _partition_proc(self, event: FaultEvent, *, symmetric: bool):
        """Cut the target's links for the event's duration, then heal.

        Symmetric: both directions between the target and every other
        node.  Asymmetric: only the target's *outbound* direction — the
        target keeps hearing everyone (so it suspects nobody), while the
        rest of the cluster loses its heartbeats and may fence it.
        """
        target = event.target
        target_node = self.executors[target].node.index
        others = sorted(
            e.node.index for e in self.executors if e.node.index != target_node
        )
        self._fault_at.setdefault(target, self.sim.now)
        record = {
            "kind": event.kind.value,
            "target": target,
            "start_s": self.sim.now,
            "end_s": self.sim.now + event.duration_s,
            "symmetric": symmetric,
        }
        self._partitions.append(record)
        for other in others:
            self.cluster.block(target_node, other)
            if symmetric:
                self.cluster.block(other, target_node)
        yield Timeout(event.duration_s)
        for other in others:
            self.cluster.unblock(target_node, other)
            if symmetric:
                self.cluster.unblock(other, target_node)
        record["healed_at"] = self.sim.now
        trace(
            self.sim, "fault", f"partition of exec {target} healed",
            kind=event.kind.value,
        )

    def _apply_crash(self, victim: int) -> None:
        """Halt the victim.  Detection and promotion are NOT triggered
        here — the membership agents must genuinely notice the silence,
        reach quorum, and fence the victim before any takeover runs."""
        executor = self.executors[victim]
        if executor._finalized or executor.finished.fired:
            trace(self.sim, "fault", f"crash of exec {victim} no-op (finished)")
            return
        now = self.sim.now
        self.crashed.add(victim)
        self._crash_time[victim] = now
        self._fault_at.setdefault(victim, now)
        self._recovery_pending.add(victim)
        if self.partitioned is not None:
            self.partitioned.on_crash(victim)
        else:
            for scheduler in executor.schedulers:
                scheduler.halt()
            if self.coordinator is not None:
                self.coordinator.on_crash(victim)
        info = self._recovery.setdefault(victim, {})
        info["crashed_at"] = now
        info["fault_at"] = self._fault_at[victim]

    # -- fencing and takeover -------------------------------------------------
    def execute_takeover(self, victim: int, *, proposer: int, votes: int) -> None:
        """A quorum-backed fence of ``victim`` committed: run the takeover.

        Called by the membership service after quorum + confirmation
        grace.  The victim may still be alive (asymmetric partition): it
        is administratively halted here — with the term bump, that is
        what makes fencing a healthy node safe.  Idempotent: concurrent
        proposals for the same victim execute exactly one takeover.
        """
        if victim in self._takeover_started:
            return
        executor = self.executors[victim]
        if executor._finalized or executor.finished.fired:
            self._takeover_started.add(victim)
            trace(self.sim, "fault", f"fence of exec {victim} no-op (finished)")
            return
        self._takeover_started.add(victim)
        now = self.sim.now
        if victim not in self.crashed:
            self._apply_crash(victim)
        self._suspected_at[victim] = now
        info = self._recovery.setdefault(victim, {})
        info["detected_at"] = now
        info["promoted_at"] = now
        info["fenced_by"] = proposer
        info["votes"] = votes
        info.setdefault("fault_at", self._fault_at.get(victim, now))
        trace(
            self.sim, "fault", f"exec {victim} fenced out",
            proposer=proposer, votes=votes,
        )
        if self.partitioned is not None:
            # Partitioned recovery is a global restart, not a per-victim
            # takeover: hand the fence to the controller and stop here.
            if self.membership is not None:
                self.membership.announce_death(victim, proposer)
            self.partitioned.on_fence(victim)
            return
        # Completed-but-undurable recoveries whose state lived only in
        # this victim's memory must be redone from their own checkpoints.
        for undurable_victim in sorted(self._undurable):
            rec = self._undurable[undurable_victim]
            if rec["leader"] != victim:
                continue
            del self._undurable[undurable_victim]
            self._recovery_pending.add(undurable_victim)
            for partition in rec["led"]:
                self._recovering[partition] = undurable_victim
            trace(
                self.sim, "fault",
                f"re-queueing undurable recovery of exec {undurable_victim}",
                dead_leader=victim,
            )
            self.sim.process(
                self._takeover_proc(undurable_victim, rec["led"]),
                name=f"takeover.exec{undurable_victim}.redo",
            )
        # Partitions mid-restore by another victim's in-flight recovery
        # stay owned by it — its retry (also triggered by this fence, if
        # this victim was its promoted leader) restores them.
        led = [
            p for p in self.directory.partitions_led_by(victim)
            if self._recovering.get(p) in (None, victim)
        ]
        for partition in led:
            self._recovering[partition] = victim
        if self.membership is not None:
            self.membership.announce_death(victim, proposer)
        self.sim.process(
            self._takeover_proc(victim, led), name=f"takeover.exec{victim}"
        )

    def _takeover_proc(self, victim: int, led: list[int]):
        """Drive the victim's recovery to completion, surviving cascades.

        ``led`` is the fence-time snapshot of the partitions this
        takeover owns — ``partitions_led_by`` is *not* re-read on retry,
        because an aborted attempt may already have reassigned them to a
        now-dead leader.
        """
        info = self._recovery[victim]
        while True:
            alive = self.alive()
            if not alive:
                raise RecoveryError("no surviving executor to promote")
            new_leader = min(alive)
            info["promoted"] = new_leader
            trace(
                self.sim, "fault", f"recovering exec {victim}",
                promoted=new_leader,
            )
            try:
                yield from self._recovery_body(victim, new_leader, led)
                return
            except _RecoveryAborted:
                info["aborted_recoveries"] = info.get("aborted_recoveries", 0) + 1
                self._unsuppress(new_leader)
                trace(
                    self.sim, "fault",
                    f"recovery of exec {victim} aborted (leader {new_leader} died)",
                )
                # Retry only once the cluster itself has fenced the dead
                # leader — recovery must not outrun detection.
                while not self.takeover_started(new_leader):
                    yield Timeout(self.watchdog_period_s)

    def _abort_if_dead(self, victim: int, new_leader: int) -> None:
        if new_leader in self.crashed:
            raise _RecoveryAborted(
                f"leader {new_leader} died recovering {victim}"
            )

    def _restorable_checkpoint(self, victim: int) -> Checkpoint:
        """The newest checkpoint of ``victim`` that is actually fetchable.

        Committed checkpoints physically live on the buddy node; if the
        buddy is dead they are unreachable and restore falls back to the
        empty deployment checkpoint — boundary -1, full input replay.
        """
        buddy = (victim + 1) % len(self.executors)
        if buddy != victim and buddy in self.crashed:
            return self.checkpoints.initial_for(victim)
        if self.coordinator is not None:
            # Async-snapshot: only captures from *complete* rounds are
            # consistent cuts; an incomplete round's capture may have
            # committed via replication but must never be restored.
            checkpoint = self.coordinator.restorable_for(victim)
            if checkpoint is None:
                return self.checkpoints.initial_for(victim)
            return checkpoint
        return self.checkpoints.latest_committed(victim)

    # -- the recovery protocol ----------------------------------------------
    def _recovery_body(self, victim: int, new_leader: int, led: list[int]):
        """One recovery attempt; raises :class:`_RecoveryAborted` if the
        promoted leader dies mid-flight (every merge below is
        ledger-deduplicated, so the retry on the next survivor is
        idempotent)."""
        info = self._recovery[victim]
        nl_exec = self.executors[new_leader]
        core = nl_exec.node.core(0)
        self._suppress(new_leader)

        checkpoint = self._restorable_checkpoint(victim)
        info["checkpoint_boundary"] = checkpoint.boundary

        # Charge the checkpoint's transfer from the buddy to the promoted
        # leader (skipped when the promoted leader *is* the buddy, or
        # when restore fell back to the empty deployment checkpoint).
        buddy = self.executors[(victim + 1) % len(self.executors)]
        if (
            buddy.executor_id != new_leader
            and buddy.executor_id not in self.crashed
            and checkpoint.nbytes
        ):
            yield self.cluster.link(buddy.node.index, nl_exec.node.index).send(
                checkpoint.nbytes
            )
            self._abort_if_dead(victim, new_leader)

        # --- atomic install: restore + seed + reassign + retained merge ---
        # No simulated time may pass inside this block.  Reassignment and
        # the retained-backlog merge must share one instant: any delta a
        # helper collects strictly after it routes to the new leader over
        # the normal channel, so the per-helper epoch sequences stay dense.
        restored_windows: set[int] = set(checkpoint.pending)
        restore_pairs = 0
        for partition in led:
            store = nl_exec.handle.store_for(partition)
            for key, payload in checkpoint.partitions.get(partition, []):
                store.absorb(key, _copy_payload(payload))
                restore_pairs += 1
                if isinstance(key, tuple):
                    restored_windows.add(int(key[0]))
        for (operator_id, partition, helper), epoch in checkpoint.ledger.items():
            nl_exec.backend.ledger.seed(operator_id, partition, helper, epoch)
        for window, ingested_at in checkpoint.last_contribution.items():
            current = nl_exec._last_contribution.get(window, float("-inf"))
            if ingested_at > current:
                nl_exec._last_contribution[window] = ingested_at
        for partition in led:
            self.directory.reassign(partition, new_leader)
            # The partition changes hands: bump its term.  The old
            # leader's commits stay recorded under the old term, the new
            # leader's land under the new one — the registry can then
            # prove no same-term double commit ever happened.
            self.terms.bump(partition, victim, self.sim.now)
        retained_bytes_by_src: dict[int, int] = {}
        retained_merged = 0
        for partition in led:
            for source in sorted(e.executor_id for e in self.executors):
                for delta in self._retained.get((source, partition), []):
                    # Retained deltas carry their original watermarks, but
                    # the promoted leader's clock entries for the helpers
                    # must only advance through their live channels (their
                    # in-flight deltas to *this* executor may still lag),
                    # so the backlog merges watermark-neutral.
                    fresh = nl_exec.handle.merge_delta(
                        dataclasses.replace(delta, watermark=float("-inf"))
                    )
                    if fresh:
                        retained_merged += 1
                        self.note_partition_commit(partition, new_leader)
                        retained_bytes_by_src[source] = (
                            retained_bytes_by_src.get(source, 0) + delta.nbytes
                        )
                        for key, _payload in delta.pairs:
                            if isinstance(key, tuple):
                                restored_windows.add(int(key[0]))
        if nl_exec.trigger is not None:
            nl_exec.trigger.restore_pending(restored_windows)
        # --- end of the atomic instant ---

        info["restored_pairs"] = restore_pairs
        info["retained_deltas_merged"] = retained_merged

        # Pay for the retained-backlog transfers and the restore CPU after
        # the fact (a simulation simplification, documented in
        # docs/fault_tolerance.md): the state is consistent the moment it
        # is installed, and recovery completion waits for these charges.
        for source in sorted(retained_bytes_by_src):
            if source == new_leader:
                continue
            src_node = self.executors[source].node.index
            yield self.cluster.link(src_node, nl_exec.node.index).send(
                retained_bytes_by_src[source]
            )
            self._abort_if_dead(victim, new_leader)
        if restore_pairs:
            merge_cost = nl_exec.node.cost_model.op(
                nl_exec.costs.merge_pair,
                quantize_working_set(float(checkpoint.nbytes)),
                nl_exec.costs.merge_lines,
            )
            yield from core.execute(merge_cost, float(restore_pairs))
            self._abort_if_dead(victim, new_leader)

        # --- re-deliver the victim's own retained deltas -------------------
        # The victim may have collected (and therefore retained) epochs it
        # never finished shipping; survivors' ledgers dedupe what they
        # already merged and admit the rest, with original watermarks (the
        # victim really did ship/intend them).
        redelivered = 0
        for (source, partition), deltas in sorted(self._retained.items()):
            if source != victim:
                continue
            leader = self.directory.leader_of_partition(partition)
            if leader in self.crashed:
                continue  # that leader's own recovery merges these
            target = self.executors[leader]
            if leader != new_leader:
                total = sum(d.nbytes for d in deltas)
                if total:
                    yield self.cluster.link(
                        nl_exec.node.index, target.node.index
                    ).send(total)
                    self._abort_if_dead(victim, new_leader)
            for delta in deltas:
                fresh = target.handle.merge_delta(delta)
                if fresh:
                    redelivered += 1
                    self.note_partition_commit(partition, leader)
                    if target.trigger is not None:
                        target.trigger.note_slices(
                            int(key[0]) for key, _p in delta.pairs
                            if isinstance(key, tuple)
                        )
        info["victim_deltas_redelivered"] = redelivered

        # --- replay the victim's input from the checkpoint cut -------------
        yield from self._replay_input(victim, new_leader, checkpoint, info, led)
        self._abort_if_dead(victim, new_leader)

        # --- finish: the victim will never contribute again -----------------
        for executor in self.executors:
            if executor.executor_id in self.crashed:
                continue
            executor.backend.clock.advance(victim, float("inf"))
            executor._done_peers.add(victim)
        self._recovery_pending.discard(victim)
        self._unsuppress(new_leader)
        self._restored_from[victim] = checkpoint
        for partition in led:
            if self._recovering.get(partition) == victim:
                del self._recovering[partition]
        # The merged state exists only in the new leader's memory until
        # its next checkpoint (captured from now on) commits; a leader
        # crash inside that window re-runs this recovery.
        self._undurable[victim] = {
            "leader": new_leader,
            "led": list(led),
            "completed_at": self.sim.now,
        }
        info["recovered_at"] = self.sim.now
        info["recovery_s"] = self.sim.now - info["crashed_at"]
        trace(
            self.sim, "fault", f"recovery of exec {victim} complete",
            promoted=new_leader, recovery_s=info["recovery_s"],
        )
        for executor in self.executors:
            if executor.executor_id in self.crashed:
                continue
            yield from executor._check_triggers(executor.node.core(0))
            executor._maybe_finalize_soon()

    def _replay_input(
        self, victim: int, new_leader: int, checkpoint: Checkpoint, info: dict,
        restored: list[int],
    ):
        """Re-process the victim's flows from the checkpoint's positions.

        Segments between recorded cuts reproduce the victim's original
        epochs under their original identities — the ledgers of the
        surviving leaders admit exactly the ones that never arrived.  The
        final segment (everything past the last recorded cut) continues
        the sequence, covering input the victim never got to process.

        ``restored`` is the set of partitions the victim led (restored
        here from its checkpoint): only for those may replayed partials
        bypass the ledger and be absorbed directly — the checkpoint plus
        the replay IS their state.  Partials for every other partition,
        including the promoted leader's own, travel as epoch deltas under
        the victim's identity so the target's ledger dedupes the epochs
        the victim already shipped before crashing.
        """
        nl_exec = self.executors[new_leader]
        dead_exec = self.executors[victim]
        core = nl_exec.node.core(0)
        cost_model = nl_exec.node.cost_model
        crdt = nl_exec.handle.crdt
        led_set = set(restored)
        plan = dead_exec.plan

        flows = dead_exec.flows
        cuts = self._cuts[victim]
        segments: list[tuple[list[int], int]] = []
        for boundary in range(checkpoint.boundary + 1, len(cuts)):
            segments.append((cuts[boundary], boundary))
        segments.append(([len(flow) for flow in flows], len(cuts)))

        positions = list(checkpoint.positions) or [0] * len(flows)
        replayed_batches = 0
        replayed_records = 0
        reshipped = 0
        for end_positions, epoch in segments:
            staged: dict[int, dict[Any, Any]] = {}
            touched_led: set[int] = set()
            for thread, flow in enumerate(flows):
                start = positions[thread] if thread < len(positions) else 0
                end = end_positions[thread] if thread < len(end_positions) else start
                for stream_name, batch in flow[start:end]:
                    pipeline = plan.pipeline_for(stream_name)
                    read_cost = cost_model.cache.streaming_cost(batch.wire_bytes)
                    yield from core.execute(read_cost, 1.0)
                    self._abort_if_dead(victim, new_leader)
                    result = pipeline.process_batch(batch)
                    replayed_batches += 1
                    replayed_records += len(batch)
                    if not result.survivors:
                        continue
                    update_cost = cost_model.op(
                        nl_exec.costs.update,
                        quantize_working_set(nl_exec._ws_bytes + 4096),
                        nl_exec.costs.update_lines,
                    )
                    yield from core.execute(update_cost, float(result.survivors))
                    self._abort_if_dead(victim, new_leader)
                    now = self.sim.now
                    for state_key, partial in result.partials.items():
                        partition = nl_exec.handle.partition_of(state_key)
                        if partition in led_set:
                            nl_exec.handle.store_for(partition).absorb(
                                state_key, partial
                            )
                            if isinstance(state_key, tuple):
                                window = int(state_key[0])
                                touched_led.add(window)
                                if now > nl_exec._last_contribution.get(
                                    window, float("-inf")
                                ):
                                    nl_exec._last_contribution[window] = now
                        else:
                            bucket = staged.setdefault(partition, {})
                            if state_key in bucket:
                                bucket[state_key] = crdt.merge(
                                    bucket[state_key], partial
                                )
                            else:
                                bucket[state_key] = partial
            if touched_led and nl_exec.trigger is not None:
                nl_exec.trigger.restore_pending(touched_led)
            # Ship this segment's remote partials under the victim's
            # original epoch identity for the segment.
            for partition in sorted(staged):
                pairs = tuple(staged[partition].items())
                nbytes = DELTA_HEADER_BYTES + sum(
                    16 + crdt.value_bytes(payload) for _k, payload in pairs
                )
                delta = EpochDelta(
                    operator_id=plan.operator_id,
                    partition=partition,
                    from_executor=victim,
                    epoch=epoch,
                    pairs=pairs,
                    nbytes=nbytes,
                    watermark=float("-inf"),
                )
                leader = self.directory.leader_of_partition(partition)
                # Retain the replayed delta like an original cut delta,
                # whether or not it can ship right now: a merge into a
                # live leader exists only in that leader's memory, and if
                # the leader crashes before checkpointing it, *its*
                # recovery re-merges this backlog.  The retained list
                # stays dense per (victim, partition) — originals cover
                # epochs 0..c, replays b+1..c+1 — so ledger admission
                # dedupes every epoch that also landed live.
                self._retained.setdefault(
                    (victim, partition), []
                ).append(delta)
                if leader in self.crashed:
                    # The partition is between leaders (a cascade is in
                    # flight); whichever recovery ends up restoring it
                    # merges the retained backlog.
                    continue
                target = self.executors[leader]
                if leader != new_leader:
                    yield self.cluster.link(
                        nl_exec.node.index, target.node.index
                    ).send(nbytes)
                    self._abort_if_dead(victim, new_leader)
                fresh = target.handle.merge_delta(delta)
                if fresh:
                    reshipped += 1
                    self.note_partition_commit(partition, leader)
                    if target.trigger is not None:
                        if leader == new_leader:
                            target.trigger.restore_pending(
                                int(key[0]) for key, _p in pairs
                                if isinstance(key, tuple)
                            )
                        else:
                            target.trigger.note_slices(
                                int(key[0]) for key, _p in pairs
                                if isinstance(key, tuple)
                            )
            positions = list(end_positions)
        info["replayed_batches"] = replayed_batches
        info["replayed_records"] = replayed_records
        info["reshipped_deltas"] = reshipped
        yield Timeout(0.0)

    # -- results & reporting -------------------------------------------------
    def committed_results(self, executor_id: int) -> Checkpoint:
        """The committed output of a crashed executor.

        This is the exact checkpoint its recovery restored from — not
        ``latest_committed``, because a replication that was in flight at
        crash time may commit *after* recovery already replayed past its
        cut, and counting that later checkpoint would double-count the
        replayed output.
        """
        if executor_id not in self.crashed:
            raise RecoveryError(f"executor {executor_id} did not crash")
        restored = self._restored_from.get(executor_id)
        if restored is not None:
            return restored
        return self.checkpoints.latest_committed(executor_id)

    def _crash_report(self) -> dict:
        """Per-victim recovery info plus the derived latency columns."""
        first_suspected = (
            self.membership.first_suspected if self.membership is not None else {}
        )
        crashes: dict[str, dict] = {}
        for victim, info in self._recovery.items():
            entry = dict(info)
            fault_at = entry.get("fault_at")
            suspected_at = first_suspected.get(victim)
            if suspected_at is not None:
                entry["first_suspected_at"] = suspected_at
            if fault_at is not None:
                if suspected_at is not None:
                    entry["detection_s"] = suspected_at - fault_at
                if "promoted_at" in entry:
                    entry["promotion_s"] = entry["promoted_at"] - fault_at
                if "recovered_at" in entry:
                    entry["mttr_s"] = entry["recovered_at"] - fault_at
            crashes[str(victim)] = entry
        return crashes

    def report(self) -> dict:
        """JSON-able summary of what the plan did and what recovery cost."""
        taken, committed = self.checkpoints.counts()
        return {
            "seed": self.plan.seed,
            "strategy": self.strategy,
            "events": [
                {
                    "kind": event.kind.value,
                    "at_s": event.at_s,
                    "target": event.target,
                    "duration_s": event.duration_s,
                }
                for event in self.plan
            ],
            "crashes": self._crash_report(),
            "partitions": [dict(p) for p in self._partitions],
            "membership": (
                self.membership.report() if self.membership is not None else {}
            ),
            "terms": self.terms.summary(),
            "checkpoints_taken": taken,
            "checkpoints_committed": committed,
            **self.stats,
        }


def _copy_payload(payload: Any) -> Any:
    return copy.deepcopy(payload)
