"""Marker-based asynchronous consistent snapshots (the second strategy).

Slash's native recovery (``injector.py``) checkpoints *synchronously at
every epoch cut* and replicates to a buddy — cheap per cut, but the
checkpoint frequency is welded to the epoch length.  This module adds
the classic alternative: Chandy-Lamport barrier rounds in the style of
Flink's asynchronous snapshots (Carbone et al., "Lightweight
Asynchronous Snapshots for Distributed Dataflows"), selectable per run
via ``recovery_strategy="async-snapshot"``.

Two coordinators live here:

* :class:`SnapshotCoordinator` drives rounds over Slash executors.  A
  round starts on a timer; each participant captures its state at its
  *next epoch cut* and emits a :class:`~repro.core.executor.SnapshotMarker`
  in-band right after that cut's deltas on every outbound channel (one
  sender per channel, so FIFO puts the marker exactly at the barrier).
  Receivers align: a delta arriving *after* the sender's marker but
  *before* the local capture is post-snapshot and spills until the local
  capture; a delta arriving *before* the sender's marker but after the
  local capture is in-flight channel state of the cut (recorded for the
  ``snapshot-consistency`` invariant; the epoch ledger's admission
  frontier already covers it on restore).  A round completes when every
  participant captured and every channel delivered its marker (or
  closed); the captures persist into the shared
  :class:`~repro.faults.checkpoint.CheckpointStore` and replicate to the
  buddy like any epoch-buddy checkpoint.  Crash recovery then restores
  the victim's capture from the *newest complete round* instead of its
  newest per-cut checkpoint.

* :class:`PartitionedChaosController` gives the partitioned baselines
  (UpPar) the whole recovery plane they lacked: membership wiring via
  per-node proxies, aligned snapshot rounds (partitioners flush, record
  their absolute input cursors, and send markers; consumers spill
  post-marker buffers until every input channel markered, Flink's
  aligned-checkpoint backpressure), and Flink-style **global restart**
  on a fence — the generation halts, a new generation over the
  survivors restores the merged snapshot state (re-bucketed to the new
  consumer count) and replays every flow from its captured cursor.

Layering: this module sits with ``faults`` (above ``core``, below
``baselines``); the partitioned engine hands it duck-typed run-context
objects, so nothing here imports from ``repro.baselines``.
"""

from __future__ import annotations

import copy
from typing import Any, Optional

from repro.channel.channel import CHANNEL_EOS
from repro.core.executor import DoneToken, SnapshotMarker
from repro.faults.checkpoint import CHECKPOINT_HEADER_BYTES, Checkpoint
from repro.membership import MembershipService
from repro.simnet.kernel import Timeout
from repro.simnet.trace import trace
from repro.state.epoch import EpochDelta

#: Fraction of ``detect_s`` the controller waits between halting a dead
#: generation and starting its replacement (cancel + redeploy latency).
REDEPLOY_FRACTION = 0.5


# ---------------------------------------------------------------------------
# Slash: Chandy-Lamport rounds over the n^2 delta channels
# ---------------------------------------------------------------------------
class _SlashRound:
    """Bookkeeping of one outstanding marker round over Slash executors."""

    def __init__(self, round_id: int, started_at: float, participants: set[int]):
        self.id = round_id
        self.started_at = started_at
        self.participants = set(participants)
        #: src -> capture boundary (``epochs_shipped - 1`` at the cut).
        self.boundaries: dict[int, int] = {}
        #: executor -> its capture (a Checkpoint in the shared store).
        self.captured: dict[int, Checkpoint] = {}
        #: (dst, src) pairs whose marker arrived at dst.
        self.marker_seen: set[tuple[int, int]] = set()
        #: (dst, src) pairs still owing a marker (or a close).
        self.pending_pairs: set[tuple[int, int]] = set()
        #: dst -> [(src, delta, ingest_times)] aligned/spilled post-marker
        #: deltas, merged at dst's capture instant.
        self.spills: dict[int, list[tuple[int, EpochDelta, tuple]]] = {}
        #: (dst, src) -> [(operator_id, partition, epoch)] in-flight
        #: channel state (pre-marker arrivals after dst's capture).
        self.channel_state: dict[tuple[int, int], list[tuple[str, int, int]]] = {}
        self.completed_at: Optional[float] = None
        self.failed = False


class SnapshotCoordinator:
    """Drives single-outstanding marker rounds over a Slash deployment."""

    def __init__(self, injector: Any):
        self.injector = injector
        self.sim = injector.sim
        self.interval_s = injector.snapshot_interval_s
        self._next_round = 0
        self.active: Optional[_SlashRound] = None
        self.completed: list[_SlashRound] = []
        #: Executors that already shipped their final cut: no further
        #: cuts will happen, so no new round can complete.
        self._final_cut: set[int] = set()

    # -- the driver ----------------------------------------------------------
    def driver(self):
        """Start a round every ``interval_s`` while one can still finish."""
        while True:
            yield Timeout(self.interval_s)
            if self.injector.deployment_finished():
                return
            if self.active is not None:
                continue  # single outstanding round
            if not self._start_round():
                return

    def _start_round(self) -> bool:
        injector = self.injector
        participants: set[int] = set()
        for executor in injector.executors:
            eid = executor.executor_id
            if eid in injector.crashed:
                continue
            if eid in self._final_cut or executor._finalized:
                # A participant that will never cut again can never
                # capture: the protocol is out of barriers.
                return False
            participants.add(eid)
        if not participants:
            return False
        rnd = _SlashRound(self._next_round, self.sim.now, participants)
        rnd.pending_pairs = {
            (dst, src)
            for dst in participants
            for src in participants
            if dst != src
        }
        self._next_round += 1
        self.active = rnd
        self.injector.stats["snapshot_rounds_started"] += 1
        trace(
            self.sim, "snapshot", f"round {rnd.id} started",
            participants=sorted(participants),
        )
        return True

    # -- hooks from the injector / executors ---------------------------------
    def on_cut(self, executor: Any, boundary: int, final: bool) -> Optional[SnapshotMarker]:
        """An executor reached an epoch cut; capture if a round is pending.

        Returns the marker the shipper threads must emit right after the
        cut's deltas, or None when no round is waiting on this executor.
        """
        eid = executor.executor_id
        if final:
            self._final_cut.add(eid)
        rnd = self.active
        if rnd is None or eid not in rnd.participants or eid in rnd.captured:
            return None
        checkpoint = Checkpoint.capture(executor, boundary=boundary)
        checkpoint.captured_at = self.sim.now
        self.injector.checkpoints.add(checkpoint)
        self.sim.process(
            self.injector._replicate_proc(checkpoint),
            name=f"snap.r{rnd.id}.exec{eid}",
        )
        rnd.captured[eid] = checkpoint
        rnd.boundaries[eid] = boundary
        self.injector.stats["snapshot_captures"] += 1
        trace(
            self.sim, "snapshot", f"exec {eid} captured",
            round=rnd.id, boundary=boundary,
        )
        self._merge_spills(rnd, executor)
        self._maybe_complete(rnd)
        return SnapshotMarker(round_id=rnd.id, from_executor=eid, boundary=boundary)

    def on_marker(self, executor: Any, peer_id: int, marker: SnapshotMarker) -> None:
        """A barrier marker arrived at ``executor`` from ``peer_id``."""
        self.injector.stats["snapshot_markers_seen"] += 1
        rnd = self.active
        if rnd is None or marker.round_id != rnd.id:
            return  # marker of an aborted round: nothing to align against
        dst = executor.executor_id
        rnd.boundaries.setdefault(marker.from_executor, marker.boundary)
        rnd.marker_seen.add((dst, peer_id))
        rnd.pending_pairs.discard((dst, peer_id))
        self._maybe_complete(rnd)

    def intercept(self, executor: Any, peer_id: int, delta: EpochDelta, ingest_times: tuple) -> bool:
        """Decide a delta's fate relative to the outstanding round.

        True means the delta was spilled (post-marker, pre-local-capture)
        and the merge task must NOT merge it now; the spill merges at the
        local capture instant.  False means merge normally — recording it
        as in-flight channel state when it is pre-marker, post-capture.
        """
        rnd = self.active
        if rnd is None:
            return False
        dst = executor.executor_id
        if dst not in rnd.participants or peer_id not in rnd.participants:
            return False
        if (dst, peer_id) in rnd.marker_seen:
            if dst in rnd.captured:
                return False  # both sides past the barrier: normal data
            rnd.spills.setdefault(dst, []).append(
                (peer_id, delta, tuple(ingest_times))
            )
            self.injector.stats["snapshot_deltas_spilled"] += 1
            return True
        if dst in rnd.captured:
            # In-flight channel state of the cut.  The merge proceeds —
            # dst's captured ledger frontier stops exactly before these
            # epochs, so a restore replays them — and the record feeds
            # the snapshot-consistency invariant.
            rnd.channel_state.setdefault((dst, peer_id), []).append(
                (delta.operator_id, delta.partition, delta.epoch)
            )
            self.injector.stats["snapshot_channel_deltas"] += 1
        return False

    def on_channel_closed(self, dst_id: int, src_id: int) -> None:
        """EOS/DoneToken/reset on (dst, src): no marker will ever come."""
        rnd = self.active
        if rnd is None:
            return
        rnd.pending_pairs.discard((dst_id, src_id))
        self._maybe_complete(rnd)

    def on_crash(self, victim: int) -> None:
        """A participant died: its capture is unreachable, abort the round."""
        rnd = self.active
        if rnd is not None and victim in rnd.participants:
            self._fail(rnd, f"participant {victim} crashed")

    # -- internals -----------------------------------------------------------
    def _merge_spills(self, rnd: _SlashRound, executor: Any) -> None:
        """Merge the deltas spilled for ``executor``, post-capture.

        Mirrors the merge task's fresh-delta bookkeeping (commit
        registry, ingest times, trigger slices) without the CPU charge —
        the merge cost was already paid when the delta arrived and was
        diverted to the spill.  Trigger *checks* are deferred to the next
        natural check; firing late is always safe.
        """
        eid = executor.executor_id
        for _src, delta, ingest_times in rnd.spills.pop(eid, []):
            fresh = executor.handle.merge_delta(delta)
            if not fresh:
                continue
            self.injector.note_partition_commit(delta.partition, eid)
            for win, ingested_at in ingest_times:
                current = executor._last_contribution.get(win, float("-inf"))
                if ingested_at > current:
                    executor._last_contribution[win] = ingested_at
            if executor.trigger is not None:
                executor.trigger.note_slices(
                    key[0] for key, _p in delta.pairs if isinstance(key, tuple)
                )

    def _fail(self, rnd: _SlashRound, reason: str) -> None:
        rnd.failed = True
        self.active = None
        self.injector.stats["snapshot_rounds_failed"] += 1
        trace(self.sim, "snapshot", f"round {rnd.id} aborted", reason=reason)
        # Spilled deltas are ordinary post-snapshot data once the round
        # is gone: merge them into any still-live holders.
        for dst in sorted(rnd.spills):
            if dst in self.injector.crashed:
                continue
            self._merge_spills(rnd, self.injector.executors[dst])

    def _maybe_complete(self, rnd: _SlashRound) -> None:
        if rnd.failed or self.active is not rnd:
            return
        if set(rnd.captured) != rnd.participants or rnd.pending_pairs:
            return
        rnd.completed_at = self.sim.now
        self.active = None
        self.completed.append(rnd)
        self.injector.stats["snapshot_rounds_complete"] += 1
        trace(
            self.sim, "snapshot", f"round {rnd.id} complete",
            captures=len(rnd.captured),
            duration_s=rnd.completed_at - rnd.started_at,
        )
        sanitizer = getattr(self.sim, "sanitize", None)
        if sanitizer is not None:
            sanitizer.note_snapshot_round(
                round_id=rnd.id,
                participants=sorted(rnd.participants),
                boundaries=dict(rnd.boundaries),
                frontiers={
                    eid: dict(ckpt.ledger) for eid, ckpt in rnd.captured.items()
                },
                channel_state={
                    pair: list(entries)
                    for pair, entries in rnd.channel_state.items()
                },
            )

    def restorable_for(self, victim: int) -> Optional[Checkpoint]:
        """The victim's capture from the newest usable complete round.

        Usable means the capture replicated (committed) — the buddy-dead
        fallback is the injector's, which checks before calling here.
        """
        best: Optional[Checkpoint] = None
        for rnd in self.completed:
            checkpoint = rnd.captured.get(victim)
            if checkpoint is None or checkpoint.committed_at is None:
                continue
            if best is None or checkpoint.boundary > best.boundary:
                best = checkpoint
        return best


# ---------------------------------------------------------------------------
# Partitioned baselines: aligned snapshots + global restart
# ---------------------------------------------------------------------------
class _ProxySignal:
    """Mimics a Signal's ``fired`` for the injector's finished checks."""

    def __init__(self, controller: "PartitionedChaosController"):
        self._controller = controller

    @property
    def fired(self) -> bool:
        return self._controller.finished


class PartitionedNodeProxy:
    """Stands in for a Slash executor in membership/injector bookkeeping.

    One per node of a partitioned deployment.  The injector and the
    membership service only touch ``executor_id``, ``node``, the
    finished flags, and (for credit starvation) ``in_channels``.
    """

    def __init__(self, controller: "PartitionedChaosController", node: Any, executor_id: int):
        self.controller = controller
        self.node = node
        self.executor_id = executor_id
        self.flows: tuple = ()
        self.finished = _ProxySignal(controller)

    @property
    def _finalized(self) -> bool:
        return self.controller.finished

    @property
    def in_channels(self) -> list:
        return self.controller.ctx.inbound_endpoints(self.node.index)


class _PartitionedRound:
    """One aligned snapshot round over a partitioned generation."""

    def __init__(self, round_id: int, started_at: float, generation: int):
        self.id = round_id
        self.started_at = started_at
        self.generation = generation
        #: Committed output of *prior* generations, frozen at round
        #: start (== at generation start; the base only changes on
        #: restart).  Restoring from this round re-bases on these plus
        #: the captures below.
        self.base_aggregates: dict = {}
        self.base_joins: list = []
        self.base_emitted = 0
        self.pending_partitioners: set[int] = set()
        self.pending_consumers: set[int] = set()
        #: flow_id -> absolute batch cursor at the partitioner's barrier.
        self.cursors: dict[int, int] = {}
        #: consumer gid -> frozen state/results at its aligned capture.
        self.consumer_caps: dict[int, dict] = {}
        #: consumer gid -> input-channel indexes whose marker arrived.
        self.markered: dict[int, set[int]] = {}
        #: consumer gid -> [(index, channel, message)] spilled post-marker.
        self.spills: dict[int, list] = {}
        #: Invariant counter: data merged on a markered channel before
        #: the local capture (must stay 0 — alignment would be broken).
        self.post_marker_merges = 0
        self.checkpoints: list[Checkpoint] = []
        self.completed_at: Optional[float] = None
        self.failed = False


class PartitionedChaosController:
    """Recovery plane for the partitioned baselines (UpPar).

    Owns the node proxies the injector/membership address, drives
    aligned snapshot rounds over the current generation, and executes
    the Flink-style global restart when the membership fences a node.
    The run context (``repro.baselines.partitioned._RunContext``) is
    duck-typed: it must expose ``sim``, ``cluster``, ``nodes``, ``gen``
    (the current generation), ``inbound_endpoints``, ``halt_node``,
    ``halt_generation`` and ``restart_generation``.
    """

    def __init__(self, ctx: Any):
        self.ctx = ctx
        self.sim = ctx.sim
        self.proxies = [
            PartitionedNodeProxy(self, ctx.cluster.node(index), index)
            for index in range(ctx.nodes)
        ]
        self.injector: Any = None
        self._next_round = 0
        self.active: Optional[_PartitionedRound] = None
        self.completed: list[_PartitionedRound] = []
        # Committed output of completed generations (see collect()).
        self.base_aggregates: dict = {}
        self.base_joins: list = []
        self.base_emitted = 0
        self.restarting = False
        self._pending_fences: list[int] = []
        self._restart_proc_running = False
        self.generations_started = 1

    def bind(self, injector: Any) -> None:
        self.injector = injector

    @property
    def finished(self) -> bool:
        """Deployment-finished for the membership agents' exit check."""
        if self.restarting or self._pending_fences:
            return False
        gen = self.ctx.gen
        return all(consumer.done for consumer in gen.consumers)

    # -- snapshot rounds ------------------------------------------------------
    def driver(self):
        interval = self.injector.snapshot_interval_s
        while True:
            yield Timeout(interval)
            if self.finished:
                return
            if self.active is not None or self.restarting:
                continue
            self._start_round()

    def _start_round(self) -> None:
        gen = self.ctx.gen
        rnd = _PartitionedRound(self._next_round, self.sim.now, gen.number)
        self._next_round += 1
        rnd.base_aggregates = dict(self.base_aggregates)
        rnd.base_joins = list(self.base_joins)
        rnd.base_emitted = self.base_emitted
        self.active = rnd
        self.injector.stats["snapshot_rounds_started"] += 1
        for partitioner in gen.partitioners:
            if partitioner.finished_body:
                # Already done: its EOS was the barrier; cursors are full.
                rnd.cursors.update(partitioner.abs_cursors())
            else:
                rnd.pending_partitioners.add(partitioner.gid)
                partitioner.snapshot_request = rnd.id
        for consumer in gen.consumers:
            if consumer.done:
                self._capture_consumer(rnd, consumer)
            else:
                rnd.pending_consumers.add(consumer.gid)
                rnd.markered[consumer.gid] = set()
        trace(
            self.sim, "snapshot", f"aligned round {rnd.id} started",
            generation=gen.number,
            partitioners=len(rnd.pending_partitioners),
            consumers=len(rnd.pending_consumers),
        )
        self._maybe_complete(rnd)

    def note_partitioner_capture(self, round_id: int, partitioner: Any, cursors: dict[int, int]) -> None:
        """A partitioner flushed, recorded its cursors, and will marker."""
        rnd = self.active
        if rnd is None or rnd.id != round_id:
            return
        if partitioner.gid not in rnd.pending_partitioners:
            return
        rnd.cursors.update(cursors)
        rnd.pending_partitioners.discard(partitioner.gid)
        self._maybe_complete(rnd)

    def note_partitioner_finished(self, partitioner: Any) -> None:
        """EOS acts as the barrier for a partitioner that finishes mid-round."""
        rnd = self.active
        if rnd is None or partitioner.gid not in rnd.pending_partitioners:
            return
        rnd.cursors.update(partitioner.abs_cursors())
        rnd.pending_partitioners.discard(partitioner.gid)
        self._maybe_complete(rnd)

    def on_consumer_payload(self, consumer: Any, index: int, channel: Any, payload: Any) -> Optional[str]:
        """Classify an inbound payload: ``"marker"``, ``"spill"``, or None.

        Spilled messages keep their channel credit until the capture
        replays them — the alignment backpressure of Flink's aligned
        checkpoints.  Deadlock-free: a partitioner's marker always
        precedes its own post-marker data, so the channels the consumer
        still *needs* (un-markered ones) keep draining normally.
        """
        rnd = self.active
        if isinstance(payload, SnapshotMarker):
            if (
                rnd is not None
                and payload.round_id == rnd.id
                and consumer.gid in rnd.pending_consumers
            ):
                rnd.markered[consumer.gid].add(index)
            self.injector.stats["snapshot_markers_seen"] += 1
            return "marker"
        if rnd is None or consumer.gid not in rnd.pending_consumers:
            return None
        if payload is CHANNEL_EOS or isinstance(payload, DoneToken):
            return None
        if index in rnd.markered.get(consumer.gid, ()):
            rnd.spills.setdefault(consumer.gid, []).append(
                (index, channel, payload)
            )
            self.injector.stats["snapshot_deltas_spilled"] += 1
            return "spill"
        return None

    def note_consumer_merge(self, consumer: Any, index: int) -> None:
        """Invariant probe: a data buffer is about to merge at a consumer.

        If its channel already markered and the consumer has not
        captured, alignment is broken — counted here, asserted at round
        completion by the sanitizer's snapshot-consistency check.
        """
        rnd = self.active
        if rnd is None or consumer.gid not in rnd.pending_consumers:
            return
        if index in rnd.markered.get(consumer.gid, ()):
            rnd.post_marker_merges += 1

    def maybe_capture(self, consumer: Any):
        """Capture the consumer once every input channel markered-or-done,
        then replay its spilled buffers (a generator: replays run through
        the consumer's own handler, paying their normal costs)."""
        rnd = self.active
        if rnd is None or consumer.gid not in rnd.pending_consumers:
            return
        markered = rnd.markered.get(consumer.gid, set())
        for position in range(len(consumer.channels)):
            if position not in markered and not consumer.channel_done[position]:
                return
        self._capture_consumer(rnd, consumer)
        for index, channel, message in rnd.spills.pop(consumer.gid, []):
            yield from consumer._handle(index, channel, message)
        self._maybe_complete(rnd)

    def _capture_consumer(self, rnd: _PartitionedRound, consumer: Any) -> None:
        rnd.consumer_caps[consumer.gid] = {
            "node": consumer.node.index,
            "state": copy.deepcopy(consumer.state),
            "aggregates": dict(consumer.results_aggregates),
            "joins": list(consumer.results_joins),
            "emitted": consumer.emitted,
            "state_bytes": consumer.state_bytes,
        }
        rnd.pending_consumers.discard(consumer.gid)
        self.injector.stats["snapshot_captures"] += 1

    def _maybe_complete(self, rnd: _PartitionedRound) -> None:
        if rnd.failed or self.active is not rnd:
            return
        if rnd.pending_partitioners or rnd.pending_consumers:
            return
        rnd.completed_at = self.sim.now
        self.active = None
        self.completed.append(rnd)
        self.injector.stats["snapshot_rounds_complete"] += 1
        # Persist one checkpoint per node (its consumers' captures) into
        # the shared store and replicate to the buddy node.
        by_node: dict[int, list[dict]] = {}
        for caps in rnd.consumer_caps.values():
            by_node.setdefault(caps["node"], []).append(caps)
        for node_index in range(self.ctx.nodes):
            caps_list = by_node.get(node_index, [])
            nbytes = CHECKPOINT_HEADER_BYTES + sum(
                int(caps["state_bytes"]) + 32 * len(caps["aggregates"])
                for caps in caps_list
            )
            checkpoint = Checkpoint(
                executor_id=node_index,
                boundary=rnd.id,
                positions=[],
                partitions={},
                ledger={},
                pending=set(),
                last_contribution={},
                nbytes=nbytes,
                captured_at=self.sim.now,
            )
            self.injector.checkpoints.add(checkpoint)
            rnd.checkpoints.append(checkpoint)
            self.sim.process(
                self.injector._replicate_proc(checkpoint),
                name=f"snap.part.r{rnd.id}.n{node_index}",
            )
        trace(
            self.sim, "snapshot", f"aligned round {rnd.id} complete",
            captures=len(rnd.consumer_caps),
            duration_s=rnd.completed_at - rnd.started_at,
        )
        sanitizer = getattr(self.sim, "sanitize", None)
        if sanitizer is not None:
            sanitizer.note_aligned_round(
                round_id=rnd.id,
                captures=len(rnd.consumer_caps),
                post_marker_merges=rnd.post_marker_merges,
            )

    def _fail_round(self, rnd: _PartitionedRound, reason: str) -> None:
        if rnd.failed:
            return
        rnd.failed = True
        if self.active is rnd:
            self.active = None
        self.injector.stats["snapshot_rounds_failed"] += 1
        # Spills die with the generation (a restart always follows a
        # round failure — only crashes/fences fail rounds).
        trace(self.sim, "snapshot", f"aligned round {rnd.id} aborted", reason=reason)

    # -- crash handling -------------------------------------------------------
    def on_crash(self, victim: int) -> None:
        """The plan killed node ``victim``: halt its workers in place."""
        if self.active is not None:
            self._fail_round(self.active, f"node {victim} crashed")
        self.ctx.halt_node(victim)

    def on_fence(self, victim: int) -> None:
        """A quorum-backed fence committed: schedule the global restart."""
        self._pending_fences.append(victim)
        self.restarting = True
        if self.active is not None:
            self._fail_round(self.active, f"node {victim} fenced")
        self.ctx.halt_generation()
        if not self._restart_proc_running:
            self._restart_proc_running = True
            self.sim.process(
                self._restart_proc(), name=f"part.restart.n{victim}"
            )

    def _restart_proc(self):
        """Halt -> redeploy wait -> restore newest usable round -> replay.

        Loops while fences keep arriving (a cascade batches into as few
        restarts as the fence timing allows); each iteration rebuilds
        one generation over the then-current survivors.
        """
        injector = self.injector
        try:
            while self._pending_fences:
                yield Timeout(injector.detect_s * REDEPLOY_FRACTION)
                victims = list(self._pending_fences)
                del self._pending_fences[: len(victims)]
                survivors = [
                    index for index in range(self.ctx.nodes)
                    if index not in injector.crashed
                ]
                if not survivors:
                    raise RuntimeError("no surviving node to restart on")
                rnd = self._restorable_round()
                restore = self._build_restore(rnd)
                # Charge the snapshot fetch: every crashed node's capture
                # travels from its buddy to the restart coordinator.
                if rnd is not None:
                    fetch_node = self.proxies[survivors[0]].node.index
                    for checkpoint in rnd.checkpoints:
                        if checkpoint.executor_id not in injector.crashed:
                            continue
                        buddy = (checkpoint.executor_id + 1) % self.ctx.nodes
                        if buddy != fetch_node and checkpoint.nbytes:
                            yield self.ctx.cluster.link(
                                self.proxies[buddy].node.index, fetch_node
                            ).send(checkpoint.nbytes)
                replay = self.ctx.restart_generation(survivors, restore)
                self.generations_started += 1
                now = self.sim.now
                for victim in victims:
                    info = injector._recovery.setdefault(victim, {})
                    info["checkpoint_boundary"] = (
                        rnd.id if rnd is not None else -1
                    )
                    info["restored_pairs"] = restore["restored_pairs"]
                    info["replayed_batches"] = replay["replayed_batches"]
                    info["replayed_records"] = replay["replayed_records"]
                    info["recovered_at"] = now
                    info["recovery_s"] = now - info.get("crashed_at", now)
                    injector._recovery_pending.discard(victim)
                trace(
                    self.sim, "snapshot",
                    f"generation restarted after fence of {sorted(victims)}",
                    survivors=survivors,
                    round=rnd.id if rnd is not None else -1,
                    replayed_batches=replay["replayed_batches"],
                )
        finally:
            self._restart_proc_running = False
            self.restarting = False

    def _restorable_round(self) -> Optional[_PartitionedRound]:
        """Newest complete round whose captures are all still reachable.

        A node's capture lives locally (node alive) or as the committed
        replica on its buddy; a dead owner with a dead buddy — or with a
        replication that never committed — makes the whole round
        unusable, because a global restore needs every node's slice.
        """
        crashed = self.injector.crashed
        best: Optional[_PartitionedRound] = None
        for rnd in self.completed:
            usable = True
            for checkpoint in rnd.checkpoints:
                owner = checkpoint.executor_id
                if owner not in crashed:
                    continue
                buddy = (owner + 1) % self.ctx.nodes
                if (
                    buddy == owner
                    or buddy in crashed
                    or checkpoint.committed_at is None
                ):
                    usable = False
                    break
            if usable and (best is None or rnd.id > best.id):
                best = rnd
        return best

    def _build_restore(self, rnd: Optional[_PartitionedRound]) -> dict:
        """Merge a round's captures into one restore bundle and re-base.

        The captured results become this run's committed base output:
        the replacement generation re-derives everything after the cut
        (restored state + replay), so post-capture output of the dead
        generation is discarded, exactly like Slash discards a victim's
        post-checkpoint emissions.
        """
        if rnd is None:
            self.base_aggregates = {}
            self.base_joins = []
            self.base_emitted = 0
            return {
                "round_id": -1, "cursors": {}, "state": {},
                "restored_pairs": 0,
            }
        state: dict = {}
        aggregates = dict(rnd.base_aggregates)
        joins = list(rnd.base_joins)
        emitted = rnd.base_emitted
        for gid in sorted(rnd.consumer_caps):
            caps = rnd.consumer_caps[gid]
            state.update(copy.deepcopy(caps["state"]))
            aggregates.update(caps["aggregates"])
            joins.extend(caps["joins"])
            emitted += caps["emitted"]
        self.base_aggregates = aggregates
        self.base_joins = joins
        self.base_emitted = emitted
        return {
            "round_id": rnd.id,
            "cursors": dict(rnd.cursors),
            "state": state,
            "restored_pairs": len(state),
        }

    # -- results ---------------------------------------------------------------
    def committed_base(self) -> tuple[dict, list, int]:
        """(aggregates, joins, emitted) of all completed generations."""
        return self.base_aggregates, self.base_joins, self.base_emitted


def build_membership(injector: Any, *, heartbeat_period_s: float,
                     phi_threshold: float, confirm_s: float,
                     ack_timeout_s: float) -> MembershipService:
    """Membership over proxies uses the exact same service as Slash."""
    return MembershipService(
        injector,
        heartbeat_period_s=heartbeat_period_s,
        phi_threshold=phi_threshold,
        confirm_s=confirm_s,
        ack_timeout_s=ack_timeout_s,
    )
