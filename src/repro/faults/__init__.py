"""Deterministic fault injection and epoch-based recovery.

This package is the chaos layer of the reproduction: a
:class:`~repro.faults.plan.FaultPlan` describes *what* goes wrong and
*when* (node crash, NIC flap, dropped/duplicated epoch-delta transfers,
stalled helper, credit starvation), and a
:class:`~repro.faults.injector.FaultInjector` attached to a simulation
kernel applies the plan at exact simulated instants.  Because the plan
is data and the kernel is deterministic, a faulted run is as reproducible
as a fail-free one: same seed + same plan ⇒ bit-identical results.

Recovery follows the paper's epoch structure: leaders replicate a
checkpoint of their primary partitions at every epoch boundary
(:mod:`repro.faults.checkpoint`), helpers retain shipped deltas until
acknowledged, and on a leader crash the lowest-id surviving executor is
promoted, restores the last replicated checkpoint, replays retained
deltas (deduplicated by the epoch ledger, so merges stay exactly-once),
and re-processes the crashed executor's input from the last recorded
epoch cut.
"""

from repro.faults.checkpoint import Checkpoint, CheckpointStore
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultEvent, FaultKind, FaultPlan

__all__ = [
    "Checkpoint",
    "CheckpointStore",
    "FaultEvent",
    "FaultInjector",
    "FaultKind",
    "FaultPlan",
]
