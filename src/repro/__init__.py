"""repro — a reproduction of "Rethinking Stateful Stream Processing with
RDMA" (Del Monte et al., SIGMOD 2022).

The package implements the paper's system, **Slash**, and everything it
is evaluated against, on top of a deterministic discrete-event
simulation of a rack-scale RDMA cluster:

* :mod:`repro.simnet` — the simulated rack (event kernel, NICs, links,
  caches, DRAM, hardware-counter accounting);
* :mod:`repro.rdma` / :mod:`repro.channel` — verbs and the credit-based
  RDMA channel protocol (paper Sec. 6);
* :mod:`repro.state` — the Slash State Backend: CRDTs, vector clocks,
  hybrid-log stores, epoch coherence (paper Sec. 7);
* :mod:`repro.core` — queries, windows, pipelines, the coroutine
  scheduler, and the distributed Slash executor/engine (paper Secs. 4-5);
* :mod:`repro.baselines` — RDMA UpPar, a Flink-like engine on IPoIB, a
  LightSaber-like scale-up engine, and the sequential reference;
* :mod:`repro.workloads` — YSB, NexMark (NB7/NB8/NB11), Cluster
  Monitoring, and the Read-Only drill-down benchmark;
* :mod:`repro.harness` — one runnable experiment per paper table/figure.

Quick start::

    from repro import SlashEngine
    from repro.workloads import YsbWorkload

    workload = YsbWorkload(records_per_thread=5000)
    engine = SlashEngine()
    result = engine.run(workload.build_query(), workload.flows(4, 4))
    print(result.throughput_records_per_s)
"""

from repro.common.config import ClusterConfig, CpuConfig, NicConfig, NodeConfig, paper_cluster
from repro.common.errors import (
    ChannelResetError,
    ConfigError,
    FaultError,
    ProtocolError,
    QueryError,
    RecoveryError,
    ReproError,
    SimulationError,
    StateError,
)
from repro.core.engine import RunResult, SlashEngine
from repro.core.query import Query, StreamBuilder
from repro.core.records import RecordBatch, Schema
from repro.core.windows import SessionWindows, SlidingWindow, TumblingWindow

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "ClusterConfig",
    "CpuConfig",
    "NicConfig",
    "NodeConfig",
    "paper_cluster",
    "ReproError",
    "ConfigError",
    "SimulationError",
    "ProtocolError",
    "StateError",
    "QueryError",
    "FaultError",
    "RecoveryError",
    "ChannelResetError",
    "SlashEngine",
    "RunResult",
    "Query",
    "StreamBuilder",
    "Schema",
    "RecordBatch",
    "TumblingWindow",
    "SlidingWindow",
    "SessionWindows",
]
