"""Conflict-free replicated data types for window state (paper Sec. 5.1).

Slash executors update the *same logical* key-value pair concurrently on
different nodes; consistency comes from representing each value as a CRDT
so that lazily-merged partial states converge to the value a sequential
execution would have produced (property *P2*).

Two families, exactly as the paper describes:

* **non-holistic** window computations (aggregations) rely on the
  commutativity and associativity of the aggregate — each node keeps a
  partial aggregate and the merge combines them (e.g. the sum CRDT stores
  partial sums and the final result is their sum);
* **holistic** window computations (joins) rely on a join-semilattice
  over sets with delta updates — each node appends the records it saw,
  and the merge concatenates the disjoint partial sets.

A CRDT here is a *strategy object*: state values in the store are plain
Python payloads, and the CRDT supplies ``zero`` / ``update`` / ``merge``
/ ``finish`` plus a byte-size estimate used to price delta shipping.
"""

from __future__ import annotations

from typing import Any, Iterable

from repro.common.errors import StateError


class Crdt:
    """Base strategy: subclasses define the payload algebra.

    Laws every subclass must satisfy (enforced by property tests):
    ``merge`` is commutative and associative with identity ``zero()``, and
    folding updates then merging in any grouping yields the same result as
    a single sequential fold.
    """

    name = "abstract"
    # Estimated serialized bytes of key + fixed-size payload, used to price
    # epoch delta transfers.  Holistic CRDTs override value_bytes instead.
    payload_bytes = 16

    def zero(self) -> Any:
        """The identity payload (a fresh, never-updated value)."""
        raise NotImplementedError

    def update(self, current: Any, value: Any) -> Any:
        """Fold one stream value into a payload (the RMW of Sec. 7.1.1)."""
        raise NotImplementedError

    def merge(self, a: Any, b: Any) -> Any:
        """Combine two partial payloads (the lazy merge of Sec. 5.1)."""
        raise NotImplementedError

    def finish(self, payload: Any) -> Any:
        """Turn a fully-merged payload into the query result value."""
        return payload

    def merge_into(self, state: dict, partials: dict) -> None:
        """Merge a batch of partials into ``state`` in place.

        Equivalent to ``state[k] = merge(state[k], v)`` per key (keys
        absent from ``state`` take the partial as-is; payloads are never
        ``None``).  Numeric subclasses inline the arithmetic — this is
        the consumer-side hot loop of the transfer benches.
        """
        get = state.get
        merge = self.merge
        for key, partial in partials.items():
            current = get(key)
            state[key] = partial if current is None else merge(current, partial)

    def value_bytes(self, payload: Any) -> int:
        """Serialized size of one payload, for network cost accounting."""
        return self.payload_bytes

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class SumCrdt(Crdt):
    """Commutative sum; the paper's running example."""

    name = "sum"

    def zero(self) -> float:
        return 0.0

    def update(self, current: float, value: float) -> float:
        return current + value

    def merge(self, a: float, b: float) -> float:
        return a + b

    def merge_into(self, state: dict, partials: dict) -> None:
        get = state.get
        for key, partial in partials.items():
            current = get(key)
            state[key] = partial if current is None else current + partial


class CountCrdt(Crdt):
    """Occurrence counting (the YSB and RO aggregations)."""

    name = "count"
    payload_bytes = 16

    def zero(self) -> int:
        return 0

    def update(self, current: int, value: Any) -> int:
        # ``value`` may carry a pre-aggregated partial count from a
        # vectorised batch update; plain records count as 1.
        return current + (int(value) if isinstance(value, (int, float)) else 1)

    def merge(self, a: int, b: int) -> int:
        return a + b

    def merge_into(self, state: dict, partials: dict) -> None:
        get = state.get
        for key, partial in partials.items():
            current = get(key)
            state[key] = partial if current is None else current + partial


class MinCrdt(Crdt):
    """Minimum; identity is +infinity."""

    name = "min"

    def zero(self) -> float:
        return float("inf")

    def update(self, current: float, value: float) -> float:
        return value if value < current else current

    def merge(self, a: float, b: float) -> float:
        return a if a < b else b


class MaxCrdt(Crdt):
    """Maximum; identity is -infinity."""

    name = "max"

    def zero(self) -> float:
        return float("-inf")

    def update(self, current: float, value: float) -> float:
        return value if value > current else current

    def merge(self, a: float, b: float) -> float:
        return a if a > b else b


class AvgCrdt(Crdt):
    """Arithmetic mean as a (sum, count) pair; finish divides.

    This is the CM benchmark's aggregate (mean CPU utilisation per job).
    ``update`` accepts either a scalar sample or a pre-aggregated
    ``(sum, count)`` partial from a vectorised batch.
    """

    name = "avg"
    payload_bytes = 24

    def zero(self) -> tuple[float, int]:
        return (0.0, 0)

    def update(self, current: tuple[float, int], value: Any) -> tuple[float, int]:
        total, count = current
        if isinstance(value, tuple):
            return (total + value[0], count + value[1])
        return (total + float(value), count + 1)

    def merge(self, a: tuple[float, int], b: tuple[float, int]) -> tuple[float, int]:
        return (a[0] + b[0], a[1] + b[1])

    def finish(self, payload: tuple[float, int]) -> float:
        total, count = payload
        if count == 0:
            raise StateError("average of an empty window payload")
        return total / count


class AppendLogCrdt(Crdt):
    """Holistic state: a grow-only list of records (join build sides).

    The merge concatenates, which is the join-semilattice the paper cites
    (Sec. 5.1): distributed executors append disjoint subsets, and the
    lazy concatenation of all partial values with the same key is exactly
    the set a sequential execution would have accumulated.  Result order
    is normalised by ``finish`` so P2 comparisons are order-insensitive.
    """

    name = "append"

    def __init__(self, record_bytes: int = 32):
        self.record_bytes = record_bytes

    def zero(self) -> list:
        return []

    def update(self, current: list, value: Any) -> list:
        # ``value`` may be one record or a pre-grouped list from a batch.
        if isinstance(value, list):
            current.extend(value)
        else:
            current.append(value)
        return current

    def merge(self, a: list, b: list) -> list:
        return a + b

    def finish(self, payload: list) -> list:
        return sorted(payload)

    def value_bytes(self, payload: list) -> int:
        return 8 + self.record_bytes * len(payload)


_REGISTRY: dict[str, Crdt] = {
    crdt.name: crdt
    for crdt in (SumCrdt(), CountCrdt(), MinCrdt(), MaxCrdt(), AvgCrdt(), AppendLogCrdt())
}


def crdt_by_name(name: str) -> Crdt:
    """Look up a shared CRDT strategy instance by its registry name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise StateError(
            f"unknown CRDT {name!r}; known: {sorted(_REGISTRY)}"
        ) from None


def fold(crdt: Crdt, values: Iterable[Any]) -> Any:
    """Sequentially fold ``values`` into a fresh payload (reference path)."""
    payload = crdt.zero()
    for value in values:
        payload = crdt.update(payload, value)
    return payload
